"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's tables/figures.  A full
cycle-level grid (13 designs x 10 workloads) takes minutes in Python, so
the default instruction budget is modest; override through environment
variables for paper-scale runs::

    REPRO_BENCH_INSTS=60000 pytest benchmarks/ --benchmark-only
    REPRO_BENCH_WORKLOADS=compress,xlisp pytest benchmarks/test_figure5.py --benchmark-only
    REPRO_BENCH_DESIGNS=T4,T1,M8 ...
    REPRO_BENCH_JOBS=4 ...             # shard grids across worker processes

Rendered tables are printed and archived under ``results/``.  Grids run
through :func:`repro.eval.parallel.run_many`; set ``REPRO_BENCH_JOBS``
to parallelize (benchmarks never use the persistent result store — the
point is to time the simulations).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def bench_insts(default: int = 20_000) -> int:
    """Per-run dynamic instruction budget."""
    return int(os.environ.get("REPRO_BENCH_INSTS", default))


def bench_workloads() -> list[str] | None:
    """Workload subset (None = all ten)."""
    raw = os.environ.get("REPRO_BENCH_WORKLOADS")
    return raw.split(",") if raw else None


def bench_designs() -> list[str] | None:
    """Design subset (None = all of Table 2)."""
    raw = os.environ.get("REPRO_BENCH_DESIGNS")
    return raw.split(",") if raw else None


def bench_jobs() -> int:
    """Worker processes for grid benchmarks (default 1 = serial)."""
    return int(os.environ.get("REPRO_BENCH_JOBS", 1))


def archive(name: str, text: str) -> None:
    """Print the rendered experiment and save it under results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(autouse=True)
def _fresh_build_cache():
    """Keep memory bounded when many grids run in one session."""
    yield
    from repro.eval.runner import clear_build_cache

    clear_build_cache()
