"""Ablation benches: the design-choice studies DESIGN.md §6 calls out.

Not figures from the paper — these interrogate the knobs its design
sections (§3.2-§3.5) discuss qualitatively.
"""

import pytest
from conftest import archive, bench_insts, bench_workloads

from repro.eval.sensitivity import ALL_SWEEPS


@pytest.mark.parametrize("name", sorted(ALL_SWEEPS))
def test_ablation(benchmark, name):
    sweep = ALL_SWEEPS[name]

    def run():
        return sweep(
            workloads=bench_workloads(), max_instructions=bench_insts(12_000)
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    archive(f"ablation_{name}", result.render())
    first = next(iter(result.relative))
    assert result.relative[first] == pytest.approx(1.0)
    assert all(rel > 0 for rel in result.relative.values())
