"""Regenerate the committed Valgrind-lackey trace fixture.

Emits a deterministic ``lackey``-style instruction/memory trace
(``I pc,len`` / `` L|S|M addr,size`` lines, same shape as
``valgrind --tool=lackey --trace-mem=yes`` output) to
``benchmarks/fixtures/lackey_mixed.log.gz``.  The synthetic "program"
interleaves three phases with distinct translation behavior — a dense
sequential array sweep, a pointer-chasing walk over a large heap, and a
call-heavy stack phase — so the ingested workload exercises the same
regimes the registered synthetic workloads do.

The generator is seeded and stdlib-only; committing its output keeps CI
hermetic while this script documents (and can reproduce) the bytes.

Usage::

    python benchmarks/make_lackey_fixture.py [--records 170000] [--out PATH]
"""

from __future__ import annotations

import argparse
import gzip
from pathlib import Path

DEFAULT_OUT = Path(__file__).resolve().parent / "fixtures" / "lackey_mixed.log.gz"


class Lcg:
    """Tiny deterministic PRNG (no host ``random`` involvement)."""

    def __init__(self, seed: int) -> None:
        self.state = seed & 0x7FFFFFFF or 1

    def next(self, bound: int) -> int:
        self.state = (self.state * 1103515245 + 12345) & 0x7FFFFFFF
        return self.state % bound


def generate(records: int, seed: int = 1996):
    """Yield lackey lines totalling at least ``records`` trace records."""
    rng = Lcg(seed)
    emitted = 0
    yield "==4242== Lackey, an example Valgrind tool"
    yield "==4242== Command: ./mixed_phases"

    # Static code layout: three "functions" of straight-line blocks.
    sweep_base, chase_base, stack_base = 0x0040_0000, 0x0040_2000, 0x0040_4000
    heap, stack_top = 0x0500_0000, 0x7FFF_F000
    chase_ptr = heap

    while emitted < records:
        phase = rng.next(10)
        if phase < 5:
            # Dense sequential sweep: high page locality, long basic block.
            row = rng.next(512) * 64
            for i in range(8):
                pc = sweep_base + i * 4
                yield f"I  {pc:08X},4"
                emitted += 1
                if i % 2 == 0:
                    yield f" L {heap + row + i * 8:08X},8"
                    emitted += 1
                elif i == 7:
                    yield f" S {heap + row:08X},8"
                    emitted += 1
            # loop branch back to the block head
            yield f"I  {sweep_base + 32:08X},4"
            emitted += 1
        elif phase < 8:
            # Pointer chase: dependent loads scattered over many pages.
            for i in range(4):
                pc = chase_base + i * 4
                yield f"I  {pc:08X},4"
                emitted += 1
                if i == 1:
                    chase_ptr = heap + rng.next(4096) * 4096 + rng.next(64) * 8
                    yield f" L {chase_ptr:08X},8"
                    emitted += 1
                elif i == 3:
                    yield f" M {chase_ptr + 16:08X},4"
                    emitted += 1
            yield f"I  {chase_base + 64:08X},4"  # taken transfer
            emitted += 1
        else:
            # Call-heavy stack phase: stores then loads near the stack top.
            frame = stack_top - rng.next(64) * 16
            for i in range(6):
                pc = stack_base + i * 4
                yield f"I  {pc:08X},4"
                emitted += 1
                if i < 2:
                    yield f" S {frame - i * 8:08X},8"
                    emitted += 1
                elif i > 3:
                    yield f" L {frame - (i - 4) * 8:08X},8"
                    emitted += 1
            yield f"I  {stack_base + 96:08X},4"
            emitted += 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=170_000)
    parser.add_argument("--seed", type=int, default=1996)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args()
    args.out.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    # mtime=0 so regeneration is byte-stable.
    with gzip.GzipFile(args.out, "wb", mtime=0) as handle:
        for line in generate(args.records, args.seed):
            handle.write((line + "\n").encode())
            count += 1
    print(f"wrote {args.out} ({count} lines, >= {args.records} records)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
