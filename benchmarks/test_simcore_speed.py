"""Simulator-core throughput microbenchmark -> BENCH_simcore.json.

Measures *warm* host throughput of ``Machine.run()`` — trace and fetch
plan already cached, as in the steady state of a figure grid — over a
small fixed workload x design mix, and records it as host simulated
cycles per second.  The committed ``benchmarks/BENCH_simcore.json``
holds the reference numbers (including the pre-event-driven seed
baseline measured on the same host and settings); CI re-measures and
fails if warm throughput regresses more than 30% against it.

Standalone::

    PYTHONPATH=src python benchmarks/test_simcore_speed.py          # print
    PYTHONPATH=src python benchmarks/test_simcore_speed.py --write  # refresh JSON
    PYTHONPATH=src python benchmarks/test_simcore_speed.py --check  # CI gate

Under pytest (sanity + timing via pytest-benchmark)::

    PYTHONPATH=src pytest benchmarks/test_simcore_speed.py --benchmark-only

``--check`` honors ``REPRO_BENCH_INSTS`` (smaller budgets for smoke
runs) but always compares against the committed cycles/s, and
``--threshold`` overrides the default 0.30 allowed regression.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from time import perf_counter

BENCH_FILE = Path(__file__).resolve().parent / "BENCH_simcore.json"
SCHEMA = 1

#: Fixed measurement mix: the two extremes of translation pressure
#: (T4 ideal vs T1 single-ported) plus one interleaved and one
#: piggyback design, over an integer and a Lisp workload.
WORKLOADS = ("compress", "xlisp")
DESIGNS = ("T4", "T1", "I4", "PB1")


def measure(max_instructions: int = 20_000, repeats: int = 3) -> dict:
    """Time warm serial runs; returns the BENCH_simcore payload."""
    from repro.eval.runner import RunRequest, simulate

    requests = [
        RunRequest.create(w, d, max_instructions=max_instructions)
        for w in WORKLOADS
        for d in DESIGNS
    ]
    for req in requests:  # warm trace/plan caches (not measured)
        simulate(req)
    runs = []
    total_wall = 0.0
    total_cycles = 0
    total_committed = 0
    for req in requests:
        best_wall = float("inf")
        stats = None
        for _ in range(repeats):
            start = perf_counter()
            result = simulate(req)
            wall = perf_counter() - start
            if wall < best_wall:
                best_wall = wall
                stats = result.stats
        runs.append(
            {
                "name": req.name,
                "wall_s": round(best_wall, 4),
                "sim_cycles": stats.cycles,
                "committed": stats.committed,
                "cycles_per_s": round(stats.cycles / best_wall),
            }
        )
        total_wall += best_wall
        total_cycles += stats.cycles
        total_committed += stats.committed
    return {
        "schema": SCHEMA,
        "settings": {
            "workloads": list(WORKLOADS),
            "designs": list(DESIGNS),
            "max_instructions": max_instructions,
            "repeats": repeats,
            "measurement": "warm serial best-of-repeats per run",
        },
        "warm": {
            "wall_s": round(total_wall, 4),
            "sim_cycles": total_cycles,
            "committed": total_committed,
            "cycles_per_s": round(total_cycles / total_wall),
            "insts_per_s": round(total_committed / total_wall),
        },
        "runs": runs,
    }


def _render(payload: dict) -> str:
    warm = payload["warm"]
    lines = [
        "simulator core throughput (warm, serial)",
        f"  total wall : {warm['wall_s']:.3f} s over {len(payload['runs'])} runs",
        f"  throughput : {warm['cycles_per_s']:,} sim cycles/s"
        f" ({warm['insts_per_s']:,} committed insts/s)",
    ]
    for run in payload["runs"]:
        lines.append(
            f"  {run['name']:<14s} {run['wall_s']:>7.3f} s"
            f" {run['cycles_per_s']:>12,} cyc/s"
        )
    return "\n".join(lines)


def check(payload: dict, threshold: float) -> int:
    """Compare fresh warm throughput against the committed reference."""
    committed = json.loads(BENCH_FILE.read_text())
    ref = committed["warm"]["cycles_per_s"]
    fresh = payload["warm"]["cycles_per_s"]
    floor = (1.0 - threshold) * ref
    verdict = "OK" if fresh >= floor else "REGRESSION"
    print(
        f"warm throughput: {fresh:,} cyc/s vs committed {ref:,} cyc/s"
        f" (floor {floor:,.0f}, threshold {threshold:.0%}) -> {verdict}"
    )
    return 0 if fresh >= floor else 1


# -- pytest entry points ------------------------------------------------------


def test_simcore_speed(benchmark):
    from conftest import archive, bench_insts

    payload = benchmark.pedantic(
        measure, kwargs={"max_instructions": bench_insts()}, rounds=1, iterations=1
    )
    archive("simcore_speed", _render(payload))
    assert payload["warm"]["cycles_per_s"] > 0
    assert all(run["sim_cycles"] > 0 for run in payload["runs"])


# -- CLI ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write", action="store_true", help=f"refresh {BENCH_FILE.name}"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit 1 if warm throughput regressed vs {BENCH_FILE.name}",
    )
    parser.add_argument("--insts", type=int, default=None, help="instruction budget")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed fractional regression for --check (default 0.30)",
    )
    args = parser.parse_args(argv)
    import os

    insts = args.insts or int(os.environ.get("REPRO_BENCH_INSTS", 20_000))
    payload = measure(max_instructions=insts, repeats=args.repeats)
    print(_render(payload))
    if args.check:
        return check(payload, args.threshold)
    if args.write:
        existing = (
            json.loads(BENCH_FILE.read_text()) if BENCH_FILE.exists() else {}
        )
        if "baseline" in existing:  # preserve the recorded seed numbers
            payload["baseline"] = existing["baseline"]
            base_cps = existing["baseline"].get("cycles_per_s")
            if base_cps:
                payload["speedup_vs_baseline"] = round(
                    payload["warm"]["cycles_per_s"] / base_cps, 2
                )
        BENCH_FILE.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {BENCH_FILE}")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    raise SystemExit(main())
