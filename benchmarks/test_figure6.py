"""Regenerate the paper's Figure 6 (TLB miss rate vs TLB size)."""

from conftest import archive, bench_insts, bench_workloads

from repro.eval.missrates import run_figure6
from repro.eval.report import render_figure6


def test_figure6(benchmark):
    def run():
        return run_figure6(
            workloads=bench_workloads(),
            max_instructions=max(bench_insts(), 60_000),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    archive("figure6", render_figure6(result))
    rtw = result.rtw_average
    # The paper's shape: average miss rate falls monotonically over the
    # LRU sizes and is "already very low" at 128 entries.
    assert rtw[4] >= rtw[8] >= rtw[16]
    assert rtw[128] < rtw[4]
    assert rtw[128] < 0.05
