"""Batch-kernel throughput microbenchmark -> BENCH_kernel_batch.json.

Measures *warm* host throughput of the batch-vectorized replay backend
(:mod:`repro.kernel.batch`) against both the interpreted machine and
the base compiled kernel on the same workload x design mix as
BENCH_simcore/BENCH_kernel — trace, fetch plan, encoded arrays and
geometry already cached, as in the steady state of a figure grid — plus
the one-time geometry-computation cost per workload.  The committed
``benchmarks/BENCH_kernel_batch.json`` holds the reference numbers; CI
re-measures and fails if warm batch throughput regresses more than 30%
against it.

``settings.numpy`` records the numpy version the numbers were measured
under (or ``"stdlib"``) so they are reproducible.

Standalone::

    PYTHONPATH=src python benchmarks/test_kernel_batch_speed.py          # print
    PYTHONPATH=src python benchmarks/test_kernel_batch_speed.py --write  # refresh
    PYTHONPATH=src python benchmarks/test_kernel_batch_speed.py --check  # CI gate

``--check`` honors ``REPRO_BENCH_INSTS`` (smaller budgets for smoke
runs) but always compares against the committed cycles/s, and
``--threshold`` overrides the default 0.30 allowed regression.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from time import perf_counter

BENCH_FILE = Path(__file__).resolve().parent / "BENCH_kernel_batch.json"
SCHEMA = 1

#: Same fixed mix as BENCH_simcore/BENCH_kernel, so the files compare.
WORKLOADS = ("compress", "xlisp")
DESIGNS = ("T4", "T1", "I4", "PB1")


def numpy_setting() -> str:
    """The numpy version in use, or ``"stdlib"``."""
    from repro.kernel.encode import _numpy

    np = _numpy()
    return np.__version__ if np is not None else "stdlib"


def _time_side(requests, repeats: int) -> dict:
    """Warm best-of-``repeats`` timing over ``requests`` (one side)."""
    from repro.eval.runner import simulate

    runs = []
    total_wall = 0.0
    total_cycles = 0
    total_committed = 0
    for req in requests:
        best_wall = float("inf")
        stats = None
        for _ in range(repeats):
            start = perf_counter()
            result = simulate(req)
            wall = perf_counter() - start
            if wall < best_wall:
                best_wall = wall
                stats = result.stats
        runs.append(
            {
                "name": req.name,
                "wall_s": round(best_wall, 4),
                "sim_cycles": stats.cycles,
                "cycles_per_s": round(stats.cycles / best_wall),
            }
        )
        total_wall += best_wall
        total_cycles += stats.cycles
        total_committed += stats.committed
    return {
        "wall_s": round(total_wall, 4),
        "sim_cycles": total_cycles,
        "committed": total_committed,
        "cycles_per_s": round(total_cycles / total_wall),
        "insts_per_s": round(total_committed / total_wall),
        "runs": runs,
    }


def measure(max_instructions: int = 20_000, repeats: int = 3) -> dict:
    """Time warm batch vs kernel vs interpreted runs; returns the payload."""
    from repro.engine.config import MachineConfig
    from repro.eval.runner import RunRequest, _CACHE, simulate
    from repro.kernel import compute_geometry, encode_trace_arrays, geometry_params

    mk = lambda w, d, **kw: RunRequest.create(  # noqa: E731
        w, d, max_instructions=max_instructions, **kw
    )
    interp = [mk(w, d) for w in WORKLOADS for d in DESIGNS]
    kernel = [mk(w, d, kernel=True) for w in WORKLOADS for d in DESIGNS]
    batch = [mk(w, d, kernel_batch=True) for w in WORKLOADS for d in DESIGNS]
    # Warm every cache layer (trace, fetch plans, encoded arrays, geometry).
    for req in interp + kernel + batch:
        simulate(req)
    # One-time geometry cost, measured outside the replay timings.
    params = geometry_params(MachineConfig())
    geometry = []
    for w in WORKLOADS:
        trace = _CACHE.get_trace(w, 32, 32, 1.0, max_instructions)
        encoded = encode_trace_arrays(trace)
        start = perf_counter()
        compute_geometry(encoded, params)
        wall = perf_counter() - start
        geometry.append(
            {
                "workload": w,
                "wall_s": round(wall, 4),
                "insts": len(trace),
                "insts_per_s": round(len(trace) / wall),
            }
        )
    interp_side = _time_side(interp, repeats)
    kernel_side = _time_side(kernel, repeats)
    batch_side = _time_side(batch, repeats)
    return {
        "schema": SCHEMA,
        "settings": {
            "workloads": list(WORKLOADS),
            "designs": list(DESIGNS),
            "max_instructions": max_instructions,
            "repeats": repeats,
            "numpy": numpy_setting(),
            "measurement": "warm serial best-of-repeats per run, "
            "kernel arrays and geometry pre-encoded",
        },
        "interpreted": interp_side,
        "kernel": kernel_side,
        "batch": batch_side,
        "batch_speedup_vs_interpreted": round(
            batch_side["cycles_per_s"] / interp_side["cycles_per_s"], 2
        ),
        "batch_speedup_vs_kernel": round(
            batch_side["cycles_per_s"] / kernel_side["cycles_per_s"], 2
        ),
        "geometry": geometry,
    }


def _render(payload: dict) -> str:
    interp = payload["interpreted"]
    kern = payload["kernel"]
    batch = payload["batch"]
    lines = [
        "batch-kernel throughput (warm, serial, "
        f"numpy={payload['settings']['numpy']})",
        f"  interpreted : {interp['cycles_per_s']:>12,} sim cycles/s"
        f" ({interp['wall_s']:.3f} s total)",
        f"  kernel      : {kern['cycles_per_s']:>12,} sim cycles/s"
        f" ({kern['wall_s']:.3f} s total)",
        f"  batch       : {batch['cycles_per_s']:>12,} sim cycles/s"
        f" ({batch['wall_s']:.3f} s total)",
        f"  speedup     : {payload['batch_speedup_vs_interpreted']:.2f}x"
        " vs interpreted, "
        f"{payload['batch_speedup_vs_kernel']:.2f}x vs base kernel",
    ]
    for geo in payload["geometry"]:
        lines.append(
            f"  geometry {geo['workload']:<9s} {geo['wall_s']:>7.4f} s"
            f" ({geo['insts_per_s']:>12,} insts/s)"
        )
    for run in batch["runs"]:
        lines.append(
            f"  {run['name']:<14s} {run['wall_s']:>7.3f} s"
            f" {run['cycles_per_s']:>12,} cyc/s"
        )
    return "\n".join(lines)


def check(payload: dict, threshold: float) -> int:
    """Compare fresh warm batch throughput against the committed file."""
    committed = json.loads(BENCH_FILE.read_text())
    ref = committed["batch"]["cycles_per_s"]
    fresh = payload["batch"]["cycles_per_s"]
    floor = (1.0 - threshold) * ref
    verdict = "OK" if fresh >= floor else "REGRESSION"
    print(
        f"warm batch throughput: {fresh:,} cyc/s vs committed {ref:,} cyc/s"
        f" (floor {floor:,.0f}, threshold {threshold:.0%}) -> {verdict}"
    )
    return 0 if fresh >= floor else 1


# -- pytest entry points ------------------------------------------------------


def test_kernel_batch_speed(benchmark):
    from conftest import archive, bench_insts

    payload = benchmark.pedantic(
        measure, kwargs={"max_instructions": bench_insts()}, rounds=1, iterations=1
    )
    archive("kernel_batch_speed", _render(payload))
    assert payload["batch"]["cycles_per_s"] > 0
    assert all(run["sim_cycles"] > 0 for run in payload["batch"]["runs"])
    # Bit-identity is the backend's contract; the speed run re-checks it
    # for free since all three sides simulated the same requests.
    assert payload["batch"]["sim_cycles"] == payload["interpreted"]["sim_cycles"]
    assert payload["batch"]["sim_cycles"] == payload["kernel"]["sim_cycles"]


# -- CLI ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write", action="store_true", help=f"refresh {BENCH_FILE.name}"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit 1 if warm batch throughput regressed vs {BENCH_FILE.name}",
    )
    parser.add_argument("--insts", type=int, default=None, help="instruction budget")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed fractional regression for --check (default 0.30)",
    )
    args = parser.parse_args(argv)
    import os

    insts = args.insts or int(os.environ.get("REPRO_BENCH_INSTS", 20_000))
    payload = measure(max_instructions=insts, repeats=args.repeats)
    print(_render(payload))
    if args.check:
        return check(payload, args.threshold)
    if args.write:
        BENCH_FILE.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {BENCH_FILE}")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    raise SystemExit(main())
