"""Timing check for the parallel engine and the result store.

Runs a 4-workload x 3-design grid three ways — serial, 4 worker
processes, and a warm-cache rerun — archiving the wall-clock comparison
under ``results/``.  The speedup of ``--jobs 4`` depends on the host's
core count (a single-core CI box sees none), so only the *semantics*
are asserted: identical results on every path, and a warm rerun that
answers entirely from the store without simulating.
"""

import time

from conftest import archive, bench_insts

from repro.eval.options import EvalOptions
from repro.eval.parallel import run_many
from repro.eval.resultstore import ResultStore
from repro.eval.runner import RunRequest

WORKLOADS = ("espresso", "xlisp", "compress", "tfft")
DESIGNS = ("T4", "T1", "M8")


def test_parallel_and_store_timing(tmp_path):
    grid = [
        RunRequest(workload=w, design=d, max_instructions=bench_insts(8_000))
        for w in WORKLOADS
        for d in DESIGNS
    ]

    started = time.perf_counter()
    serial = run_many(grid, EvalOptions(jobs=1))
    t_serial = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_many(grid, EvalOptions(jobs=4))
    t_parallel = time.perf_counter() - started

    cold_store = ResultStore(tmp_path)
    run_many(grid, EvalOptions(jobs=4, store=cold_store))
    warm_store = ResultStore(tmp_path)
    started = time.perf_counter()
    warm = run_many(grid, EvalOptions(jobs=4, store=warm_store))
    t_warm = time.perf_counter() - started

    lines = [
        f"parallel engine timing ({len(WORKLOADS)} workloads x {len(DESIGNS)} designs,"
        f" {grid[0].max_instructions} insts/run)",
        "",
        f"  jobs=1 (serial)      {t_serial:8.2f}s",
        f"  jobs=4               {t_parallel:8.2f}s  ({t_serial / t_parallel:4.2f}x)",
        f"  jobs=4, warm cache   {t_warm:8.2f}s  ({t_serial / t_warm:4.2f}x)",
        "",
        f"  warm-cache store traffic: {warm_store.stats.render()}",
    ]
    archive("parallel_timing", "\n".join(lines))

    # Parallel execution is bit-identical to serial.
    assert [r.to_dict() for r in parallel] == [r.to_dict() for r in serial]
    # The cold pass simulated and stored the whole grid ...
    assert cold_store.stats.puts == len(grid)
    # ... and the warm rerun answered every run from the store without
    # simulating anything.
    assert warm_store.stats.hits == len(grid)
    assert warm_store.stats.misses == 0
    assert warm_store.stats.puts == 0
    assert [r.to_dict()["stats"] for r in warm] == [
        r.to_dict()["stats"] for r in serial
    ]
    # A pure cache replay must beat rerunning the simulations.
    assert t_warm < t_serial
