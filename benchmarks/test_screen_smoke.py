"""Screening-tier smoke: model accuracy + frontier re-simulation.

Cross-validates the analytical model against the cycle simulator on a
Figure-5 slice (all 13 Table 2 designs, a subset of workloads) and
asserts the committed accuracy bound — mean absolute relative CPI
error <= 10% per workload, true best design inside the predicted
top-3.  Then runs a small end-to-end screen and asserts the selected
frontier re-simulates without error.

Run directly (the CI ``screen-smoke`` job)::

    PYTHONPATH=src python benchmarks/test_screen_smoke.py

Honors ``REPRO_SCREEN_WORKLOADS`` (comma-separated; default a 3-workload
slice covering the pointer-chasing, integer, and dense-loop regimes) and
``REPRO_BENCH_INSTS`` (default 60000, the budget the committed accuracy
numbers in docs/performance.md were measured at).
"""

from __future__ import annotations

import os
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

#: The committed per-workload accuracy bound (see docs/performance.md).
MAE_BOUND = 0.10
TOP_K = 3


def main() -> int:
    from repro.analysis import atmodel
    from repro.analysis.profile import build_profile
    from repro.eval.options import EvalOptions
    from repro.eval.resultstore import ResultStore
    from repro.eval.runner import RunRequest, run_one, _CACHE
    from repro.eval.screen import ScreenSpec, screen
    from repro.tlb.factory import DESIGN_MNEMONICS

    insts = int(os.environ.get("REPRO_BENCH_INSTS", 60_000))
    workloads = os.environ.get("REPRO_SCREEN_WORKLOADS", "xlisp,espresso,tomcatv")
    workloads = [w for w in workloads.split(",") if w]

    failures = []
    with tempfile.TemporaryDirectory(prefix="repro-screen-smoke-") as td:
        store = ResultStore(Path(td) / "store")

        def req_for(workload, mnemonic):
            if mnemonic.upper() in DESIGN_MNEMONICS:
                return RunRequest.create(workload, mnemonic, max_instructions=insts)
            single = atmodel.mnemonic_space([mnemonic])
            return RunRequest.create(
                workload,
                mnemonic,
                mechanism=single.mechanism_spec(0),
                max_instructions=insts,
            )

        for workload in workloads:
            trace = _CACHE.get_trace(workload, 32, 32, 1.0, insts)
            profile = build_profile(trace, workload)
            results = {
                d: run_one(req_for(workload, d), store=store)
                for d in DESIGN_MNEMONICS
            }
            anchors = {
                m: results.get(m) or run_one(req_for(workload, m), store=store)
                for m in atmodel.DEFAULT_ANCHORS
            }
            cal = atmodel.calibrate(profile, anchors)
            space = atmodel.mnemonic_space(DESIGN_MNEMONICS)
            pred = atmodel.predict(profile, cal, space)
            true = [
                results[d].stats.cycles / results[d].stats.committed
                for d in DESIGN_MNEMONICS
            ]
            errs = [
                abs(float(pred.cpi[i]) - t) / t for i, t in enumerate(true)
            ]
            mae = sum(errs) / len(errs)
            best = min(range(len(true)), key=lambda i: true[i])
            order = sorted(range(len(true)), key=lambda i: float(pred.cpi[i]))
            rank = order.index(best) + 1
            line = (
                f"{workload:12s} MAE {100 * mae:5.2f}%"
                f" best {DESIGN_MNEMONICS[best]:6s} predicted rank {rank}"
            )
            print(line, flush=True)
            if mae > MAE_BOUND:
                failures.append(f"{workload}: MAE {100 * mae:.2f}% > {100 * MAE_BOUND:.0f}%")
            if rank > TOP_K:
                failures.append(f"{workload}: true best ranked {rank} (> top-{TOP_K})")

        # End-to-end: a small screen whose frontier re-simulates cleanly.
        spec = ScreenSpec(
            workloads=(workloads[0],),
            max_instructions=insts,
            entries=(64, 128, 256),
            simulate=3,
        )
        result = screen(spec, EvalOptions(jobs=2, store=store))
        simulated = [e for e in result.frontier if e.get("simulated")]
        print(
            f"screen: {result.designs} designs -> {len(result.frontier)} frontier,"
            f" {len(simulated)} re-simulated OK",
            flush=True,
        )
        if len(simulated) != min(spec.simulate, len(result.frontier)):
            failures.append(
                f"frontier re-simulation incomplete:"
                f" {len(simulated)}/{min(spec.simulate, len(result.frontier))}"
            )

    if failures:
        print("FAIL:\n  " + "\n  ".join(failures))
        return 1
    print("screen-smoke OK")
    return 0


def test_screen_smoke():
    assert main() == 0


if __name__ == "__main__":
    raise SystemExit(main())
