"""Design-space screening throughput benchmark -> BENCH_screen.json.

Measures the analytical model's scoring throughput (candidate designs
priced per second by :func:`repro.analysis.atmodel.predict` over a
>=10^5-point space), the cycle simulator's throughput on the same host
and budget (designs simulated per second), the ratio between them, and
the end-to-end wall time of one :func:`repro.eval.screen.screen` job —
enumerate, calibrate on cycle-simulated anchors, score everything,
Pareto-select, re-simulate the frontier.

The committed ``benchmarks/BENCH_screen.json`` holds the reference
numbers; CI re-measures and fails if model scoring throughput regresses
more than the threshold, or if the model-vs-simulator ratio falls under
the 1000x the screening tier promises.

Standalone::

    PYTHONPATH=src python benchmarks/test_screen_speed.py          # print
    PYTHONPATH=src python benchmarks/test_screen_speed.py --write  # refresh JSON
    PYTHONPATH=src python benchmarks/test_screen_speed.py --check  # CI gate

``--check`` honors ``REPRO_BENCH_INSTS`` (smaller budgets for smoke
runs) but always compares against the committed designs/s.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from time import perf_counter

BENCH_FILE = Path(__file__).resolve().parent / "BENCH_screen.json"
SCHEMA = 1

WORKLOAD = "xlisp"
#: Throughput floors the screening tier promises (checked by --check).
MIN_DESIGNS_PER_S = 10_000
MIN_SPEEDUP = 1000.0


def _big_spec(max_instructions: int):
    """A >=10^5-point screening spec over one workload."""
    from repro.eval.screen import ScreenSpec

    return ScreenSpec(
        workloads=(WORKLOAD,),
        max_instructions=max_instructions,
        page_shifts=(12, 13, 14),
        entries=tuple(range(16, 4112, 16)),
        multi_ports=(1, 2, 3, 4, 6, 8),
        piggy_ports=(1, 2, 3, 4),
        piggy_riders=(1, 2, 3, 4, 6, 8),
        banks=(2, 4, 8, 16, 32),
        bank_riders=(0, 1, 2, 3, 4, 6),
        ml_l1=tuple(2**k for k in range(1, 11)),
        ml_ports=(1, 2, 4),
        pret_sizes=tuple(2**k for k in range(1, 11)),
        pret_ports=(1, 2, 4),
        simulate=3,
    )


def measure(max_instructions: int = 20_000, repeats: int = 3) -> dict:
    from repro.analysis import atmodel
    from repro.analysis.profile import build_profile
    from repro.eval.options import EvalOptions
    from repro.eval.resultstore import ResultStore
    from repro.eval.runner import RunRequest, _CACHE, simulate
    from repro.eval.screen import enumerate_space, pareto_mask, screen, space_cost

    spec = _big_spec(max_instructions)
    np = atmodel._require_numpy()

    # -- cycle-simulation throughput: fresh runs, same budget ----------------
    sim_designs = ("T4", "T1", "M8", "PB1")
    sim_wall = 0.0
    for design in sim_designs:
        req = RunRequest.create(WORKLOAD, design, max_instructions=max_instructions)
        simulate(req)  # warm the trace/fetch-plan caches
        start = perf_counter()
        simulate(req)
        sim_wall += perf_counter() - start
    sim_per_s = len(sim_designs) / sim_wall

    # -- calibration inputs (anchor sims + profile, not counted in scoring) --
    trace = _CACHE.get_trace(WORKLOAD, 32, 32, 1.0, max_instructions)
    profile = build_profile(trace, WORKLOAD)
    anchors = {}
    for mnemonic in spec.anchors:
        single = atmodel.mnemonic_space([mnemonic])
        anchors[mnemonic] = simulate(
            RunRequest.create(
                WORKLOAD,
                mnemonic,
                mechanism=single.mechanism_spec(0),
                max_instructions=max_instructions,
            )
        )
    cal = atmodel.calibrate(profile, anchors)

    # -- model scoring throughput over the big space -------------------------
    space = enumerate_space(spec)
    best_score = float("inf")
    for _ in range(repeats):
        start = perf_counter()
        pred = atmodel.predict(profile, cal, space)
        best_score = min(best_score, perf_counter() - start)
    model_per_s = len(space) / best_score

    best_select = float("inf")
    for _ in range(repeats):
        start = perf_counter()
        area, _delay = space_cost(space)
        mask = pareto_mask(np, area, pred.cpi)
        best_select = min(best_select, perf_counter() - start)
    frontier_size = int(mask.sum())

    # -- end-to-end screen: enumerate -> anchors -> score -> frontier sims ---
    with tempfile.TemporaryDirectory() as tmp:
        opts = EvalOptions(jobs=1, store=ResultStore(Path(tmp) / "store"))
        start = perf_counter()
        result = screen(spec, opts)
        end_to_end = perf_counter() - start

    return {
        "schema": SCHEMA,
        "settings": {
            "workload": WORKLOAD,
            "max_instructions": max_instructions,
            "repeats": repeats,
            "space_points": len(space),
            "anchors": list(spec.anchors),
            "frontier_simulated": spec.simulate,
            "measurement": "model scoring best-of-repeats over the full "
            "space; simulator throughput from warm fresh runs; end-to-end "
            "includes anchor sims, profile build, scoring, frontier sims",
        },
        "model": {
            "designs": len(space),
            "score_wall_s": round(best_score, 4),
            "designs_per_s": round(model_per_s),
            "select_wall_s": round(best_select, 4),
            "frontier_size": frontier_size,
        },
        "simulator": {
            "designs": len(sim_designs),
            "wall_s": round(sim_wall, 4),
            "designs_per_s": round(sim_per_s, 4),
        },
        "speedup_vs_simulation": round(model_per_s / sim_per_s),
        "end_to_end": {
            "wall_s": round(end_to_end, 4),
            "designs": result.designs,
            "frontier_size": len(result.frontier),
            "simulated": sum(1 for e in result.frontier if e.get("simulated")),
        },
    }


def _render(payload: dict) -> str:
    model = payload["model"]
    sim = payload["simulator"]
    e2e = payload["end_to_end"]
    return "\n".join(
        [
            "design-space screening throughput",
            f"  model   : {model['designs_per_s']:>14,} designs/s"
            f" ({model['designs']:,} designs in {model['score_wall_s']:.3f} s)",
            f"  simulate: {sim['designs_per_s']:>14,.2f} designs/s"
            f" (cycle simulator, same budget)",
            f"  speedup : {payload['speedup_vs_simulation']:,}x model vs simulator",
            f"  select  : frontier of {model['frontier_size']} in"
            f" {model['select_wall_s']:.3f} s (cost + Pareto)",
            f"  end-to-end screen: {e2e['wall_s']:.1f} s for {e2e['designs']:,}"
            f" designs -> {e2e['frontier_size']} frontier,"
            f" {e2e['simulated']} re-simulated",
        ]
    )


def check(payload: dict, threshold: float) -> int:
    committed = json.loads(BENCH_FILE.read_text())
    ref = committed["model"]["designs_per_s"]
    fresh = payload["model"]["designs_per_s"]
    floor = (1.0 - threshold) * ref
    ok = fresh >= floor
    print(
        f"model scoring: {fresh:,} designs/s vs committed {ref:,}"
        f" (floor {floor:,.0f}, threshold {threshold:.0%})"
        f" -> {'OK' if ok else 'REGRESSION'}"
    )
    if fresh < MIN_DESIGNS_PER_S:
        print(f"ABSOLUTE FLOOR VIOLATED: {fresh:,} < {MIN_DESIGNS_PER_S:,} designs/s")
        ok = False
    if payload["speedup_vs_simulation"] < MIN_SPEEDUP:
        print(
            f"SPEEDUP FLOOR VIOLATED: {payload['speedup_vs_simulation']}x"
            f" < {MIN_SPEEDUP:.0f}x vs simulation"
        )
        ok = False
    return 0 if ok else 1


# -- pytest entry points ------------------------------------------------------


def test_screen_speed(benchmark):
    from conftest import archive, bench_insts

    payload = benchmark.pedantic(
        measure, kwargs={"max_instructions": bench_insts()}, rounds=1, iterations=1
    )
    archive("screen_speed", _render(payload))
    assert payload["model"]["designs"] >= 100_000
    assert payload["model"]["designs_per_s"] >= MIN_DESIGNS_PER_S
    assert payload["speedup_vs_simulation"] >= MIN_SPEEDUP
    assert payload["end_to_end"]["simulated"] > 0


# -- CLI ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write", action="store_true", help=f"refresh {BENCH_FILE.name}"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit 1 if model scoring regressed vs {BENCH_FILE.name}",
    )
    parser.add_argument("--insts", type=int, default=None, help="instruction budget")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed fractional regression for --check (default 0.30)",
    )
    args = parser.parse_args(argv)
    import os

    insts = args.insts or int(os.environ.get("REPRO_BENCH_INSTS", 20_000))
    payload = measure(max_instructions=insts, repeats=args.repeats)
    print(_render(payload))
    if args.check:
        return check(payload, args.threshold)
    if args.write:
        BENCH_FILE.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {BENCH_FILE}")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    raise SystemExit(main())
