"""Ingestion smoke gate: committed lackey fixture end to end.

Converts the committed Valgrind-lackey fixture
(``benchmarks/fixtures/lackey_mixed.log.gz``, regenerable with
``make_lackey_fixture.py``) to the portable format, windows it down to
the measurement budget, and replays a 3-design grid through the ingested
path.  Asserts:

1. the headline statistics are bit-identical to the committed golden
   (``benchmarks/GOLDEN_ingest.json``);
2. the interpreted, compiled-kernel, batch-kernel, artifact-cached, and
   jobs=2 parallel paths all agree bit-for-bit;
3. ``REPRO_KERNEL=0`` (and friends: false/no/off) verifiably leaves the
   kernel disabled — the env-flag truthiness regression.

Run directly (the CI ``ingest-smoke`` job)::

    PYTHONPATH=src python benchmarks/test_ingest_smoke.py

Pass ``--update`` after an intentional engine change to refresh the
golden file.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

FIXTURE = ROOT / "benchmarks" / "fixtures" / "lackey_mixed.log.gz"
GOLDEN = ROOT / "benchmarks" / "GOLDEN_ingest.json"
DESIGNS = ("T4", "M8", "I4")
BUDGET = 6_000
WINDOW = dict(warmup=2_000, window=4_000, count=3, select="stride", stride=7)


def headline(result) -> dict:
    s = result.stats
    return {
        "cycles": s.cycles,
        "committed": s.committed,
        "loads": s.loads,
        "stores": s.stores,
        "tlb_miss_services": s.tlb_miss_services,
        "port_stall_cycles": s.translation.port_stall_cycles,
        "piggybacked": s.translation.piggybacked,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true", help="rewrite GOLDEN_ingest.json"
    )
    args = parser.parse_args(argv)

    from repro.env import env_bool
    from repro.eval.artifacts import ArtifactStore
    from repro.eval.options import EvalOptions
    from repro.eval.parallel import run_many
    from repro.eval.runner import (
        RunRequest,
        clear_build_cache,
        configure_artifacts,
        simulate,
    )
    from repro.ingest import WindowSpec, convert_lackey, trace_workload, write_portable

    failures: list[str] = []

    with tempfile.TemporaryDirectory(prefix="repro-ingest-smoke-") as td:
        tmp = Path(td)

        # 1. Convert the committed fixture to the portable format.
        portable = tmp / "lackey_mixed.ndjson.gz"
        n = write_portable(portable, convert_lackey(FIXTURE))
        print(f"converted fixture: {n} records")
        if n < 100_000:
            failures.append(f"fixture too small: {n} records < 100000")

        # 2. Window down to the measurement budget and mint the token.
        token = trace_workload(portable, WindowSpec(**WINDOW))
        reqs = [
            RunRequest.create(token, design, max_instructions=BUDGET)
            for design in DESIGNS
        ]

        # 3. Interpreted grid vs the committed golden.
        base = {d: headline(simulate(r)) for d, r in zip(DESIGNS, reqs)}
        print(json.dumps(base, indent=2))
        if args.update:
            GOLDEN.write_text(json.dumps(base, indent=2, sort_keys=True) + "\n")
            print(f"updated {GOLDEN}")
            return 0
        golden = json.loads(GOLDEN.read_text())
        for design in DESIGNS:
            if base[design] != golden.get(design):
                failures.append(
                    f"{design}: stats drifted from golden "
                    f"(got {base[design]}, want {golden.get(design)})"
                )

        # 4. Bit-identity across every execution path.
        full = {d: dataclasses.asdict(simulate(r).stats) for d, r in zip(DESIGNS, reqs)}
        for label, extra in (("kernel", {"kernel": True}),
                             ("kernel-batch", {"kernel_batch": True})):
            for design in DESIGNS:
                req = RunRequest.create(
                    token, design, max_instructions=BUDGET, **extra
                )
                got = dataclasses.asdict(simulate(req).stats)
                if got != full[design]:
                    failures.append(f"{label}/{design}: diverged from interpreted path")

        store = ArtifactStore(tmp / "artifacts", fingerprint="ingest-smoke")
        previous = configure_artifacts(store)
        try:
            clear_build_cache()
            cold = {d: dataclasses.asdict(simulate(r).stats) for d, r in zip(DESIGNS, reqs)}
            clear_build_cache()
            warm = {d: dataclasses.asdict(simulate(r).stats) for d, r in zip(DESIGNS, reqs)}
        finally:
            configure_artifacts(previous)
            clear_build_cache()
        if store.stats.hits < 1:
            failures.append("artifact store never hit on the warm pass")
        for design in DESIGNS:
            if cold[design] != full[design] or warm[design] != full[design]:
                failures.append(f"cached/{design}: diverged from interpreted path")

        par = run_many(reqs, EvalOptions(jobs=2))
        for design, result in zip(DESIGNS, par):
            if dataclasses.asdict(result.stats) != full[design]:
                failures.append(f"jobs=2/{design}: diverged from interpreted path")
        print("bit-identity: kernel, kernel-batch, cached, jobs=2 all agree")

    # 5. The env-flag truthiness regression, end to end.
    import os

    ns = argparse.Namespace(kernel=False, kernel_batch=False, no_cache=True)
    for word in ("0", "false", "no", "off"):
        os.environ["REPRO_KERNEL"] = word
        try:
            opts = EvalOptions.from_args(ns)
            if opts.kernel or env_bool("REPRO_KERNEL"):
                failures.append(f"REPRO_KERNEL={word!r} failed to disable the kernel")
        finally:
            del os.environ["REPRO_KERNEL"]
    os.environ["REPRO_KERNEL"] = "1"
    try:
        if not EvalOptions.from_args(ns).kernel:
            failures.append("REPRO_KERNEL=1 failed to enable the kernel")
    finally:
        del os.environ["REPRO_KERNEL"]
    print("env gate: REPRO_KERNEL=0/false/no/off disable, =1 enables")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("ingest smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
