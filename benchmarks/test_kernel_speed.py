"""Compiled-kernel throughput microbenchmark -> BENCH_kernel.json.

Measures *warm* host throughput of the compiled trace kernel
(:mod:`repro.kernel`) against the interpreted machine on the same
workload x design mix as BENCH_simcore — trace, fetch plan, and encoded
arrays already cached, as in the steady state of a figure grid — plus
the one-time encoding cost per workload.  The committed
``benchmarks/BENCH_kernel.json`` holds the reference numbers; CI
re-measures and fails if warm kernel throughput regresses more than 30%
against it.

A note on the headline number: the kernel's speedup over the
interpreter is modest (~1.1x warm on this mix), because the interpreter
had already absorbed the big algorithmic wins this repo made earlier —
the event-driven cycle-skipping loop and the precomputed fetch plan.
What remains in both loops is the per-event scheduling work itself,
which costs the same in CPython regardless of whether operands come
from SoA lists or object attributes.  The honest numbers are recorded
as measured; see docs/performance.md.

Standalone::

    PYTHONPATH=src python benchmarks/test_kernel_speed.py          # print
    PYTHONPATH=src python benchmarks/test_kernel_speed.py --write  # refresh JSON
    PYTHONPATH=src python benchmarks/test_kernel_speed.py --check  # CI gate

``--check`` honors ``REPRO_BENCH_INSTS`` (smaller budgets for smoke
runs) but always compares against the committed cycles/s, and
``--threshold`` overrides the default 0.30 allowed regression.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from time import perf_counter

BENCH_FILE = Path(__file__).resolve().parent / "BENCH_kernel.json"
SIMCORE_FILE = Path(__file__).resolve().parent / "BENCH_simcore.json"
SCHEMA = 1

#: Same fixed mix as BENCH_simcore, so the two files are comparable.
WORKLOADS = ("compress", "xlisp")
DESIGNS = ("T4", "T1", "I4", "PB1")


def _time_side(requests, repeats: int) -> dict:
    """Warm best-of-``repeats`` timing over ``requests`` (one side)."""
    from repro.eval.runner import simulate

    runs = []
    total_wall = 0.0
    total_cycles = 0
    total_committed = 0
    for req in requests:
        best_wall = float("inf")
        stats = None
        for _ in range(repeats):
            start = perf_counter()
            result = simulate(req)
            wall = perf_counter() - start
            if wall < best_wall:
                best_wall = wall
                stats = result.stats
        runs.append(
            {
                "name": req.name,
                "wall_s": round(best_wall, 4),
                "sim_cycles": stats.cycles,
                "cycles_per_s": round(stats.cycles / best_wall),
            }
        )
        total_wall += best_wall
        total_cycles += stats.cycles
        total_committed += stats.committed
    return {
        "wall_s": round(total_wall, 4),
        "sim_cycles": total_cycles,
        "committed": total_committed,
        "cycles_per_s": round(total_cycles / total_wall),
        "insts_per_s": round(total_committed / total_wall),
        "runs": runs,
    }


def measure(max_instructions: int = 20_000, repeats: int = 3) -> dict:
    """Time warm kernel vs interpreted runs; returns the payload."""
    from repro.eval.runner import RunRequest, _CACHE, simulate
    from repro.kernel import encode_trace_arrays

    interp = [
        RunRequest.create(w, d, max_instructions=max_instructions)
        for w in WORKLOADS
        for d in DESIGNS
    ]
    kernel = [
        RunRequest.create(w, d, kernel=True, max_instructions=max_instructions)
        for w in WORKLOADS
        for d in DESIGNS
    ]
    # Warm every cache layer (trace, fetch plans, encoded arrays).
    for req in interp + kernel:
        simulate(req)
    # One-time encoding cost, measured outside the replay timings.
    encode = []
    for w in WORKLOADS:
        trace = _CACHE.get_trace(w, 32, 32, 1.0, max_instructions)
        start = perf_counter()
        encode_trace_arrays(trace)
        wall = perf_counter() - start
        encode.append(
            {
                "workload": w,
                "wall_s": round(wall, 4),
                "insts": len(trace),
                "insts_per_s": round(len(trace) / wall),
            }
        )
    interp_side = _time_side(interp, repeats)
    kernel_side = _time_side(kernel, repeats)
    payload = {
        "schema": SCHEMA,
        "settings": {
            "workloads": list(WORKLOADS),
            "designs": list(DESIGNS),
            "max_instructions": max_instructions,
            "repeats": repeats,
            "measurement": "warm serial best-of-repeats per run, "
            "kernel arrays pre-encoded",
        },
        "interpreted": interp_side,
        "kernel": kernel_side,
        "kernel_speedup_vs_interpreted": round(
            kernel_side["cycles_per_s"] / interp_side["cycles_per_s"], 2
        ),
        "encode": encode,
    }
    if SIMCORE_FILE.exists():
        ref = json.loads(SIMCORE_FILE.read_text())["warm"]["cycles_per_s"]
        payload["kernel_speedup_vs_committed_simcore"] = round(
            kernel_side["cycles_per_s"] / ref, 2
        )
    return payload


def _render(payload: dict) -> str:
    interp = payload["interpreted"]
    kern = payload["kernel"]
    lines = [
        "compiled-kernel throughput (warm, serial)",
        f"  interpreted : {interp['cycles_per_s']:>12,} sim cycles/s"
        f" ({interp['wall_s']:.3f} s total)",
        f"  kernel      : {kern['cycles_per_s']:>12,} sim cycles/s"
        f" ({kern['wall_s']:.3f} s total)",
        f"  speedup     : {payload['kernel_speedup_vs_interpreted']:.2f}x"
        " vs interpreted (same host, same runs)",
    ]
    if "kernel_speedup_vs_committed_simcore" in payload:
        lines.append(
            f"              : {payload['kernel_speedup_vs_committed_simcore']:.2f}x"
            " vs committed BENCH_simcore warm"
        )
    for enc in payload["encode"]:
        lines.append(
            f"  encode {enc['workload']:<9s} {enc['wall_s']:>7.3f} s"
            f" ({enc['insts_per_s']:>12,} insts/s)"
        )
    for run in kern["runs"]:
        lines.append(
            f"  {run['name']:<14s} {run['wall_s']:>7.3f} s"
            f" {run['cycles_per_s']:>12,} cyc/s"
        )
    return "\n".join(lines)


def check(payload: dict, threshold: float) -> int:
    """Compare fresh warm kernel throughput against the committed file."""
    committed = json.loads(BENCH_FILE.read_text())
    ref = committed["kernel"]["cycles_per_s"]
    fresh = payload["kernel"]["cycles_per_s"]
    floor = (1.0 - threshold) * ref
    verdict = "OK" if fresh >= floor else "REGRESSION"
    print(
        f"warm kernel throughput: {fresh:,} cyc/s vs committed {ref:,} cyc/s"
        f" (floor {floor:,.0f}, threshold {threshold:.0%}) -> {verdict}"
    )
    return 0 if fresh >= floor else 1


# -- pytest entry points ------------------------------------------------------


def test_kernel_speed(benchmark):
    from conftest import archive, bench_insts

    payload = benchmark.pedantic(
        measure, kwargs={"max_instructions": bench_insts()}, rounds=1, iterations=1
    )
    archive("kernel_speed", _render(payload))
    assert payload["kernel"]["cycles_per_s"] > 0
    assert all(run["sim_cycles"] > 0 for run in payload["kernel"]["runs"])
    # Bit-identity is the kernel's contract; the speed run re-checks it
    # for free since both sides simulated the same requests.
    assert payload["kernel"]["sim_cycles"] == payload["interpreted"]["sim_cycles"]


# -- CLI ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write", action="store_true", help=f"refresh {BENCH_FILE.name}"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit 1 if warm kernel throughput regressed vs {BENCH_FILE.name}",
    )
    parser.add_argument("--insts", type=int, default=None, help="instruction budget")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed fractional regression for --check (default 0.30)",
    )
    args = parser.parse_args(argv)
    import os

    insts = args.insts or int(os.environ.get("REPRO_BENCH_INSTS", 20_000))
    payload = measure(max_instructions=insts, repeats=args.repeats)
    print(_render(payload))
    if args.check:
        return check(payload, args.threshold)
    if args.write:
        BENCH_FILE.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {BENCH_FILE}")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    raise SystemExit(main())
