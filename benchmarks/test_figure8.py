"""Regenerate the paper's Figure 8."""

from conftest import archive, bench_designs, bench_insts, bench_jobs, bench_workloads

from repro.eval.experiments import run_figure
from repro.eval.report import render_figure
from repro.tlb.factory import DESIGN_MNEMONICS


def test_figure8(benchmark):
    def run():
        return run_figure(
            "figure8",
            designs=bench_designs() or DESIGN_MNEMONICS,
            workloads=bench_workloads(),
            max_instructions=bench_insts(),
            jobs=bench_jobs(),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    archive("figure8", render_figure(result))
    # Sanity: the normalization reference is exact and every design's
    # relative IPC is positive and within slack of the T4 bound.
    assert result.relative_ipc["T4"] == 1.0
    assert all(0.0 < rel <= 1.1 for rel in result.relative_ipc.values())
