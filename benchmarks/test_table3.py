"""Regenerate the paper's Table 3 (baseline program characterization)."""

from conftest import archive, bench_insts, bench_jobs, bench_workloads

from repro.eval.experiments import run_table3
from repro.eval.report import render_table3


def test_table3(benchmark):
    def run():
        return run_table3(
            workloads=bench_workloads(),
            max_instructions=bench_insts(),
            jobs=bench_jobs(),
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    archive("table3", render_table3(rows))
    assert rows, "no workloads ran"
    for row in rows:
        assert row.instructions > 0
        assert 0.0 < row.commit_ipc <= 8.0
        assert 0.0 <= row.branch_prediction_rate <= 1.0
