"""Parallel-scheduling scaling benchmark -> BENCH_parallel.json.

Times the issue's target shape — ONE workload replayed under all
thirteen Table 2 designs — serial/inline versus ``run_many(jobs=N)``
with a cold and a warm shared artifact cache
(:mod:`repro.eval.artifacts`).  Before request-level scheduling this
grid collapsed to a single workload group and ``jobs`` was ignored;
the committed ``benchmarks/BENCH_parallel.json`` records the measured
speedups (and the host's CPU count — speedup is bounded by it), and CI
re-measures at ``jobs=2`` and fails if the speedup ratio regresses more
than 30% against the committed reference.

Every mode must be bit-identical to the serial baseline; the benchmark
asserts this on full result dicts before reporting any timing.

Standalone::

    PYTHONPATH=src python benchmarks/test_parallel_scaling.py          # print
    PYTHONPATH=src python benchmarks/test_parallel_scaling.py --write  # refresh JSON
    PYTHONPATH=src python benchmarks/test_parallel_scaling.py --check  # CI gate

Under pytest (sanity + timing via pytest-benchmark)::

    PYTHONPATH=src pytest benchmarks/test_parallel_scaling.py --benchmark-only

``--check`` honors ``REPRO_BENCH_INSTS`` (smaller budgets for smoke
runs) but always compares speedup *ratios* against the committed file,
and ``--threshold`` overrides the default 0.30 allowed regression.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path
from time import perf_counter

BENCH_FILE = Path(__file__).resolve().parent / "BENCH_parallel.json"
SCHEMA = 1

#: The issue's target shape: one workload, every Table 2 design.
WORKLOAD = "compress"


def _grid(max_instructions: int):
    from repro.eval.runner import RunRequest
    from repro.tlb import DESIGN_MNEMONICS

    return [
        RunRequest.create(WORKLOAD, d, max_instructions=max_instructions)
        for d in DESIGN_MNEMONICS
    ]


def measure(max_instructions: int = 20_000, jobs_list: tuple = (2, 4)) -> dict:
    """Time serial vs parallel over a one-workload 13-design grid."""
    from repro.eval.artifacts import ArtifactStore
    from repro.eval.options import EvalOptions
    from repro.eval.parallel import _schedule_chunks, run_many
    from repro.eval.runner import clear_build_cache

    grid = _grid(max_instructions)

    clear_build_cache()
    start = perf_counter()
    serial = run_many(grid, EvalOptions(jobs=1))
    serial_wall = perf_counter() - start
    reference = [r.to_dict() for r in serial]

    scaling = []
    for jobs in jobs_list:
        chunks = _schedule_chunks(grid, jobs)
        assert len(chunks) > 1, "single-workload grid must split into chunks"
        with tempfile.TemporaryDirectory(prefix="repro-bench-art-") as root:
            clear_build_cache()
            start = perf_counter()
            cold = run_many(grid, EvalOptions(jobs=jobs, artifacts=ArtifactStore(root)))
            cold_wall = perf_counter() - start
            assert [r.to_dict() for r in cold] == reference, "parallel != serial"

            clear_build_cache()
            start = perf_counter()
            warm = run_many(grid, EvalOptions(jobs=jobs, artifacts=ArtifactStore(root)))
            warm_wall = perf_counter() - start
            assert [r.to_dict() for r in warm] == reference, "warm != serial"
        scaling.append(
            {
                "jobs": jobs,
                "chunks": len(chunks),
                "cold_wall_s": round(cold_wall, 4),
                "warm_wall_s": round(warm_wall, 4),
                "cold_speedup": round(serial_wall / cold_wall, 3),
                "warm_speedup": round(serial_wall / warm_wall, 3),
            }
        )
    return {
        "schema": SCHEMA,
        "settings": {
            "workload": WORKLOAD,
            "designs": len(grid),
            "max_instructions": max_instructions,
            "host_cpus": os.cpu_count(),
            "measurement": (
                "wall-clock of run_many over one-workload x 13-design grid;"
                " cold = empty artifact dir, warm = second run on same dir"
            ),
        },
        "serial": {"wall_s": round(serial_wall, 4)},
        "scaling": scaling,
        "bit_identical": True,
    }


def _render(payload: dict) -> str:
    lines = [
        "parallel scheduling over a shared artifact cache"
        f" ({payload['settings']['workload']} x"
        f" {payload['settings']['designs']} designs,"
        f" {payload['settings']['host_cpus']} host cpus)",
        f"  serial        {payload['serial']['wall_s']:>7.3f} s",
    ]
    for entry in payload["scaling"]:
        lines.append(
            f"  jobs={entry['jobs']} cold  {entry['cold_wall_s']:>7.3f} s"
            f"  ({entry['cold_speedup']:.2f}x, {entry['chunks']} chunks)"
        )
        lines.append(
            f"  jobs={entry['jobs']} warm  {entry['warm_wall_s']:>7.3f} s"
            f"  ({entry['warm_speedup']:.2f}x)"
        )
    lines.append("  all modes bit-identical to serial")
    return "\n".join(lines)


def _entry(payload: dict, jobs: int) -> dict:
    for entry in payload["scaling"]:
        if entry["jobs"] == jobs:
            return entry
    raise SystemExit(f"no jobs={jobs} entry in payload")


def check(payload: dict, threshold: float, jobs: int = 2) -> int:
    """Compare the fresh jobs=N speedup ratio against the committed one."""
    committed = json.loads(BENCH_FILE.read_text())
    ref = _entry(committed, jobs)["cold_speedup"]
    fresh = _entry(payload, jobs)["cold_speedup"]
    floor = (1.0 - threshold) * ref
    verdict = "OK" if fresh >= floor else "REGRESSION"
    print(
        f"jobs={jobs} cold speedup: {fresh:.2f}x vs committed {ref:.2f}x"
        f" (floor {floor:.2f}x, threshold {threshold:.0%}) -> {verdict}"
    )
    return 0 if fresh >= floor else 1


# -- pytest entry points ------------------------------------------------------


def test_parallel_scaling(benchmark):
    from conftest import archive, bench_insts

    payload = benchmark.pedantic(
        measure,
        kwargs={"max_instructions": bench_insts(8_000), "jobs_list": (2,)},
        rounds=1,
        iterations=1,
    )
    archive("parallel_scaling", _render(payload))
    assert payload["bit_identical"]
    assert all(entry["chunks"] > 1 for entry in payload["scaling"])


# -- CLI ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write", action="store_true", help=f"refresh {BENCH_FILE.name}"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit 1 if the jobs=2 speedup regressed vs {BENCH_FILE.name}",
    )
    parser.add_argument("--insts", type=int, default=None, help="instruction budget")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed fractional regression for --check (default 0.30)",
    )
    args = parser.parse_args(argv)

    insts = args.insts or int(os.environ.get("REPRO_BENCH_INSTS", 20_000))
    jobs_list = (2,) if args.check else (2, 4)
    payload = measure(max_instructions=insts, jobs_list=jobs_list)
    print(_render(payload))
    if args.check:
        return check(payload, args.threshold)
    if args.write:
        BENCH_FILE.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {BENCH_FILE}")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    raise SystemExit(main())
