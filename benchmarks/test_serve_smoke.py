"""Evaluation-service smoke: daemon up, grid served, clean shutdown.

Boots a real ``python -m repro.serve`` daemon on a temporary store,
submits a small grid through the public client API (``run_many`` with a
server address), checks the streamed results are bit-identical to the
local engine, drives the ``python -m repro.eval --server`` CLI path,
and shuts the daemon down cleanly.

Run directly (the CI ``serve-smoke`` job)::

    PYTHONPATH=src python benchmarks/test_serve_smoke.py
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

INSTS = 3_000
DESIGNS = ("T4", "T1")


def _daemon_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def main() -> int:
    from repro.eval import EvalOptions, RunRequest, run_many, run_one
    from repro.serve.client import server_info, shutdown_server

    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as td:
        address = f"unix:{td}/serve.sock"
        daemon = subprocess.Popen(
            [
                sys.executable, "-m", "repro.serve",
                "--listen", address,
                "--store", f"{td}/store",
                "--artifacts", f"{td}/artifacts",
                "--jobs", "2",
            ],
            env=_daemon_env(),
        )
        try:
            grid = [
                RunRequest(workload="espresso", design=d, max_instructions=INSTS)
                for d in DESIGNS
            ]
            lines: list[str] = []
            served = run_many(
                grid, EvalOptions(server=address, progress=lines.append)
            )
            assert len(lines) == len(grid), f"progress lines: {lines}"
            for req, res in zip(grid, served):
                local = run_one(req)
                assert res.stats == local.stats, f"served != local for {req.name}"
            print(f"served {len(grid)} requests, bit-identical to run_one")

            # Rerun: everything must now be a store hit, nothing resimulated.
            run_many(grid, EvalOptions(server=address))
            stats = server_info(address)["scheduler"]
            assert stats["simulated"] == len(grid), stats
            assert stats["store_hits"] >= len(grid), stats
            print(f"warm rerun: {stats['store_hits']} store hits, "
                  f"{stats['simulated']} total simulations")

            # The CLI client path: a tiny figure-5 slice over the daemon.
            cli = subprocess.run(
                [
                    sys.executable, "-m", "repro.eval", "figure5",
                    "--server", address,
                    "--designs", ",".join(DESIGNS),
                    "--workloads", "espresso",
                    "--insts", str(INSTS),
                    "--quiet",
                ],
                env=_daemon_env(),
                capture_output=True,
                text=True,
                timeout=300,
            )
            assert cli.returncode == 0, cli.stderr
            assert "T4" in cli.stdout, cli.stdout
            print("CLI --server path ok")

            shutdown_server(address)
            code = daemon.wait(timeout=30)
            assert code == 0, f"daemon exited {code}"
            print("clean shutdown ok")
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()
    return 0


def test_serve_smoke():
    assert main() == 0


if __name__ == "__main__":
    raise SystemExit(main())
