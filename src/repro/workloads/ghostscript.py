"""``ghostscript`` — page-rendering kernel (big data, streaming writes).

The paper runs Ghostscript rendering a text+graphics page into a PPM
file, with a ~10 MB data set.  Rendering is dominated by span fills:
long sequential word stores into a large framebuffer, interleaved with
reads of small path/font structures.  Sequential sweeps give strong
spatial locality within a page, so TLB misses are mostly compulsory —
the paper's gs sustains a good prediction rate (93.3%) and a modest
0.73 refs/cycle.

The kernel rasterizes "spans": for each scanline it reads a handful of
edge records (small, hot array), computes the span, and fills it with
unrolled stores; every few lines it blits a glyph from a small font
table (reads) over the framebuffer (read-modify-write).
"""

from __future__ import annotations

from repro.caches.replacement import XorShift32
from repro.isa.builder import ProgramBuilder
from repro.mem.layout import AddressSpaceLayout
from repro.mem.memory import SparseMemory
from repro.workloads.base import (
    Workload,
    fill_random_words,
    register_workload,
    scaled,
)

#: Framebuffer: 1024 words per scanline x 2048 lines = 8 MB.
LINE_WORDS = 1024
LINES = 2048

#: Edge records (x0, x1 pairs) and glyph bitmap words.
EDGES = 64
GLYPH_WORDS = 64


@register_workload
class Ghostscript(Workload):
    name = "ghostscript"
    description = "span rasterizer: streaming fills over an 8 MB framebuffer"
    regime = "dense"

    def construct(
        self,
        b: ProgramBuilder,
        memory: SparseMemory,
        layout: AddressSpaceLayout,
        scale: float,
    ) -> None:
        rng = XorShift32(0x65)
        framebuffer = layout.alloc_heap(LINE_WORDS * LINES * 4)
        edges = layout.alloc_global(EDGES * 8)
        glyphs = layout.alloc_global(GLYPH_WORDS * 4)
        # Edge records: span start and length (word units, 4-aligned).
        for e in range(EDGES):
            start = (rng.below(LINE_WORDS // 2)) & ~3
            length = 16 + 4 * rng.below(24)
            memory.store_word(edges + 8 * e, start)
            memory.store_word(edges + 8 * e + 4, length)
        fill_random_words(memory, glyphs, GLYPH_WORDS, rng, mask=0xFF)

        lines = scaled(560, scale)

        fb = b.vint("fb")
        line = b.vint("line")
        color = b.vint("color")
        b.li(fb, framebuffer)
        b.li(color, 0x00AA55)
        b.li(line, 0)
        with b.loop_until(line, lines):
            eidx = b.vint("eidx")
            eptr = b.vint("eptr")
            start = b.vint("start")
            length = b.vint("length")
            # Read this line's edge record (hot, tiny array).
            b.andi(eidx, line, EDGES - 1)
            b.slli(eidx, eidx, 3)
            b.li(eptr, edges)
            b.add(eptr, eptr, eidx)
            b.lw(start, eptr, 0)
            b.lw(length, eptr, 4)
            # Span pointer into the framebuffer.
            p = b.vint("p")
            b.li(p, LINE_WORDS * 4)
            b.mul(p, p, line)
            b.add(p, p, fb)
            b.slli(start, start, 2)
            b.add(p, p, start)
            end = b.vint("end")
            b.slli(end, length, 2)
            b.add(end, end, p)
            # Unrolled 4-word fill (streaming stores).
            fill = b.label()
            fill_done = b.fresh_label()
            b.bge(p, end, fill_done)
            b.sw(color, p, 0)
            b.sw(color, p, 4)
            b.sw(color, p, 8)
            b.sw(color, p, 12)
            b.addi(p, p, 16)
            b.j(fill)
            b.bind(fill_done)
            # Every 4th line, blit a glyph (reads + read-modify-writes).
            lowbits = b.vint("lowbits")
            skip_glyph = b.fresh_label()
            b.andi(lowbits, line, 3)
            b.bne(lowbits, 0, skip_glyph)
            g = b.vint("g")
            gp = b.vint("gp")
            b.li(gp, glyphs)
            b.li(g, 0)
            with b.loop_until(g, GLYPH_WORDS // 4):
                gw0 = b.vint("gw0")
                gw1 = b.vint("gw1")
                fw0 = b.vint("fw0")
                fw1 = b.vint("fw1")
                b.lw(gw0, gp, 0)
                b.lw(gw1, gp, 4)
                b.lw(fw0, end, 0)
                b.lw(fw1, end, 4)
                b.or_(fw0, fw0, gw0)
                b.or_(fw1, fw1, gw1)
                b.sw(fw0, end, 0)
                b.sw(fw1, end, 4)
                b.addi(gp, gp, 8)
                b.addi(end, end, 8)
                b.addi(g, g, 1)
            b.bind(skip_glyph)
            b.addi(line, line, 1)
        b.halt()
