"""``mpeg_play`` — video decode kernel (motion compensation + IDCT add).

The paper's MPEG_play decodes a 79-frame video.  Decode bandwidth is
dominated by motion compensation: each macroblock copies a block from
the *reference* frame at a motion-vector-dependent (effectively
scattered) offset, adds the IDCT residual, and stores into the
*current* frame sequentially.  Two multi-hundred-KB frame buffers plus
scattered reference reads put mpeg_play in the paper's poor-locality
trio (with compress and tfft).

The kernel processes macroblock rows: unrolled 4-word reference loads
from a data-dependent offset, residual adds from a small coefficient
table, sequential stores to the current frame, and a frame swap every
row sweep.
"""

from __future__ import annotations

from repro.caches.replacement import XorShift32
from repro.isa.builder import ProgramBuilder
from repro.mem.layout import AddressSpaceLayout
from repro.mem.memory import SparseMemory
from repro.workloads.base import (
    Workload,
    fill_random_words,
    register_workload,
    scaled,
)

#: Frame size in words (512 KB per frame; two frames = 1 MB).
FRAME_WORDS = 1 << 17

#: Residual coefficient table (one 8x8 block of words).
RESIDUAL_WORDS = 64

#: Words copied per macroblock line (8 words = 32 bytes).
BLOCK_WORDS = 8


@register_workload
class MpegPlay(Workload):
    name = "mpeg_play"
    description = "motion compensation: scattered reference reads, streaming writes"
    regime = "poor"

    def construct(
        self,
        b: ProgramBuilder,
        memory: SparseMemory,
        layout: AddressSpaceLayout,
        scale: float,
    ) -> None:
        rng = XorShift32(0x3964)
        frame_bytes = FRAME_WORDS * 4  # 512 KB per frame
        reference = layout.alloc_heap(frame_bytes)
        current = layout.alloc_heap(frame_bytes)
        residual = layout.alloc_global(RESIDUAL_WORDS * 4)
        motion = layout.alloc_global(1024 * 4)
        fill_random_words(memory, reference, FRAME_WORDS, rng, mask=0xFF)
        fill_random_words(memory, residual, RESIDUAL_WORDS, rng, mask=0x1F)
        # Motion vectors: byte offsets into the reference frame, scattered
        # over its whole extent (block-aligned).
        for i in range(1024):
            memory.store_word(
                motion + 4 * i, (rng.below(FRAME_WORDS - BLOCK_WORDS)) * 4 & ~31
            )

        blocks = scaled(3200, scale)

        ref = b.vint("ref")
        cur = b.vint("cur")
        res = b.vint("res")
        mv = b.vint("mv")
        i = b.vint("i")
        b.li(ref, reference)
        b.li(cur, current)
        b.li(res, residual)
        b.li(mv, motion)
        b.li(i, 0)
        with b.loop_until(i, blocks):
            # Fetch this block's motion vector (hot table).
            mvi = b.vint("mvi")
            off = b.vint("off")
            src = b.vint("src")
            dst = b.vint("dst")
            b.andi(mvi, i, 1023)
            b.slli(mvi, mvi, 2)
            b.add(mvi, mvi, mv)
            b.lw(off, mvi, 0)
            b.add(src, ref, off)
            # Destination advances sequentially through the current frame.
            b.slli(dst, i, 5)
            b.andi(dst, dst, frame_bytes - 32)
            b.add(dst, dst, cur)
            # Residual row for this block (tiny, hot).
            rptr = b.vint("rptr")
            b.andi(rptr, i, (RESIDUAL_WORDS // 4 - 1))
            b.slli(rptr, rptr, 4)
            b.add(rptr, rptr, res)
            # Unrolled 4-word motion-compensated copy.
            s0 = b.vint("s0")
            s1 = b.vint("s1")
            s2 = b.vint("s2")
            s3 = b.vint("s3")
            r0 = b.vint("r0_")
            r1 = b.vint("r1_")
            r2 = b.vint("r2_")
            r3 = b.vint("r3_")
            b.lw(s0, src, 0)
            b.lw(s1, src, 4)
            b.lw(s2, src, 8)
            b.lw(s3, src, 12)
            b.lw(r0, rptr, 0)
            b.lw(r1, rptr, 4)
            b.lw(r2, rptr, 8)
            b.lw(r3, rptr, 12)
            b.add(s0, s0, r0)
            b.add(s1, s1, r1)
            b.add(s2, s2, r2)
            b.add(s3, s3, r3)
            b.sw(s0, dst, 0)
            b.sw(s1, dst, 4)
            b.sw(s2, dst, 8)
            b.sw(s3, dst, 12)
            # Saturation branch: clip if the first sample overflowed
            # (data-dependent, moderately skewed).
            clip = b.fresh_label()
            noclip = b.fresh_label()
            lim = b.vint("lim")
            b.li(lim, 0x100)
            b.blt(s0, lim, noclip)
            b.bind(clip)
            b.andi(s0, s0, 0xFF)
            b.sw(s0, dst, 0)
            b.bind(noclip)
            b.addi(i, i, 1)
        b.halt()
