"""``compress`` — LZW-style compression kernel.

SPEC '92 compress builds an LZW dictionary: it reads input bytes
sequentially and probes a large hash table whose index mixes the current
prefix code with the new byte, giving essentially random probes over a
table much larger than the TLB reach.  The paper singles compress out
(with mpeg_play and tfft) as having "notably little locality in their
reference streams; small data caches and TLBs perform very poorly".

This kernel reproduces that structure:

* sequential byte loads from an input buffer (good locality);
* hash probes into a 256 KB table (64 pages at 4 KB — far beyond the
  small L1 TLBs' reach), with a data-dependent hit/miss branch;
* secondary-probe rehash on collisions (more scattered accesses);
* an output-code store every accepted symbol (sequential).
"""

from __future__ import annotations

from repro.caches.replacement import XorShift32
from repro.isa.builder import ProgramBuilder
from repro.mem.layout import AddressSpaceLayout
from repro.mem.memory import SparseMemory
from repro.workloads.base import (
    Workload,
    fill_random_words,
    register_workload,
    scaled,
)

#: Hash-table entries (8 bytes each -> 256 KB table: 64 pages at 4 KB,
#: far past the small L1 TLBs, comfortably within a 128-entry base TLB).
TABLE_ENTRIES = 1 << 15

#: Input buffer size in bytes.
INPUT_BYTES = 1 << 16


@register_workload
class Compress(Workload):
    name = "compress"
    description = "LZW dictionary build: random hash probes over a 256 KB table"
    regime = "poor"

    def construct(
        self,
        b: ProgramBuilder,
        memory: SparseMemory,
        layout: AddressSpaceLayout,
        scale: float,
    ) -> None:
        rng = XorShift32(0xC04)
        table = layout.alloc_heap(TABLE_ENTRIES * 8)
        input_buf = layout.alloc_heap(INPUT_BYTES)
        output_buf = layout.alloc_heap(INPUT_BYTES)
        # Random input bytes: incompressible, so probes stay scattered.
        fill_random_words(memory, input_buf, INPUT_BYTES // 4, rng, mask=0xFFFF_FFFF)
        # Pre-populate half the table so hit/miss branches are mixed;
        # each populated entry has a key word and a code word.
        for i in range(0, TABLE_ENTRIES, 2):
            memory.store_word(table + 8 * i, rng.next() & 0xFFFF)
            memory.store_word(table + 8 * i + 4, rng.next() & 0x7FF)

        symbols = scaled(5200, scale)

        in_ptr = b.vint("in_ptr")
        out_ptr = b.vint("out_ptr")
        tab = b.vint("tab")
        prefix = b.vint("prefix")
        i = b.vint("i")
        b.li(in_ptr, input_buf)
        b.li(out_ptr, output_buf)
        b.li(tab, table)
        b.li(prefix, 17)
        b.li(i, 0)
        with b.loop_until(i, symbols):
            ch = b.vint("ch")
            h = b.vint("h")
            slot = b.vint("slot")
            key = b.vint("key")
            want = b.vint("want")
            # Sequential input byte.
            b.lb(ch, in_ptr, 0)
            b.addi(in_ptr, in_ptr, 1)
            # hash = ((prefix << 5) ^ (ch << 8) ^ prefix) & mask
            b.slli(h, prefix, 5)
            t = b.vint("t")
            b.slli(t, ch, 8)
            b.xor(h, h, t)
            b.xor(h, h, prefix)
            b.andi(h, h, TABLE_ENTRIES - 1)
            # Probe: scattered table access.
            b.slli(slot, h, 3)
            b.add(slot, slot, tab)
            b.lw(key, slot, 0)
            b.andi(want, h, 0xFFFF)
            hit = b.fresh_label()
            done = b.fresh_label()
            # Data-dependent dictionary-hit branch: compares stored-key
            # bits against the probe's (skewed ~7:1 and hard to predict,
            # like real dictionary lookups).
            occupied = b.vint("occupied")
            b.xor(occupied, key, want)
            b.andi(occupied, occupied, 7)
            b.bne(occupied, 0, hit)
            # Miss: rehash once (secondary probe), then insert.
            b.xori(h, h, 0x5555)
            b.slli(slot, h, 3)
            b.add(slot, slot, tab)
            b.lw(key, slot, 4)
            b.sw(want, slot, 0)
            b.add(prefix, prefix, ch)
            b.andi(prefix, prefix, 0xFFF)
            b.j(done)
            b.bind(hit)
            # Hit: extend the prefix code with the stored code and the
            # input byte (keeps the hash evolving on both paths).
            b.lw(t, slot, 4)
            b.add(prefix, prefix, t)
            b.add(prefix, prefix, ch)
            b.andi(prefix, prefix, 0xFFF)
            b.bind(done)
            # Emit an output code every symbol (sequential store).
            b.sw(prefix, out_ptr, 0)
            b.addi(out_ptr, out_ptr, 4)
            b.addi(i, i, 1)
        b.halt()
