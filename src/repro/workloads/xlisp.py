"""``xlisp`` — Lisp interpreter kernel (cons cells, GC mark phase).

Xlisp has the suite's highest memory reference density (1.86 refs/cycle
issued): nearly everything is a car/cdr dereference of a cons cell, and
the garbage collector periodically walks the whole heap.  Cells are
small (two words) and, after collection churn, scattered across the
heap, so list traversal is dependent pointer chasing with mediocre
spatial locality but heavy base-register reuse.

The kernel interleaves three phases, like a running interpreter:

* **cons**: allocate cells from a shuffled free list (fragmented heap)
  and thread them into lists;
* **traverse**: chase a list, summing the cars (load-load dependent);
* **mark**: sweep a range of cells setting mark bits
  (read-modify-write over the cell arena).
"""

from __future__ import annotations

from repro.caches.replacement import XorShift32
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import AddrMode
from repro.mem.layout import AddressSpaceLayout
from repro.mem.memory import SparseMemory
from repro.workloads.base import Workload, register_workload, scaled

#: Cons cells (8 bytes each -> 512 KB arena: inside the 128-entry TLB's
#: reach, but scattered enough to thrash the small L1 TLBs).
CELLS = 1 << 16

#: List length built/traversed per round.
LIST_LEN = 48

#: Cells marked per round.
MARK_SPAN = 64


@register_workload
class Xlisp(Workload):
    name = "xlisp"
    description = "cons/traverse/mark phases over a fragmented 512 KB cell arena"
    regime = "pointer"

    def construct(
        self,
        b: ProgramBuilder,
        memory: SparseMemory,
        layout: AddressSpaceLayout,
        scale: float,
    ) -> None:
        rng = XorShift32(0x115B)
        arena = layout.alloc_heap(CELLS * 8)
        freelist_head_addr = layout.alloc_global(8)

        # Shuffled free list threading every cell (fragmented-heap order):
        # cell.cdr = next free cell.
        order = list(range(CELLS))
        for k in range(CELLS - 1, 0, -1):
            j = rng.below(k + 1)
            order[k], order[j] = order[j], order[k]
        for idx in range(CELLS - 1):
            a = arena + 8 * order[idx]
            memory.store_word(a, rng.next() & 0xFF)  # car: small datum
            memory.store_word(a + 4, arena + 8 * order[idx + 1])  # cdr
        last = arena + 8 * order[-1]
        memory.store_word(last, 1)
        memory.store_word(last + 4, arena + 8 * order[0])  # circular
        memory.store_word(freelist_head_addr, arena + 8 * order[0])

        rounds = scaled(340, scale)

        free_head = b.vint("free_head")
        total = b.vint("total")
        rnd = b.vint("rnd")
        fh_addr = b.vint("fh_addr")
        b.li(fh_addr, freelist_head_addr)
        b.lw(free_head, fh_addr, 0)
        b.li(total, 0)
        b.li(rnd, 0)
        with b.loop_until(rnd, rounds):
            # -- cons phase: pop LIST_LEN cells, thread a fresh list ----
            head = b.vint("head")
            prev = b.vint("prev")
            n = b.vint("n")
            b.li(prev, 0)
            b.li(n, 0)
            with b.loop_until(n, LIST_LEN):
                cell = b.vint("cell")
                nxt = b.vint("nxt")
                b.mov(cell, free_head)
                b.lw(nxt, cell, 4)  # pop from free list
                b.mov(free_head, nxt)
                b.sw(rnd, cell, 0)  # car := datum
                b.sw(prev, cell, 4)  # cdr := previous (list grows at head)
                b.mov(prev, cell)
                b.addi(n, n, 1)
            b.mov(head, prev)
            # -- traverse phase: sum the cars (dependent load chain) ----
            p = b.vint("p")
            b.mov(p, head)
            walk = b.label()
            walk_done = b.fresh_label()
            b.beq(p, 0, walk_done)
            car = b.vint("car")
            b.lw(car, p, 0)
            b.add(total, total, car)
            # Data-dependent early exit: odd cars sometimes stop the walk.
            oddcar = b.vint("oddcar")
            keep = b.fresh_label()
            b.andi(oddcar, car, 7)
            b.bne(oddcar, 0, keep)
            b.lw(p, p, 4)
            b.lw(p, p, 4)  # skip one (cddr)
            b.j(walk)
            b.bind(keep)
            b.lw(p, p, 4)
            b.j(walk)
            b.bind(walk_done)
            # -- mark phase: sweep a window of the arena ---------------
            mp = b.vint("mp")
            mend = b.vint("mend")
            moff = b.vint("moff")
            # Window start rotates round-robin over the arena.
            b.slli(moff, rnd, 9)
            b.andi(moff, moff, CELLS * 8 - 1)
            b.li(mp, arena)
            b.add(mp, mp, moff)
            b.li(mend, MARK_SPAN * 8)
            b.add(mend, mend, mp)
            mark = b.label()
            mark_done = b.fresh_label()
            b.bge(mp, mend, mark_done)
            m0 = b.vint("m0")
            m1 = b.vint("m1")
            b.lw(m0, mp, 0)
            b.lw(m1, mp, 8)
            b.ori(m0, m0, 0x100)
            b.ori(m1, m1, 0x100)
            # Post-increment stores walk the sweep pointer (paper's
            # extended addressing mode).
            b.sw(m0, mp, 8, mode=AddrMode.POST_INC)
            b.sw(m1, mp, 8, mode=AddrMode.POST_INC)
            b.j(mark)
            b.bind(mark_done)
            b.addi(rnd, rnd, 1)
        b.halt()
