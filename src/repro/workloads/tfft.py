"""``tfft`` — iterative radix-2 FFT (large strides, worst TLB locality).

The paper's TFFT runs real and complex FFTs over a ~40 MB random data
set — the largest footprint of the suite and one of the three
poor-locality programs.  The butterfly stages stride the array at every
power of two up to N/2: once the stride exceeds a page, *every* access
lands on a new page, defeating any 128-entry TLB.

The kernel is a genuine decimation-in-time radix-2 pass structure over
a complex array spanning well over a hundred 4 KB pages.  Butterfly stages alternate with
*bit-reversal permutation* passes — the genuinely TLB-hostile part of
an FFT: the source index of each sequential destination element is the
bit-reverse of its position, so consecutive reads scatter uniformly
over all 512 pages.  Twiddle factors come from a small table; the
arithmetic is the classic four-multiply butterfly.
"""

from __future__ import annotations

import math

from repro.caches.replacement import XorShift32
from repro.isa.builder import ProgramBuilder
from repro.mem.layout import AddressSpaceLayout
from repro.mem.memory import SparseMemory
from repro.workloads.base import (
    Workload,
    fill_float_words,
    register_workload,
    scaled,
)

#: Complex points (re/im pairs of FP words): 2^16 points = 512 KB of
#: data plus a 256 KB bit-reversal table — roughly 190 pages touched per
#: sweep at 4 KB: far beyond any small L1 TLB, mostly within a warm
#: 128-entry base TLB (the paper's Figure 6 regime for its big-data
#: programs: terrible at 4-16 entries, "already very low" at 128).
POINTS_LOG2 = 16

#: Twiddle table entries (re/im pairs).
TWIDDLES = 256


@register_workload
class Tfft(Workload):
    name = "tfft"
    description = "radix-2 FFT butterflies: page-spanning strides over 2 MB"
    regime = "poor"

    def construct(
        self,
        b: ProgramBuilder,
        memory: SparseMemory,
        layout: AddressSpaceLayout,
        scale: float,
    ) -> None:
        rng = XorShift32(0xFF7)
        points = 1 << POINTS_LOG2
        data = layout.alloc_heap(points * 8)  # interleaved re/im
        twiddle = layout.alloc_global(TWIDDLES * 8)
        # The FP data is left zero-initialized: butterfly values never
        # feed addresses or branches, and skipping a 500k-word fill makes
        # workload construction an order of magnitude faster.  A small
        # random prefix is seeded so early stages mix non-zero values.
        fill_float_words(memory, data, 4096, rng)
        # Bit-reversal index table (word indices into ``data``), as real
        # FFT codes precompute.  Entries are point indices bit-reversed
        # within POINTS_LOG2 bits.
        brt = layout.alloc_heap(points * 4)
        bits = POINTS_LOG2
        rev = 0
        for idx in range(points):
            memory.store_word(brt + 4 * idx, rev)
            # Increment ``rev`` as a reversed counter.
            bit = 1 << (bits - 1)
            while rev & bit:
                rev ^= bit
                bit >>= 1
            rev |= bit
        # Twiddle factors: cos/sin pairs.
        for k in range(TWIDDLES):
            angle = -2.0 * math.pi * k / (2 * TWIDDLES)
            memory.store_word(twiddle + 8 * k, math.cos(angle))
            memory.store_word(twiddle + 8 * k + 4, math.sin(angle))

        # Butterflies per stage, sized so a run covers the big strides.
        per_stage = scaled(280, scale)
        # Strides sweep from intra-page to many-pages-apart; large
        # (page-hostile) strides are interleaved with small ones so that
        # truncated runs still see the characteristic mix.
        stages = [1 << s for s in (13, 2, 11, 6, 14, 9, POINTS_LOG2 - 1, 4)]

        base = b.vint("base")
        tw = b.vint("tw")
        brt_base = b.vint("brt_base")
        b.li(base, data)
        b.li(tw, twiddle)
        b.li(brt_base, brt)
        per_reversal = scaled(1800, scale)
        # Virtual registers are hoisted out of the per-stage Python loop
        # and reused: a fresh set per stage would blow past the
        # architected budget and flood the run with spill traffic.
        r = b.vint("r")
        rstart = b.vint("rstart")
        ridx = b.vint("ridx")
        rptr = b.vint("rptr")
        sidx = b.vint("sidx")
        sptr = b.vint("sptr")
        dptr = b.vint("dptr")
        dre = b.vfp("dre")
        dim = b.vfp("dim")
        i = b.vint("i")
        hashc = b.vint("hashc")
        span = b.vint("span")
        pa = b.vint("pa")
        pb = b.vint("pb")
        k = b.vint("k")
        g = b.vint("g")
        tptr = b.vint("tptr")
        wre = b.vfp("wre")
        wim = b.vfp("wim")
        are = b.vfp("are")
        aim = b.vfp("aim")
        bre = b.vfp("bre")
        bim = b.vfp("bim")
        tre = b.vfp("tre")
        tim = b.vfp("tim")
        m0 = b.vfp("m0")
        m1 = b.vfp("m1")
        nre = b.vfp("nre")
        nim = b.vfp("nim")
        bound = b.vint("bound")
        b.li(bound, per_reversal)
        bound2 = b.vint("bound2")
        b.li(bound2, per_stage)
        for stage_index, stride in enumerate(stages):
            # Bit-reversal permutation pass: sequential destinations,
            # bit-reversed (page-scattered) sources.
            # Rotate the window so successive passes touch new regions.
            b.li(rstart, (stage_index * per_reversal * 7) % points)
            b.li(r, 0)
            with b.loop_until(r, bound):
                b.add(ridx, r, rstart)
                b.andi(ridx, ridx, points - 1)
                # Sequential table read of the bit-reversed index.
                b.slli(rptr, ridx, 2)
                b.add(rptr, rptr, brt_base)
                b.lw(sidx, rptr, 0)
                # Scattered source read, sequential destination write.
                b.slli(sptr, sidx, 3)
                b.add(sptr, sptr, base)
                b.lfw(dre, sptr, 0)
                b.lfw(dim, sptr, 4)
                b.slli(dptr, ridx, 3)
                b.add(dptr, dptr, base)
                b.sfw(dre, dptr, 0)
                b.sfw(dim, dptr, 4)
                b.addi(r, r, 1)
            # Butterfly pass for this stage's stride.
            # A full stage touches every group; a truncated run must see
            # the same *distribution*, so sample group indices with a
            # multiplicative hash (Knuth's constant) rather than walking
            # a prefix — power-of-two strides over a power-of-two array
            # would otherwise alias into a handful of residues.
            groups = points // (2 * stride)
            b.li(hashc, 2654435761)
            b.li(span, stride * 8)
            b.li(i, 0)
            with b.loop_until(i, bound2):
                b.mul(g, i, hashc)
                b.srli(g, g, 8)
                b.andi(g, g, groups - 1)
                # index = group * 2*stride + (i mod stride)
                b.slli(g, g, (2 * stride).bit_length() - 1)
                b.andi(k, i, stride - 1)
                b.add(k, k, g)
                b.slli(k, k, 3)
                b.add(pa, base, k)
                b.add(pb, pa, span)
                # Twiddle for this butterfly (hot table).
                b.andi(tptr, i, TWIDDLES - 1)
                b.slli(tptr, tptr, 3)
                b.add(tptr, tptr, tw)
                b.lfw(wre, tptr, 0)
                b.lfw(wim, tptr, 4)
                b.lfw(are, pa, 0)
                b.lfw(aim, pa, 4)
                b.lfw(bre, pb, 0)
                b.lfw(bim, pb, 4)
                # t = w * b (complex).
                b.fmul(m0, wre, bre)
                b.fmul(m1, wim, bim)
                b.fsub(tre, m0, m1)
                b.fmul(m0, wre, bim)
                b.fmul(m1, wim, bre)
                b.fadd(tim, m0, m1)
                # a' = a + t ; b' = a - t.
                b.fadd(nre, are, tre)
                b.fadd(nim, aim, tim)
                b.fsub(are, are, tre)
                b.fsub(aim, aim, tim)
                b.sfw(nre, pa, 0)
                b.sfw(nim, pa, 4)
                b.sfw(are, pb, 0)
                b.sfw(aim, pb, 4)
                b.addi(i, i, 1)
        b.halt()
