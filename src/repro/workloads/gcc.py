"""``gcc`` — compiler IR-walk kernel (pointer chasing, branchy).

GCC's hot paths walk tree/RTL nodes scattered across the heap: short
data-dependent loops, many unpredictable multiway branches on node
codes (the paper measures its worst branch prediction rate, 80.2%), and
a moderate working set of a few MB.

The kernel evaluates expression trees whose nodes were allocated in a
*shuffled* order over a 256 KB arena (destroying allocation-order
locality, the way a long-lived compiler heap fragments).  Each step pops
a node from an explicit work stack, branches on its operator code,
pushes its children, and accumulates a value — a miniature of
fold-const / RTL walking.
"""

from __future__ import annotations

from repro.caches.replacement import XorShift32
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import AddrMode
from repro.mem.layout import AddressSpaceLayout
from repro.mem.memory import SparseMemory
from repro.workloads.base import Workload, register_workload, scaled

#: Tree nodes (16 bytes each: code, left, right, value) over a 256 KB
#: arena (64 pages at 4 KB — far beyond the small L1 TLBs' reach, mostly
#: within a warm 128-entry base TLB).
NODES = 1 << 14

#: Walk roots available in the root table.
ROOTS = 64

#: Nodes visited per walk before the walker gives up (keeps walk sizes
#: bounded despite the supercritical branching process, and keeps the
#: hot upper tree levels reused across walks, as a compiler's arena is).
WALK_BUDGET = 96


@register_workload
class Gcc(Workload):
    name = "gcc"
    description = "expression-tree walk over a fragmented 256 KB node arena"
    regime = "pointer"

    def construct(
        self,
        b: ProgramBuilder,
        memory: SparseMemory,
        layout: AddressSpaceLayout,
        scale: float,
    ) -> None:
        rng = XorShift32(0x6CC)
        arena = layout.alloc_heap(NODES * 16)
        stack = layout.alloc_stack(4 * (WALK_BUDGET * 2 + 8))
        root_table = layout.alloc_global(ROOTS * 4)

        # Shuffled node placement: logical node i lives at slot perm[i].
        perm = list(range(NODES))
        for k in range(NODES - 1, 0, -1):
            j = rng.below(k + 1)
            perm[k], perm[j] = perm[j], perm[k]

        def addr_of(node: int) -> int:
            return arena + 16 * perm[node]

        # Forest in heap order: node i's children are 2i+1 and 2i+2, so
        # every walk terminates at the frontier.
        for i in range(NODES):
            code = rng.below(4)  # 0/2 = binary, 1 = unary, 3 = leaf
            left = right = 0
            if code != 3 and 2 * i + 2 < NODES:
                left = addr_of(2 * i + 1)
                right = addr_of(2 * i + 2)
            else:
                code = 3
            a = addr_of(i)
            memory.store_word(a, code)
            memory.store_word(a + 4, left)
            memory.store_word(a + 8, right)
            memory.store_word(a + 12, rng.next() & 0xFFFF)

        # Root table: logical nodes 0..ROOTS-1 have the deepest subtrees.
        for k in range(ROOTS):
            memory.store_word(root_table + 4 * k, addr_of(k))

        walks = scaled(560, scale)

        value = b.vint("value")
        w = b.vint("w")
        stk_base = b.vint("stk_base")
        three = b.vint("three")
        one = b.vint("one")
        b.li(value, 0)
        b.li(stk_base, stack)
        b.li(three, 3)
        b.li(one, 1)
        b.li(w, 0)
        with b.loop_until(w, walks):
            sp = b.vint("wsp")
            root = b.vint("root")
            budget = b.vint("budget")
            rt = b.vint("rt")
            seed = b.vint("seed")
            # Pick this walk's root from the table.
            b.andi(seed, w, ROOTS - 1)
            b.slli(seed, seed, 2)
            b.li(rt, root_table)
            # Indexed (register+register) load, the paper's extended
            # addressing mode.
            b.lw(root, rt, mode=AddrMode.BASE_REG, index=seed)
            b.mov(sp, stk_base)
            b.sw(root, sp, 0)
            b.addi(sp, sp, 4)
            b.li(budget, WALK_BUDGET)
            loop = b.label()
            done = b.fresh_label()
            b.beq(sp, stk_base, done)
            b.beq(budget, 0, done)
            b.addi(budget, budget, -1)
            # Pop a node and fetch its fields.
            node = b.vint("node")
            code = b.vint("code")
            val = b.vint("val")
            b.addi(sp, sp, -4)
            b.lw(node, sp, 0)
            b.lw(code, node, 0)
            b.lw(val, node, 12)
            b.add(value, value, val)
            leaf = b.fresh_label()
            only_left = b.fresh_label()
            # Multiway dispatch on the operator code (data-dependent).
            b.beq(code, three, leaf)
            left = b.vint("left")
            right = b.vint("right")
            b.lw(left, node, 4)
            b.lw(right, node, 8)
            b.beq(code, one, only_left)
            b.sw(right, sp, 0)
            b.addi(sp, sp, 4)
            b.bind(only_left)
            b.sw(left, sp, 0)
            b.addi(sp, sp, 4)
            b.bind(leaf)
            b.j(loop)
            b.bind(done)
            b.addi(w, w, 1)
        b.halt()
