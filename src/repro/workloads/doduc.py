"""``doduc`` — Monte-Carlo nuclear reactor kernel (FP-dominated).

SPEC '92 doduc simulates neutron transport: long chains of dependent
floating-point arithmetic over modestly sized state arrays, a low memory
reference density (the paper measures 0.71 refs/cycle), and
moderately predictable branching (86.6%).

The kernel tracks "particles" through an absorption/scatter loop: each
step loads a particle record (4 FP fields), runs a multiply/divide-heavy
update, branches on an FP comparison whose outcome depends on the data,
and stores the record back.  The particle array is a few hundred KB, so
TLB behaviour is good once warm.
"""

from __future__ import annotations

from repro.caches.replacement import XorShift32
from repro.isa.builder import ProgramBuilder
from repro.mem.layout import AddressSpaceLayout
from repro.mem.memory import SparseMemory
from repro.workloads.base import (
    Workload,
    fill_float_words,
    register_workload,
    scaled,
)

#: Particles in flight (4 FP words each -> 256 KB of state).
PARTICLES = 1 << 14


@register_workload
class Doduc(Workload):
    name = "doduc"
    description = "FP Monte-Carlo transport: dependent FP chains, modest data"
    regime = "dense"

    def construct(
        self,
        b: ProgramBuilder,
        memory: SparseMemory,
        layout: AddressSpaceLayout,
        scale: float,
    ) -> None:
        rng = XorShift32(0xD0D0C)
        particles = layout.alloc_heap(PARTICLES * 16)
        fill_float_words(memory, particles, PARTICLES * 4, rng)

        steps = scaled(4200, scale)

        base = b.vint("base")
        i = b.vint("i")
        half = b.vfp("half")
        damp = b.vfp("damp")
        b.li(base, particles)
        t = b.vint("t")
        b.li(t, 1)
        b.cvtif(half, t)
        c2 = b.vfp("c2")
        b.li(t, 2)
        b.cvtif(c2, t)
        b.fdiv(half, half, c2)  # 0.5
        b.li(t, 31)
        b.cvtif(damp, t)
        b.li(t, 32)
        c32 = b.vfp("c32")
        b.cvtif(c32, t)
        b.fdiv(damp, damp, c32)  # 31/32

        b.li(i, 0)
        with b.loop_until(i, steps):
            p = b.vint("p")
            idx = b.vint("idx")
            # Stride through the particle array with a mid-size step so
            # several cache blocks stay live but pages are revisited.
            b.slli(idx, i, 4)
            b.andi(idx, idx, PARTICLES * 16 - 1)
            b.add(p, base, idx)
            x = b.vfp("x")
            v = b.vfp("v")
            e = b.vfp("e")
            w = b.vfp("w")
            b.lfw(x, p, 0)
            b.lfw(v, p, 4)
            b.lfw(e, p, 8)
            b.lfw(w, p, 12)
            # Dependent FP chain: scatter/absorb update.
            b.fmul(v, v, damp)
            b.fadd(x, x, v)
            b.fmul(e, e, half)
            b.fadd(e, e, w)
            b.fmul(w, w, damp)
            b.fadd(w, w, half)
            q = b.vfp("q")
            b.fadd(q, e, w)
            b.fdiv(e, e, q)
            # Data-dependent FP branch: did the particle absorb?
            cond = b.vint("cond")
            b.flt(cond, e, half)
            absorb = b.fresh_label()
            done = b.fresh_label()
            b.bne(cond, 0, absorb)
            b.fadd(x, x, e)
            b.j(done)
            b.bind(absorb)
            b.fsub(x, x, e)
            b.fadd(e, e, half)
            b.bind(done)
            b.sfw(x, p, 0)
            b.sfw(v, p, 4)
            b.sfw(e, p, 8)
            b.sfw(w, p, 12)
            b.addi(i, i, 1)
        b.halt()
