"""Synthetic benchmark workloads.

The paper evaluates ten programs (SPEC '92 plus ghostscript, mpeg_play,
perl, tfft).  We cannot run the original binaries, so each module here
synthesizes a program in the mini ISA engineered to reproduce its
namesake's *memory-reference structure* — data-set size, spatial and
temporal locality, pointer-versus-array style, base-register reuse,
branch predictability, and int/FP mix — which is what drives the
paper's translation-bandwidth results (see DESIGN.md §1).

Locality regimes, following the paper's characterization:

* poor TLB locality (Figure 6's worst three): ``compress``,
  ``mpeg_play``, ``tfft``;
* dense array/stencil locality: ``tomcatv``, ``doduc``, ``ghostscript``;
* pointer/interpreter codes with high base-register reuse: ``xlisp``,
  ``gcc``, ``perl``, ``espresso``.
"""

from repro.workloads.base import (
    Workload,
    WorkloadBuild,
    iter_workload_names,
    make_workload,
    register_workload,
)

# Importing the modules registers the workloads.
from repro.workloads import (  # noqa: E402,F401  (registration side effect)
    compress,
    doduc,
    espresso,
    gcc,
    ghostscript,
    mpeg_play,
    perl,
    tfft,
    tomcatv,
    xlisp,
)

__all__ = [
    "Workload",
    "WorkloadBuild",
    "iter_workload_names",
    "make_workload",
    "register_workload",
]
