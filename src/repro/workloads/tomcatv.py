"""``tomcatv`` — vectorized mesh-generation stencil (dense FP arrays).

SPEC '92 tomcatv (N=129) relaxes a 2-D mesh: row-major sweeps over a
handful of (N+2)² FP arrays with 5-point stencils.  Sequential row
traversal gives strong spatial locality — the whole working set of a
scaled run sits comfortably under the 128-entry TLB reach, which is why
tomcatv sits at the well-behaved end of the paper's Figure 6.

The kernel performs alternating residual and update sweeps over X/Y
coordinate arrays and RX/RY residual arrays, with the inner loop
unrolled two-wide for ILP.
"""

from __future__ import annotations

from repro.caches.replacement import XorShift32
from repro.isa.builder import ProgramBuilder
from repro.mem.layout import AddressSpaceLayout
from repro.mem.memory import SparseMemory
from repro.workloads.base import (
    Workload,
    fill_float_words,
    register_workload,
    scaled,
)

#: Grid edge (interior N=129 in the paper; 128 here keeps rows aligned).
N = 128

#: Row stride in words (N plus boundary columns).
ROW = N + 2


@register_workload
class Tomcatv(Workload):
    name = "tomcatv"
    description = "2-D 5-point stencil sweeps over dense FP mesh arrays"
    regime = "dense"

    def construct(
        self,
        b: ProgramBuilder,
        memory: SparseMemory,
        layout: AddressSpaceLayout,
        scale: float,
    ) -> None:
        rng = XorShift32(0x70CA)
        words = ROW * (N + 2)
        x_arr = layout.alloc_heap(words * 4)
        y_arr = layout.alloc_heap(words * 4)
        rx_arr = layout.alloc_heap(words * 4)
        ry_arr = layout.alloc_heap(words * 4)
        for arr in (x_arr, y_arr):
            fill_float_words(memory, arr, words, rng)

        rows = scaled(40, scale)

        xa = b.vint("xa")
        ya = b.vint("ya")
        rxa = b.vint("rxa")
        rya = b.vint("rya")
        quarter = b.vfp("quarter")
        b.li(xa, x_arr)
        b.li(ya, y_arr)
        b.li(rxa, rx_arr)
        b.li(rya, ry_arr)
        t = b.vint("t")
        b.li(t, 1)
        b.cvtif(quarter, t)
        four = b.vfp("four")
        b.li(t, 4)
        b.cvtif(four, t)
        b.fdiv(quarter, quarter, four)

        r = b.vint("r")
        b.li(r, 1)
        with b.loop_until(r, rows):
            # Row base pointers (row r, starting at column 1).
            px = b.vint("px")
            py = b.vint("py")
            prx = b.vint("prx")
            pry = b.vint("pry")
            rowoff = b.vint("rowoff")
            rr = b.vint("rr")
            # Interior row index 1..N (wraps for multi-pass sweeps).
            b.andi(rr, r, N - 1)
            b.addi(rr, rr, 1)
            b.li(rowoff, ROW * 4)
            b.mul(rowoff, rowoff, rr)
            b.addi(rowoff, rowoff, 4)
            b.add(px, xa, rowoff)
            b.add(py, ya, rowoff)
            b.add(prx, rxa, rowoff)
            b.add(pry, rya, rowoff)
            c = b.vint("c")
            b.li(c, 0)
            with b.loop_until(c, N // 2):
                for lane in range(2):  # two-wide unroll
                    off = 4 * lane
                    up = -ROW * 4 + off
                    down = ROW * 4 + off
                    xc = b.vfp("xc")
                    xl = b.vfp("xl")
                    xr = b.vfp("xr")
                    xu = b.vfp("xu")
                    xd = b.vfp("xd")
                    b.lfw(xc, px, off)
                    b.lfw(xl, px, off - 4)
                    b.lfw(xr, px, off + 4)
                    b.lfw(xu, px, up)
                    b.lfw(xd, px, down)
                    s = b.vfp("s")
                    b.fadd(s, xl, xr)
                    b.fadd(s, s, xu)
                    b.fadd(s, s, xd)
                    b.fmul(s, s, quarter)
                    b.fsub(s, s, xc)
                    b.sfw(s, prx, off)
                    yc = b.vfp("yc")
                    yl = b.vfp("yl")
                    yr = b.vfp("yr")
                    b.lfw(yc, py, off)
                    b.lfw(yl, py, off - 4)
                    b.lfw(yr, py, off + 4)
                    v = b.vfp("v")
                    b.fadd(v, yl, yr)
                    b.fmul(v, v, quarter)
                    b.fsub(v, v, yc)
                    b.sfw(v, pry, off)
                    # Relaxation update.
                    b.fadd(xc, xc, s)
                    b.fadd(yc, yc, v)
                    b.sfw(xc, px, off)
                    b.sfw(yc, py, off)
                b.addi(px, px, 8)
                b.addi(py, py, 8)
                b.addi(prx, prx, 8)
                b.addi(pry, pry, 8)
                b.addi(c, c, 1)
            b.addi(r, r, 1)
        b.halt()
