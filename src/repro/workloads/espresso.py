"""``espresso`` — two-level logic minimization kernel.

SPEC '92 espresso manipulates "cubes" (bit-vector rows of a boolean
cover): the hot loops AND/OR whole cube bit-vectors against each other,
test for empty intersections, and count literals.  Its data set is
small, its IPC is the highest of the paper's benchmarks (4.48 issued
ops/cycle), and its reference density is high (1.32 refs/cycle) with
excellent locality.

The kernel intersects pairs of cubes from a small cover (well inside
the TLB reach), with the word loop unrolled four ways for ILP, and a
data-dependent branch on intersection emptiness.
"""

from __future__ import annotations

from repro.caches.replacement import XorShift32
from repro.isa.builder import ProgramBuilder
from repro.mem.layout import AddressSpaceLayout
from repro.mem.memory import SparseMemory
from repro.workloads.base import (
    Workload,
    fill_random_words,
    register_workload,
    scaled,
)

#: Cubes in the cover and 32-bit words per cube.
CUBES = 256
WORDS_PER_CUBE = 16


@register_workload
class Espresso(Workload):
    name = "espresso"
    description = "cube intersection: unrolled bit-vector ops, small data"
    regime = "pointer"

    def construct(
        self,
        b: ProgramBuilder,
        memory: SparseMemory,
        layout: AddressSpaceLayout,
        scale: float,
    ) -> None:
        rng = XorShift32(0xE59)
        cover = layout.alloc_heap(CUBES * WORDS_PER_CUBE * 4)
        result = layout.alloc_heap(WORDS_PER_CUBE * 4)
        fill_random_words(memory, cover, CUBES * WORDS_PER_CUBE, rng, mask=0xFFFF_FFFF)

        pairs = scaled(1500, scale)
        cube_bytes = WORDS_PER_CUBE * 4

        base = b.vint("base")
        res = b.vint("res")
        i = b.vint("i")
        nonempty = b.vint("nonempty")
        b.li(base, cover)
        b.li(res, result)
        b.li(nonempty, 0)
        b.li(i, 0)
        with b.loop_until(i, pairs):
            a_ptr = b.vint("a_ptr")
            c_ptr = b.vint("c_ptr")
            t = b.vint("t")
            # Pick two cubes with a cheap mix of the pair index.
            b.slli(t, i, 1)
            b.andi(t, t, CUBES - 1)
            b.li(a_ptr, cube_bytes)
            b.mul(a_ptr, a_ptr, t)
            b.add(a_ptr, a_ptr, base)
            u = b.vint("u")
            b.xori(u, t, 0x55)
            b.andi(u, u, CUBES - 1)
            b.li(c_ptr, cube_bytes)
            b.mul(c_ptr, c_ptr, u)
            b.add(c_ptr, c_ptr, base)
            acc = b.vint("acc")
            b.li(acc, 0)
            # Unrolled 4-wide intersection over the cube words.  The
            # temporaries are shared across the unrolled blocks so the
            # kernel fits the 32-register budget without spilling.
            w0 = b.vint("w0")
            w1 = b.vint("w1")
            w2 = b.vint("w2")
            w3 = b.vint("w3")
            x0 = b.vint("x0")
            x1 = b.vint("x1")
            x2 = b.vint("x2")
            x3 = b.vint("x3")
            for block in range(0, WORDS_PER_CUBE, 4):
                off = block * 4
                b.lw(w0, a_ptr, off)
                b.lw(w1, a_ptr, off + 4)
                b.lw(w2, a_ptr, off + 8)
                b.lw(w3, a_ptr, off + 12)
                b.lw(x0, c_ptr, off)
                b.lw(x1, c_ptr, off + 4)
                b.lw(x2, c_ptr, off + 8)
                b.lw(x3, c_ptr, off + 12)
                b.and_(w0, w0, x0)
                b.and_(w1, w1, x1)
                b.and_(w2, w2, x2)
                b.and_(w3, w3, x3)
                b.sw(w0, res, off)
                b.sw(w1, res, off + 4)
                b.sw(w2, res, off + 8)
                b.sw(w3, res, off + 12)
                b.or_(w0, w0, w1)
                b.or_(w2, w2, w3)
                b.or_(w0, w0, w2)
                b.or_(acc, acc, w0)
            # Data-dependent branch: empty intersection?
            skip = b.fresh_label()
            b.andi(acc, acc, 1)
            b.beq(acc, 0, skip)
            b.addi(nonempty, nonempty, 1)
            b.bind(skip)
            b.addi(i, i, 1)
        b.halt()
