"""``perl`` — bytecode-interpreter kernel (dispatch + operand stack).

Perl running its test suite spends its time in the opcode dispatch loop:
fetch a bytecode, indirect-jump to its handler, push/pop an operand
stack in memory, occasionally look up a hash.  Branchy (the paper
measures 81.2% prediction) with 1.10 refs/cycle and high base-register
reuse (the interpreter's VM registers — bytecode pointer, stack pointer
— live in architected registers and are dereferenced constantly).

The kernel is a real interpreter for a tiny stack VM: a random but
valid bytecode program is synthesized into memory at build time, and a
dispatch table of *code addresses* (filled in after register
allocation, when label addresses are final) drives ``jr``-based
dispatch, exactly like a threaded interpreter.
"""

from __future__ import annotations

from repro.caches.replacement import XorShift32
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import AddrMode
from repro.isa.program import Program
from repro.mem.layout import AddressSpaceLayout
from repro.mem.memory import SparseMemory
from repro.workloads.base import Workload, register_workload, scaled

#: VM opcodes.  OP_JUMP is a *conditional* backward jump (pops its
#: condition); OP_LOOP unconditionally restarts the bytecode program.
OP_PUSH, OP_ADD, OP_DUP, OP_HASH, OP_DROP, OP_JUMP, OP_LOOP = range(7)

#: Bytecode program length (ops).
BYTECODE_OPS = 4096

#: Hash table words for OP_HASH (scattered lookups over 512 KB).
HASH_WORDS = 1 << 17


@register_workload
class Perl(Workload):
    name = "perl"
    description = "threaded bytecode interpreter with memory operand stack"
    regime = "pointer"

    def construct(
        self,
        b: ProgramBuilder,
        memory: SparseMemory,
        layout: AddressSpaceLayout,
        scale: float,
    ) -> None:
        rng = XorShift32(0x9E71)
        bytecode = layout.alloc_global(BYTECODE_OPS * 8)
        dispatch = layout.alloc_global(8 * 4)
        vm_stack = layout.alloc_stack(4096)
        hash_tab = layout.alloc_heap(HASH_WORDS * 4)
        self._dispatch_addr = dispatch

        # Synthesize a valid bytecode program: ops keep the VM stack
        # depth in [2, 64]; every op is (opcode word, operand word).
        depth = 0
        for i in range(BYTECODE_OPS):
            if i >= BYTECODE_OPS - 2:
                op = OP_LOOP  # wrap to the start
            elif depth < 3:
                op = OP_PUSH
            elif depth > 60:
                op = rng.below(2) + OP_HASH  # HASH or DROP shrink/keep
            else:
                op = rng.below(6)
                if op == OP_JUMP and i % 5:
                    op = OP_HASH  # keep jumps rare-ish, hashes common
            operand = rng.next() & 0xFFFF
            if op == OP_JUMP:
                # Conditional jumps land backwards within 256 ops.
                operand = max(0, i - 1 - rng.below(256))
            memory.store_word(bytecode + 8 * i, op)
            memory.store_word(bytecode + 8 * i + 4, operand)
            if op == OP_PUSH or op == OP_DUP:
                depth += 1
            elif op in (OP_ADD, OP_DROP, OP_JUMP):
                depth -= 1

        for w in range(0, HASH_WORDS, 3):
            memory.store_word(hash_tab + 4 * w, rng.next() & 0xFFFF)

        steps = scaled(7000, scale)

        ip = b.vint("ip")  # bytecode pointer (VM register)
        sp = b.vint("vsp")  # VM operand stack pointer
        dt = b.vint("dt")
        htab = b.vint("htab")
        bc0 = b.vint("bc0")
        count = b.vint("count")
        b.li(ip, bytecode)
        b.li(sp, vm_stack)
        b.li(dt, dispatch)
        b.li(htab, hash_tab)
        b.li(bc0, bytecode)
        # Seed the stack.
        b.li(count, 7)
        b.sw(count, sp, 0)
        b.sw(count, sp, 4)
        b.addi(sp, sp, 8)
        b.li(count, 0)
        with b.loop_until(count, steps):
            op = b.vint("op")
            operand = b.vint("operand")
            handler = b.vint("handler")
            # Fetch and dispatch (the interpreter's hot path), using
            # the ISA's post-increment addressing as a real threaded
            # interpreter on such an ISA would.
            b.lw(op, ip, 4, mode=AddrMode.POST_INC)
            b.lw(operand, ip, 4, mode=AddrMode.POST_INC)
            b.slli(op, op, 2)
            b.add(op, op, dt)
            b.lw(handler, op, 0)
            b.jr(handler)

            next_label = b.fresh_label()
            t = b.vint("t")
            u = b.vint("u")

            b.label("h_push")
            b.sw(operand, sp, 0)
            b.addi(sp, sp, 4)
            b.j(next_label)

            b.label("h_add")
            b.addi(sp, sp, -4)
            b.lw(t, sp, 0)
            b.lw(u, sp, -4)
            b.add(u, u, t)
            b.sw(u, sp, -4)
            b.j(next_label)

            b.label("h_dup")
            b.lw(t, sp, -4)
            b.sw(t, sp, 0)
            b.addi(sp, sp, 4)
            b.j(next_label)

            b.label("h_hash")
            # Scatter probe keyed by the top of stack mixed with the op
            # counter (interpreter state evolves between visits).
            b.lw(t, sp, -4)
            b.slli(u, t, 7)
            b.xor(u, u, t)
            mix = b.vint("mix")
            b.slli(mix, count, 3)
            b.xor(u, u, mix)
            b.andi(u, u, HASH_WORDS - 1)
            b.slli(u, u, 2)
            b.add(u, u, htab)
            b.lw(u, u, 0)
            b.add(t, t, u)
            b.sw(t, sp, -4)
            b.j(next_label)

            b.label("h_drop")
            b.addi(sp, sp, -4)
            b.j(next_label)

            b.label("h_jump")
            # Pop the condition; mix in the op counter so revisited
            # jumps don't loop deterministically.
            no_jump = b.fresh_label()
            b.addi(sp, sp, -4)
            b.lw(t, sp, 0)
            b.add(u, t, count)
            b.andi(u, u, 1)
            b.beq(u, 0, no_jump)
            b.slli(t, operand, 3)
            b.add(ip, bc0, t)
            b.bind(no_jump)
            b.j(next_label)

            b.label("h_loop")
            b.mov(ip, bc0)
            b.j(next_label)

            b.bind(next_label)
            b.addi(count, count, 1)
        b.halt()

    def post_build(self, program: Program, memory: SparseMemory) -> None:
        """Fill the dispatch table with resolved handler code addresses."""
        handlers = [
            "h_push",
            "h_add",
            "h_dup",
            "h_hash",
            "h_drop",
            "h_jump",
            "h_loop",
        ]
        for slot, label in enumerate(handlers):
            memory.store_word(
                self._dispatch_addr + 4 * slot, program.pc_of(program.labels[label])
            )
