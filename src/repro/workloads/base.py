"""Workload framework: registry, build products, shared helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.caches.replacement import XorShift32
from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.mem.layout import AddressSpaceLayout
from repro.mem.memory import SparseMemory


@dataclass
class WorkloadBuild:
    """A ready-to-run workload instance: program plus initialized memory."""

    name: str
    program: Program
    memory: SparseMemory
    #: Approximate dynamic instruction count at scale 1.0 (informative).
    approx_instructions: int = 0


class Workload:
    """Base class: subclasses implement :meth:`construct`.

    ``scale`` linearly adjusts iteration counts (and, where meaningful,
    data-set sizes) so tests can run tiny instances and benchmarks can
    run larger ones.
    """

    #: Registry name (set by subclasses).
    name = "workload"
    #: One-line description of what the synthetic kernel mimics.
    description = ""
    #: Locality regime tag: "poor", "dense", or "pointer".
    regime = "dense"

    def build(
        self, int_regs: int = 32, fp_regs: int = 32, scale: float = 1.0
    ) -> WorkloadBuild:
        """Build the program at a register budget and scale."""
        if scale <= 0:
            raise ValueError(f"scale must be positive: {scale}")
        builder = ProgramBuilder(self.name)
        memory = SparseMemory()
        layout = AddressSpaceLayout()
        self.construct(builder, memory, layout, scale)
        program = builder.build(int_regs=int_regs, fp_regs=fp_regs)
        self.post_build(program, memory)
        return WorkloadBuild(self.name, program, memory)

    def construct(
        self,
        b: ProgramBuilder,
        memory: SparseMemory,
        layout: AddressSpaceLayout,
        scale: float,
    ) -> None:
        """Emit the program and initialize its data (subclass hook)."""
        raise NotImplementedError

    def post_build(self, program: Program, memory: SparseMemory) -> None:
        """Hook for initialization that needs resolved label addresses
        (e.g. interpreter dispatch tables containing code pointers)."""


_REGISTRY: dict[str, Callable[[], Workload]] = {}


def register_workload(cls: type[Workload]) -> type[Workload]:
    """Class decorator: add a workload to the registry."""
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate workload name: {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def make_workload(name: str) -> Workload:
    """Instantiate a registered workload by name."""
    cls = _REGISTRY.get(name)
    if cls is None:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown workload {name!r}; known: {known}")
    return cls()


def iter_workload_names() -> Iterator[str]:
    """All registered workload names, in registration order."""
    return iter(_REGISTRY)


# -- shared data-generation helpers ------------------------------------------


def fill_random_words(
    memory: SparseMemory, base: int, count: int, rng: XorShift32, mask: int = 0xFFFF
) -> None:
    """Initialize ``count`` words at ``base`` with bounded random values."""
    memory.store_words(base, ((rng.next() & mask) for _ in range(count)))


def fill_float_words(
    memory: SparseMemory, base: int, count: int, rng: XorShift32
) -> None:
    """Initialize ``count`` FP words with values in (0, 1]."""
    memory.store_words(
        base, (((rng.next() & 0xFFFF) + 1) / 65536.0 for _ in range(count))
    )


def scaled(value: int, scale: float, minimum: int = 1) -> int:
    """Scale an iteration count, clamped below."""
    return max(minimum, int(value * scale))
