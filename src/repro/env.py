"""Shared environment-variable conventions.

Every boolean ``$REPRO_*`` switch in the library goes through
:func:`env_bool`, so they all agree on what counts as *off*: an unset
variable, the empty string, and the words ``0``/``false``/``no``/``off``
(case-insensitive, surrounding whitespace ignored).  Anything else —
``1``, ``true``, ``yes``, ``on``, or any other non-empty token — is
*on*.

This exists because the obvious ``bool(os.environ.get(NAME))`` treats
``REPRO_KERNEL=0`` as *enabled* (any non-empty string is truthy), which
inverts the user's intent; see ``EvalOptions.from_args`` for the
flag > environment > default precedence rule built on top of this.
"""

from __future__ import annotations

import os

#: Spellings that read as "disabled" (compared case-insensitively).
FALSE_WORDS = frozenset({"", "0", "false", "no", "off"})


def env_bool(name: str, default: bool = False) -> bool:
    """Interpret the environment variable ``name`` as a boolean switch.

    Unset returns ``default``; a set value returns ``False`` for the
    :data:`FALSE_WORDS` spellings and ``True`` for everything else.
    """
    value = os.environ.get(name)
    if value is None:
        return default
    return value.strip().lower() not in FALSE_WORDS
