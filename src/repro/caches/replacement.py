"""Replacement policy helpers shared by caches and TLBs.

Random replacement uses a small deterministic xorshift PRNG so that
simulations are exactly reproducible run-to-run (the paper's base TLBs
use random replacement; reproducibility matters more to us than entropy
quality, and xorshift32 is plenty uniform for victim selection).
"""

from __future__ import annotations


class XorShift32:
    """Deterministic 32-bit xorshift PRNG."""

    __slots__ = ("state",)

    def __init__(self, seed: int = 0x1234_5678):
        if seed == 0:
            raise ValueError("xorshift seed must be non-zero")
        self.state = seed & 0xFFFF_FFFF

    def next(self) -> int:
        """Return the next 32-bit pseudo-random value."""
        x = self.state
        x ^= (x << 13) & 0xFFFF_FFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFF_FFFF
        self.state = x
        return x

    def below(self, bound: int) -> int:
        """Return a pseudo-random integer in ``[0, bound)``."""
        if bound <= 0:
            raise ValueError(f"bound must be positive: {bound}")
        return self.next() % bound
