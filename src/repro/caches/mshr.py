"""Miss-status holding registers (MSHRs) for the non-blocking data cache.

The paper's data cache is non-blocking with a four-ported interface,
"supporting one outstanding miss per physical register".  The timing
engine models port bandwidth through the load/store functional units;
this module models miss *merging*: a second miss to a block that is
already being fetched does not start a new memory transaction — it
completes when the first one does.
"""

from __future__ import annotations

#: Sentinel for "no pending completion" (compares above any real cycle).
_NEVER = 1 << 62


class MSHRFile:
    """Tracks outstanding cache-block fetches.

    Parameters
    ----------
    max_outstanding:
        Maximum simultaneous outstanding block fetches (structural
        limit).  The paper allows one per physical register (64); the
        engine rarely hits this, but the limit is enforced.
    """

    __slots__ = ("max_outstanding", "_pending", "_last_expired", "allocations", "merges")

    def __init__(self, max_outstanding: int = 64):
        if max_outstanding <= 0:
            raise ValueError(f"max_outstanding must be positive: {max_outstanding}")
        self.max_outstanding = max_outstanding
        #: Map block number -> cycle at which the fetch completes.
        self._pending: dict[int, int] = {}
        #: Cycle expire() last ran at, so repeat calls within one cycle
        #: (run loop + issue path) cost one dict lookup, not a scan.
        self._last_expired = -1
        self.allocations = 0
        self.merges = 0

    def lookup(self, block: int) -> int | None:
        """Completion cycle of an in-flight fetch of ``block``, if any."""
        return self._pending.get(block)

    def allocate(self, block: int, now: int, latency: int) -> int:
        """Record a miss to ``block``; returns the completion cycle.

        If the block is already being fetched the miss merges with the
        existing transaction.  Raises :class:`RuntimeError` when the
        structural limit would be exceeded (callers should throttle).
        """
        done = self._pending.get(block)
        if done is not None:
            self.merges += 1
            return done
        if len(self._pending) >= self.max_outstanding:
            raise RuntimeError("MSHR file full")
        done = now + latency
        self._pending[block] = done
        self.allocations += 1
        return done

    def full(self) -> bool:
        """True when no new fetch can be started."""
        return len(self._pending) >= self.max_outstanding

    def expire(self, now: int) -> None:
        """Retire completed fetches (idempotent within a cycle)."""
        if now <= self._last_expired or not self._pending:
            self._last_expired = max(now, self._last_expired)
            return
        self._last_expired = now
        pending = self._pending
        done = [block for block, cycle in pending.items() if cycle <= now]
        for block in done:
            del pending[block]

    def next_completion(self, now: int) -> int:
        """Earliest in-flight fill completing after ``now`` (event hook).

        Returns a sentinel far in the future when nothing is pending —
        callers treat the value as "no event from the MSHRs".
        """
        best = _NEVER
        for cycle in self._pending.values():
            if now < cycle < best:
                best = cycle
        return best

    def outstanding(self) -> int:
        """Number of in-flight block fetches."""
        return len(self._pending)
