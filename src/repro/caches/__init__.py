"""Cache models.

``cache``
    :class:`SetAssocCache` — a set-associative cache with LRU or random
    replacement and write-back/write-allocate semantics, used for both
    the 32 KB 2-way instruction and data caches of the paper's baseline.
``mshr``
    :class:`MSHRFile` — miss-status holding registers for the
    non-blocking data cache (merges misses to the same block).
"""

from repro.caches.cache import CacheStats, SetAssocCache
from repro.caches.mshr import MSHRFile

__all__ = ["CacheStats", "SetAssocCache", "MSHRFile"]
