"""Set-associative cache model.

The model tracks tags and dirty bits only (no data — the functional
simulator owns values), which is all the timing engine needs: hit/miss,
writeback generation, and occupancy.  Both of the paper's baseline
caches are instances: 32 KB, 2-way, 32-byte blocks, write-back,
write-allocate, 6-cycle miss latency (latency is charged by the engine).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.caches.replacement import XorShift32


@dataclass
class CacheStats:
    """Counters accumulated by :class:`SetAssocCache`."""

    accesses: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed (0 if no accesses)."""
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssocCache:
    """A set-associative, write-back, write-allocate cache.

    Parameters
    ----------
    size:
        Total capacity in bytes.
    assoc:
        Ways per set (``assoc == blocks`` gives a fully-associative cache).
    block_size:
        Bytes per block (power of two).
    replacement:
        ``"lru"`` or ``"random"``.
    seed:
        PRNG seed for random replacement.
    """

    __slots__ = (
        "size",
        "assoc",
        "block_size",
        "block_shift",
        "num_sets",
        "set_mask",
        "replacement",
        "stats",
        "_rng",
        "_sets",
    )

    def __init__(
        self,
        size: int = 32 * 1024,
        assoc: int = 2,
        block_size: int = 32,
        replacement: str = "lru",
        seed: int = 0x2468_ACE1,
    ):
        if block_size <= 0 or block_size & (block_size - 1):
            raise ValueError(f"block size must be a power of two: {block_size}")
        if size % (assoc * block_size):
            raise ValueError("size must be a multiple of assoc * block_size")
        if replacement not in ("lru", "random"):
            raise ValueError(f"unknown replacement policy: {replacement!r}")
        self.size = size
        self.assoc = assoc
        self.block_size = block_size
        self.block_shift = block_size.bit_length() - 1
        self.num_sets = size // (assoc * block_size)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"number of sets must be a power of two: {self.num_sets}")
        self.set_mask = self.num_sets - 1
        self.replacement = replacement
        self.stats = CacheStats()
        self._rng = XorShift32(seed)
        # Each set is a list of [tag, dirty]; MRU at the end (for LRU).
        self._sets: list[list[list]] = [[] for _ in range(self.num_sets)]

    # -- address arithmetic ----------------------------------------------------

    def block_of(self, addr: int) -> int:
        """Block number (tag+set) of an address."""
        return addr >> self.block_shift

    def _locate(self, addr: int) -> tuple[list[list], int]:
        block = addr >> self.block_shift
        return self._sets[block & self.set_mask], block >> 0

    # -- access ------------------------------------------------------------------

    def probe(self, addr: int) -> bool:
        """Check residency without updating state or stats."""
        return self.probe_block(addr >> self.block_shift)

    def probe_block(self, block: int) -> bool:
        """:meth:`probe` for callers that already hold the block number."""
        ways = self._sets[block & self.set_mask]
        return any(line[0] == block for line in ways)

    def access(self, addr: int, write: bool = False) -> bool:
        """Access the block containing ``addr``.

        Returns True on hit.  On a miss the block is allocated
        (write-allocate), possibly writing back a dirty victim (counted
        in ``stats.writebacks``).
        """
        return self.access_block(addr >> self.block_shift, write)

    def access_block(self, block: int, write: bool = False) -> bool:
        """:meth:`access` for callers that already hold the block number."""
        ways = self._sets[block & self.set_mask]
        self.stats.accesses += 1
        for i, line in enumerate(ways):
            if line[0] == block:
                if write:
                    line[1] = True
                # Move to MRU position.
                ways.append(ways.pop(i))
                return True
        self.stats.misses += 1
        self._fill(ways, block, write)
        return False

    def fill(self, addr: int, write: bool = False) -> None:
        """Install the block containing ``addr`` without counting an access."""
        ways, block = self._locate(addr)
        for i, line in enumerate(ways):
            if line[0] == block:
                if write:
                    line[1] = True
                ways.append(ways.pop(i))
                return
        self._fill(ways, block, write)

    def _fill(self, ways: list[list], block: int, write: bool) -> None:
        if len(ways) >= self.assoc:
            if self.replacement == "lru":
                victim = ways.pop(0)
            else:
                victim = ways.pop(self._rng.below(len(ways)))
            if victim[1]:
                self.stats.writebacks += 1
        ways.append([block, write])

    def invalidate(self, addr: int) -> bool:
        """Drop the block containing ``addr``; returns True if present.

        A dirty victim is written back (counted).
        """
        ways, block = self._locate(addr)
        for i, line in enumerate(ways):
            if line[0] == block:
                if line[1]:
                    self.stats.writebacks += 1
                del ways[i]
                return True
        return False

    def resident_blocks(self) -> int:
        """Number of valid blocks currently cached."""
        return sum(len(ways) for ways in self._sets)
