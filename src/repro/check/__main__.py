"""CLI for the simulation sanitizer.

Examples::

    # CI smoke gate: fixed seed, every Table 2 design, both issue models.
    python -m repro.check --seed 0 --iterations 20

    # Interrogate one design (required for new mechanisms, see
    # docs/extending.md); add --insts for longer runs.
    python -m repro.check --design M8 --iterations 10

Exit status is non-zero when any invariant violation or differential
mismatch is found; details are printed per failing iteration.
"""

from __future__ import annotations

import argparse
import sys

from repro.check.fuzz import DEFAULT_INSTRUCTIONS, run_fuzz
from repro.tlb.factory import DESIGN_MNEMONICS
from repro.workloads import iter_workload_names


def _design_list(text: str) -> list[str]:
    known = {d.upper() for d in DESIGN_MNEMONICS}
    designs = [part.strip().upper() for part in text.split(",") if part.strip()]
    for design in designs:
        if design not in known:
            raise argparse.ArgumentTypeError(
                f"unknown design {design!r}; known: {', '.join(DESIGN_MNEMONICS)}"
            )
    return designs


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Fuzz the simulator with invariant and differential checks.",
    )
    parser.add_argument("--seed", type=int, default=0, help="fuzzer RNG seed")
    parser.add_argument(
        "--iterations", type=int, default=20, help="design points to fuzz"
    )
    parser.add_argument(
        "--design",
        "--designs",
        dest="designs",
        type=_design_list,
        default=None,
        help="comma-separated design mnemonics (default: all 13)",
    )
    parser.add_argument(
        "--workloads",
        default=None,
        help="comma-separated workload names (default: all registered)",
    )
    parser.add_argument(
        "--insts",
        type=int,
        default=DEFAULT_INSTRUCTIONS,
        help="dynamic instruction budget per run",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-iteration output"
    )
    args = parser.parse_args(argv)

    workloads = None
    if args.workloads:
        known = set(iter_workload_names())
        workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
        unknown = [w for w in workloads if w not in known]
        if unknown:
            parser.error(f"unknown workload(s): {', '.join(unknown)}")

    def progress(index: int, total: int, record) -> None:
        if args.quiet:
            return
        status = "ok" if record.ok else "FAIL"
        req = record.request
        print(
            f"[{index + 1:3d}/{total}] {req.name:<16s} {req.issue_model:<7s} "
            f"{status}",
            flush=True,
        )
        if not record.ok:
            print(record.render(), flush=True)

    report = run_fuzz(
        seed=args.seed,
        iterations=args.iterations,
        designs=args.designs,
        workloads=workloads,
        insts=args.insts,
        progress=progress,
    )
    print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
