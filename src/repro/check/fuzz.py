"""Seeded config fuzzer driving the sanitizer across random design points.

Each iteration draws a random valid :class:`~repro.eval.runner.RunRequest`
— workload, machine-config overrides, and (sometimes) a randomized
declarative mechanism spec — then runs it twice:

1. under the invariant checker (``MachineConfig.sanity``), which
   validates per-cycle engine invariants and replays every skipped
   mechanism tick against the ``quiescent_until`` contract;
2. through the differential harness (:func:`repro.check.diff.
   run_differential`), comparing event-driven vs. plain loops, the
   compiled trace kernel vs. the interpreted machine (under both
   loops), cached vs. uncached artifacts, and timing vs. functional
   state.

Designs round-robin over the requested mnemonics (all 13 Table 2
designs by default, so 20 iterations touch every one) and the issue
model alternates out-of-order/in-order deterministically, guaranteeing
both models appear for every design pool.  Everything is derived from
``random.Random(seed)``: the same seed always fuzzes the same points.

Exposed as ``python -m repro.check`` (see :mod:`repro.check.__main__`);
the CI ``check-smoke`` job runs it at a fixed seed and budget.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.check.diff import (
    DiffReport,
    Mismatch,
    PIPEVIEW_LIMIT,
    request_with_config,
    run_differential,
)
from repro.check.invariants import SanityError
from repro.eval.runner import RunRequest, simulate
from repro.tlb.factory import DESIGN_MNEMONICS
from repro.workloads import iter_workload_names

#: Default per-iteration dynamic instruction budget.  Small enough that
#: one iteration (five timing runs plus two functional replays) stays
#: in the low seconds; large enough that every design sees base-TLB
#: misses, port conflicts, and MSHR pressure.
DEFAULT_INSTRUCTIONS = 2000


def _random_mechanism_spec(rng: random.Random, design: str):
    """A randomized declarative spec for ``design``'s mechanism family.

    Keeps the fuzzed point in the same family the mnemonic names, so
    ``--design`` still governs which mechanism code is exercised.
    """
    base = design.upper()
    if base.startswith("T"):
        return (
            "MultiPortedTLB",
            {
                "ports": rng.randint(1, 4),
                "entries": rng.choice((64, 128)),
                "replacement": rng.choice(("random", "lru")),
            },
        )
    if base.startswith("I") or base.startswith("X"):
        banks = rng.choice((2, 4, 8))
        return (
            "InterleavedTLB",
            {
                "banks": banks,
                "entries": 128,  # must divide evenly into the banks
                "select": rng.choice(("bit", "xor")),
                "piggyback_per_bank": rng.randint(0, 3),
            },
        )
    if base.startswith("M"):
        return (
            "MultiLevelTLB",
            {
                "l1_entries": rng.choice((4, 8, 16)),
                "l1_ports": rng.choice((2, 4)),
                "l2_ports": rng.choice((1, 2)),
            },
        )
    if base.startswith("PB"):
        return (
            "PiggybackTLB",
            {
                "ports": rng.choice((1, 2)),
                "piggyback_ports": rng.randint(0, 3),
            },
        )
    if base.startswith("P"):
        return (
            "PretranslationMechanism",
            {
                "cache_entries": rng.choice((4, 8, 16)),
                "offset_tag_bits": rng.choice((0, 2, 4)),
            },
        )
    return None


def random_request(
    rng: random.Random,
    design: str,
    workloads: "list[str] | None" = None,
    insts: int = DEFAULT_INSTRUCTIONS,
    issue_model: str | None = None,
) -> RunRequest:
    """Draw one random valid request for ``design``."""
    if workloads is None:
        workloads = list(iter_workload_names())
    options: dict = {
        "issue_model": issue_model or rng.choice(("ooo", "inorder")),
        "max_instructions": insts,
        # 0 twice: context switches stay the exception, as in the grids.
        "context_switch_interval": rng.choice((0, 0, 700, 2100)),
    }
    if rng.random() < 0.5:
        width = rng.choice((2, 4, 8))
        options.update(fetch_width=width, issue_width=width, commit_width=width)
    if rng.random() < 0.4:
        options["rob_entries"] = rng.choice((16, 32, 64))
    if rng.random() < 0.4:
        options["lsq_entries"] = rng.choice((8, 16, 32))
    if rng.random() < 0.3:
        options["page_size"] = 8192
    if rng.random() < 0.25:
        options["model_itlb"] = True
    if rng.random() < 0.25:
        options["model_wrong_path"] = False
    if rng.random() < 0.3:
        options["dcache_mshrs"] = rng.choice((4, 8, 64))
    if rng.random() < 0.3:
        options["predictor"] = rng.choice(("gap", "gshare", "bimodal", "taken"))
    mechanism = None
    if rng.random() < 0.4:
        mechanism = _random_mechanism_spec(rng, design)
    return RunRequest.create(
        rng.choice(workloads), design, mechanism=mechanism, **options
    )


@dataclass
class FuzzRecord:
    """One fuzzed design point and what the sanitizer found there."""

    request: RunRequest
    sanity_error: str | None = None
    mismatches: list[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.sanity_error is None and not self.mismatches

    def render(self) -> str:
        lines = []
        if self.sanity_error is not None:
            lines.append(f"  invariant violation: {self.sanity_error}")
        lines.extend("  " + m.render() for m in self.mismatches)
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzzing campaign."""

    seed: int
    records: list[FuzzRecord] = field(default_factory=list)

    @property
    def violations(self) -> int:
        return sum(1 for r in self.records if r.sanity_error is not None)

    @property
    def mismatched(self) -> int:
        return sum(1 for r in self.records if r.mismatches)

    @property
    def ok(self) -> bool:
        return self.violations == 0 and self.mismatched == 0

    def render(self) -> str:
        return (
            f"fuzz(seed={self.seed}): {len(self.records)} iterations, "
            f"{self.violations} invariant violations, "
            f"{self.mismatched} differential mismatches"
        )


def run_fuzz(
    seed: int = 0,
    iterations: int = 20,
    designs: "list[str] | None" = None,
    workloads: "list[str] | None" = None,
    insts: int = DEFAULT_INSTRUCTIONS,
    pipeview_limit: int = PIPEVIEW_LIMIT,
    progress=None,
) -> FuzzReport:
    """Fuzz ``iterations`` random points; returns the aggregate report.

    ``progress`` is an optional callable ``(index, total, record)``
    invoked after each iteration (the CLI's live output).
    """
    rng = random.Random(seed)
    pool = list(designs) if designs else list(DESIGN_MNEMONICS)
    report = FuzzReport(seed=seed)
    for i in range(iterations):
        design = pool[i % len(pool)]
        issue_model = ("ooo", "inorder")[i % 2]
        req = random_request(
            rng, design, workloads=workloads, insts=insts, issue_model=issue_model
        )
        record = FuzzRecord(request=req)
        try:
            simulate(request_with_config(req, sanity=True))
        except SanityError as exc:
            record.sanity_error = str(exc)
        diff: DiffReport = run_differential(req, pipeview_limit=pipeview_limit)
        record.mismatches = diff.mismatches
        report.records.append(record)
        if progress is not None:
            progress(i, iterations, record)
    return report
