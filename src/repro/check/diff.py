"""Differential harness: one request, several redundant execution paths.

Every acceleration layer in the library has a slow, obviously-correct
twin; this module runs both sides and diffs the outcome:

* **loops** — the event-driven cycle-skipping loop vs. the plain
  one-cycle-at-a-time loop (``MachineConfig.event_driven``), compared
  over the full stats dataclass.  On divergence the first divergent
  instruction/cycle is located by capturing both runs through
  :class:`~repro.engine.pipeview.PipelineTrace` and the excerpt is
  attached to the mismatch.
* **artifacts** — the in-memory build vs. the same build round-tripped
  through an on-disk :class:`~repro.eval.artifacts.ArtifactStore`
  container (program, trace, and fetch plan), compared record-by-record
  and then by running the timing machine on both sides.
* **functional** — final architectural state (registers, memory image,
  retired count) of the original program vs. its codec round trip, plus
  timing-vs-functional counter cross-checks (committed instructions,
  memory references, and control transfers must match the trace the
  functional simulator produced).
* **kernel** — the compiled trace kernel (:mod:`repro.kernel`) vs. the
  interpreted machine, under both the event-driven and the plain loop,
  compared over the full stats dataclass; divergences are located by
  lockstep timeline comparison exactly like the loops check.
* **kernel-batch** — the batch-vectorized backend
  (:mod:`repro.kernel.batch`: encode-time geometry + wavefront
  stepping) vs. the interpreted machine, same comparison; in-order
  requests exercise the documented fallback to the base kernel.

The entry point is :func:`run_differential`, which returns a
:class:`DiffReport`; the fuzz harness (:mod:`repro.check.fuzz`) drives
it across random configurations, and ``python -m repro.check.diff``
runs a chosen check subset over a workload × design grid (CI's
``kernel-smoke`` job and the Figure 5 acceptance sweep).
"""

from __future__ import annotations

import dataclasses
import tempfile
from dataclasses import dataclass, field

from repro.engine.frontend import build_fetch_plan, fetch_config_key
from repro.engine.machine import Machine
from repro.engine.pipeview import PipelineTrace
from repro.eval.artifacts import ArtifactStore
from repro.eval.runner import RunRequest, _CACHE, simulate
from repro.func.executor import run_program
from repro.func.tracefile import decode_program, encode_program
from repro.ingest.build import is_trace_workload
from repro.kernel import capture_batch_timelines, capture_kernel_timelines

#: The redundant paths one differential run exercises.
CHECKS = ("loops", "artifacts", "functional", "kernel", "kernel-batch")

#: Instructions captured per side when locating a loop divergence.
PIPEVIEW_LIMIT = 160


def request_with_config(req: RunRequest, **overrides) -> RunRequest:
    """A copy of ``req`` with extra ``MachineConfig`` override pairs."""
    merged = dict(req.config)
    merged.update(overrides)
    return dataclasses.replace(req, config=tuple(merged.items()))


@dataclass
class Mismatch:
    """One divergence between redundant execution paths."""

    check: str
    detail: str
    cycle: int | None = None
    excerpt: str = ""

    def render(self) -> str:
        where = f" (first divergent cycle {self.cycle})" if self.cycle is not None else ""
        text = f"[{self.check}]{where} {self.detail}"
        if self.excerpt:
            text += "\n" + self.excerpt
        return text


@dataclass
class DiffReport:
    """Outcome of one differential run."""

    request: RunRequest
    checks: tuple[str, ...] = CHECKS
    mismatches: list[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def render(self) -> str:
        if self.ok:
            return f"{self.request.name}: {len(self.checks)} checks ok"
        lines = [f"{self.request.name}: {len(self.mismatches)} mismatch(es)"]
        lines.extend(m.render() for m in self.mismatches)
        return "\n".join(lines)


def _stats_dict(stats) -> dict:
    return dataclasses.asdict(stats)


def _diff_stats(a: dict, b: dict, left: str, right: str) -> str:
    """Human-readable summary of the differing counter fields."""
    keys = sorted(k for k in a if a[k] != b[k])
    parts = [f"{k}: {a[k]!r} ({left}) != {b[k]!r} ({right})" for k in keys[:6]]
    if len(keys) > 6:
        parts.append(f"... {len(keys) - 6} more field(s)")
    return "; ".join(parts)


# ---------------------------------------------------------------------------
# Check 1: event-driven vs. plain cycle loop.
# ---------------------------------------------------------------------------


def _first_divergence(req: RunRequest, limit: int) -> tuple[int | None, str]:
    """Locate a loop divergence by lockstep pipeview comparison."""
    trace = _CACHE.get_trace(
        req.workload, req.int_regs, req.fp_regs, req.scale, req.max_instructions
    )
    base = req.machine_config()
    views = []
    for flag in (True, False):
        config = dataclasses.replace(base, event_driven=flag, sanity=False)
        mech = req.make_mech(config.page_shift)
        views.append(PipelineTrace.capture(config, mech, trace, limit=limit))
    fast, slow = views
    for f, s in zip(fast.timelines, slow.timelines):
        f_stages = (f.dispatch, f.issue, f.complete, f.commit)
        s_stages = (s.dispatch, s.issue, s.complete, s.commit)
        if f_stages == s_stages:
            continue
        cycle = min(
            c
            for fa, sa in zip(f_stages, s_stages)
            if fa != sa
            for c in (fa, sa)
            if c >= 0
        )
        index = fast.timelines.index(f)
        lo, hi = max(0, index - 3), index + 4
        excerpt = (
            f"  first divergent instruction: #{f.seq} {f.text}\n"
            "  event-driven:\n"
            + _indent(PipelineTrace(fast.timelines[lo:hi], fast.result).render())
            + "\n  plain loop:\n"
            + _indent(PipelineTrace(slow.timelines[lo:hi], slow.result).render())
        )
        return cycle, excerpt
    return None, (
        f"  (stage timelines agree over the first {limit} instructions; "
        "the divergence lies beyond the pipeview window)"
    )


def _indent(text: str) -> str:
    return "\n".join("    " + line for line in text.splitlines())


def _check_loops(req: RunRequest, mismatches: list[Mismatch], pipeview_limit: int):
    """Event-driven and plain loops must produce bit-identical stats."""
    fast = simulate(request_with_config(req, event_driven=True))
    slow = simulate(request_with_config(req, event_driven=False))
    a, b = _stats_dict(fast.stats), _stats_dict(slow.stats)
    if a == b:
        return fast
    cycle, excerpt = _first_divergence(req, pipeview_limit)
    mismatches.append(
        Mismatch(
            "loops",
            "event-driven and plain loops diverge: "
            + _diff_stats(a, b, "event-driven", "plain"),
            cycle=cycle,
            excerpt=excerpt,
        )
    )
    return fast


# ---------------------------------------------------------------------------
# Check 2: in-memory build vs. artifact-store round trip.
# ---------------------------------------------------------------------------


def _record_fields(dyn) -> tuple:
    return (dyn.seq, dyn.decoded.index, dyn.pc, dyn.ea, dyn.taken, dyn.next_index)


def _check_artifacts(req: RunRequest, mismatches: list[Mismatch]) -> None:
    """The cached (hydrated-from-disk) path must equal the uncached one."""
    axes = (req.workload, req.int_regs, req.fp_regs, req.scale, req.max_instructions)
    if is_trace_workload(req.workload):
        # Ingested workloads have no WorkloadBuild; their synthesized
        # program lives in the build cache's ingested map.  The codec
        # round trip under test is the same either way.
        program = _CACHE.get_ingested_program(*axes)
    else:
        program = _CACHE.get(req.workload, req.int_regs, req.fp_regs, req.scale).program
    trace = _CACHE.get_trace(*axes)
    config = dataclasses.replace(req.machine_config(), sanity=False)
    fetch_key = fetch_config_key(config)
    plan = build_fetch_plan(trace, config)
    with tempfile.TemporaryDirectory(prefix="repro-check-") as tmp:
        store = ArtifactStore(tmp, fingerprint="check")
        store.save_build(axes, program, trace)
        store.save_plan(axes, fetch_key, plan)
        hydrated = store.load_build(axes)
        if hydrated is None:
            mismatches.append(
                Mismatch("artifacts", "build artifact did not survive the store round trip")
            )
            return
        program2, trace2 = hydrated
        plan2 = store.load_plan(axes, fetch_key, trace2)
    if plan2 is None:
        mismatches.append(
            Mismatch("artifacts", "fetch-plan artifact did not survive the store round trip")
        )
        return
    if len(trace2) != len(trace):
        mismatches.append(
            Mismatch(
                "artifacts",
                f"hydrated trace has {len(trace2)} records; original has {len(trace)}",
            )
        )
        return
    for i, (a, b) in enumerate(zip(trace, trace2)):
        if _record_fields(a) != _record_fields(b):
            mismatches.append(
                Mismatch(
                    "artifacts",
                    f"trace record {i} changed across the round trip: "
                    f"{_record_fields(a)} != {_record_fields(b)}",
                )
            )
            return
    fresh = Machine(
        config, req.make_mech(config.page_shift), trace, fetch_plan=plan
    ).run()
    hydrated_run = Machine(
        config, req.make_mech(config.page_shift), trace2, fetch_plan=plan2
    ).run()
    a, b = _stats_dict(fresh.stats), _stats_dict(hydrated_run.stats)
    if a != b:
        mismatches.append(
            Mismatch(
                "artifacts",
                "timing stats diverge between the uncached build and the "
                "artifact-store hydration: " + _diff_stats(a, b, "uncached", "cached"),
            )
        )


# ---------------------------------------------------------------------------
# Check 3: timing vs. functional architectural state.
# ---------------------------------------------------------------------------


def _check_functional(req: RunRequest, timing, mismatches: list[Mismatch]) -> None:
    """Functional state must survive the program codec; timing counters
    must agree with the functional trace's population."""
    build = _CACHE.get(req.workload, req.int_regs, req.fp_regs, req.scale)
    trace = _CACHE.get_trace(
        req.workload, req.int_regs, req.fp_regs, req.scale, req.max_instructions
    )
    program2 = decode_program(encode_program(build.program))
    original = run_program(
        build.program, build.memory.clone(), max_instructions=req.max_instructions
    )
    replayed = run_program(
        program2, build.memory.clone(), max_instructions=req.max_instructions
    )
    if original.regs != replayed.regs:
        diffs = [
            f"r{i}: {a!r} != {b!r}"
            for i, (a, b) in enumerate(zip(original.regs, replayed.regs))
            if a != b
        ]
        mismatches.append(
            Mismatch(
                "functional",
                "final register images diverge across the program codec: "
                + "; ".join(diffs[:6]),
            )
        )
    if original.memory._words != replayed.memory._words:
        a, b = original.memory._words, replayed.memory._words
        bad = sorted(k for k in set(a) | set(b) if a.get(k, 0) != b.get(k, 0))
        mismatches.append(
            Mismatch(
                "functional",
                f"final memory images diverge across the program codec at "
                f"{len(bad)} word(s), first at {bad[0]:#x}",
            )
        )
    if (original.retired, original.pc_index) != (replayed.retired, replayed.pc_index):
        mismatches.append(
            Mismatch(
                "functional",
                f"functional end state diverges: retired/pc "
                f"{original.retired}/{original.pc_index} != "
                f"{replayed.retired}/{replayed.pc_index}",
            )
        )
    # Timing-vs-functional cross-checks: the timing machine commits the
    # trace exactly once, so its committed/memory/control counters are
    # fully determined by the functional stream.
    stats = timing.stats
    expect = {
        "committed": len(trace),
        "loads": sum(1 for d in trace if d.decoded.is_load),
        "stores": sum(1 for d in trace if d.decoded.is_store),
        "branches": sum(1 for d in trace if d.decoded.is_branch),
        "jumps": sum(1 for d in trace if d.decoded.is_control and not d.decoded.is_branch),
    }
    got = {name: getattr(stats, name) for name in expect}
    if got != expect:
        mismatches.append(
            Mismatch(
                "functional",
                "timing counters disagree with the functional trace: "
                + _diff_stats(got, expect, "timing", "functional"),
            )
        )


# ---------------------------------------------------------------------------
# Check 4: compiled trace kernel vs. interpreted machine.
# ---------------------------------------------------------------------------


def _first_kernel_divergence(
    req: RunRequest, event_driven: bool, limit: int
) -> tuple[int | None, str]:
    """Locate a kernel divergence by lockstep timeline comparison."""
    trace = _CACHE.get_trace(
        req.workload, req.int_regs, req.fp_regs, req.scale, req.max_instructions
    )
    config = dataclasses.replace(
        req.machine_config(), event_driven=event_driven, sanity=False, kernel=False
    )
    interp = PipelineTrace.capture(
        config, req.make_mech(config.page_shift), trace, limit=limit
    )
    kern_tls, kern_result = capture_kernel_timelines(
        config, req.make_mech(config.page_shift), trace, limit=limit
    )
    for i, (k, s) in enumerate(zip(kern_tls, interp.timelines)):
        k_stages = (k.dispatch, k.issue, k.complete, k.commit)
        s_stages = (s.dispatch, s.issue, s.complete, s.commit)
        if k_stages == s_stages:
            continue
        cycle = min(
            c
            for ka, sa in zip(k_stages, s_stages)
            if ka != sa
            for c in (ka, sa)
            if c >= 0
        )
        lo, hi = max(0, i - 3), i + 4
        excerpt = (
            f"  first divergent instruction: #{k.seq} {k.text}\n"
            "  kernel:\n"
            + _indent(PipelineTrace(kern_tls[lo:hi], kern_result).render())
            + "\n  interpreted:\n"
            + _indent(PipelineTrace(interp.timelines[lo:hi], interp.result).render())
        )
        return cycle, excerpt
    return None, (
        f"  (stage timelines agree over the first {limit} instructions; "
        "the divergence lies beyond the pipeview window)"
    )


def _check_kernel(req: RunRequest, mismatches: list[Mismatch], pipeview_limit: int):
    """The compiled kernel must be bit-identical to the interpreted
    machine under both cycle loops.

    ``sanity=False`` is forced on every side: a kernel request carrying
    sanity hooks falls back to the interpreted machine by design, which
    would silently compare the interpreter against itself.
    """
    base = simulate(
        request_with_config(req, kernel=False, sanity=False, event_driven=True)
    )
    a = _stats_dict(base.stats)
    for event_driven in (True, False):
        loop = "event-driven" if event_driven else "plain"
        kern = simulate(
            request_with_config(
                req, kernel=True, sanity=False, event_driven=event_driven
            )
        )
        b = _stats_dict(kern.stats)
        if a == b:
            continue
        cycle, excerpt = _first_kernel_divergence(req, event_driven, pipeview_limit)
        mismatches.append(
            Mismatch(
                "kernel",
                f"compiled kernel ({loop} loop) diverges from the "
                "interpreted machine: " + _diff_stats(b, a, "kernel", "interpreted"),
                cycle=cycle,
                excerpt=excerpt,
            )
        )


# ---------------------------------------------------------------------------
# Check 5: batch-vectorized kernel backend vs. interpreted machine.
# ---------------------------------------------------------------------------


def _first_batch_divergence(
    req: RunRequest, event_driven: bool, limit: int
) -> tuple[int | None, str]:
    """Locate a batch-backend divergence by lockstep timeline comparison."""
    trace = _CACHE.get_trace(
        req.workload, req.int_regs, req.fp_regs, req.scale, req.max_instructions
    )
    config = dataclasses.replace(
        req.machine_config(),
        event_driven=event_driven,
        sanity=False,
        kernel=False,
        kernel_batch=False,
    )
    interp = PipelineTrace.capture(
        config, req.make_mech(config.page_shift), trace, limit=limit
    )
    batch_tls, batch_result = capture_batch_timelines(
        config, req.make_mech(config.page_shift), trace, limit=limit
    )
    for i, (k, s) in enumerate(zip(batch_tls, interp.timelines)):
        k_stages = (k.dispatch, k.issue, k.complete, k.commit)
        s_stages = (s.dispatch, s.issue, s.complete, s.commit)
        if k_stages == s_stages:
            continue
        cycle = min(
            c
            for ka, sa in zip(k_stages, s_stages)
            if ka != sa
            for c in (ka, sa)
            if c >= 0
        )
        lo, hi = max(0, i - 3), i + 4
        excerpt = (
            f"  first divergent instruction: #{k.seq} {k.text}\n"
            "  batch kernel:\n"
            + _indent(PipelineTrace(batch_tls[lo:hi], batch_result).render())
            + "\n  interpreted:\n"
            + _indent(PipelineTrace(interp.timelines[lo:hi], interp.result).render())
        )
        return cycle, excerpt
    return None, (
        f"  (stage timelines agree over the first {limit} instructions; "
        "the divergence lies beyond the pipeview window)"
    )


def _check_kernel_batch(
    req: RunRequest, mismatches: list[Mismatch], pipeview_limit: int
):
    """The batch backend must be bit-identical to the interpreted
    machine under both cycle loops.

    ``sanity=False`` is forced for the same reason as the kernel check;
    an in-order request exercises the runner's documented fallback to
    the base kernel, so the check stays meaningful on both issue
    models.
    """
    base = simulate(
        request_with_config(
            req, kernel=False, kernel_batch=False, sanity=False, event_driven=True
        )
    )
    a = _stats_dict(base.stats)
    for event_driven in (True, False):
        loop = "event-driven" if event_driven else "plain"
        batch = simulate(
            request_with_config(
                req,
                kernel=False,
                kernel_batch=True,
                sanity=False,
                event_driven=event_driven,
            )
        )
        b = _stats_dict(batch.stats)
        if a == b:
            continue
        cycle, excerpt = _first_batch_divergence(req, event_driven, pipeview_limit)
        mismatches.append(
            Mismatch(
                "kernel-batch",
                f"batch kernel ({loop} loop) diverges from the "
                "interpreted machine: " + _diff_stats(b, a, "batch", "interpreted"),
                cycle=cycle,
                excerpt=excerpt,
            )
        )


def run_differential(
    req: RunRequest,
    pipeview_limit: int = PIPEVIEW_LIMIT,
    checks: "tuple[str, ...]" = CHECKS,
) -> DiffReport:
    """Run the selected redundant-path checks for one request."""
    unknown = set(checks) - set(CHECKS)
    if unknown:
        raise ValueError(f"unknown check(s): {sorted(unknown)}")
    if is_trace_workload(req.workload):
        # An ingested trace has no functional executor to cross-check
        # against; every other redundant path applies unchanged.
        checks = tuple(c for c in checks if c != "functional")
    report = DiffReport(request=req, checks=tuple(checks))
    timing = None
    if "loops" in checks or "functional" in checks:
        timing = _check_loops(req, report.mismatches, pipeview_limit)
        if "loops" not in checks:
            # Only ran to obtain the timing result; drop loop findings.
            report.mismatches = [m for m in report.mismatches if m.check != "loops"]
    if "artifacts" in checks:
        _check_artifacts(req, report.mismatches)
    if "functional" in checks:
        _check_functional(req, timing, report.mismatches)
    if "kernel" in checks:
        _check_kernel(req, report.mismatches, pipeview_limit)
    if "kernel-batch" in checks:
        _check_kernel_batch(req, report.mismatches, pipeview_limit)
    return report


# ---------------------------------------------------------------------------
# CLI: differential sweep over a workload × design grid.
# ---------------------------------------------------------------------------


def main(argv=None) -> int:
    """``python -m repro.check.diff`` — grid differential sweep.

    Runs the selected checks for every workload × design × issue-model
    combination and exits non-zero on the first batch containing a
    mismatch.  CI's kernel-smoke job and the Figure 5 acceptance sweep
    both drive this entry point.
    """
    import argparse

    from repro.tlb.factory import DESIGN_MNEMONICS
    from repro.workloads import iter_workload_names

    parser = argparse.ArgumentParser(
        prog="python -m repro.check.diff", description=main.__doc__
    )
    parser.add_argument(
        "--checks",
        default=",".join(CHECKS),
        help=f"comma-separated subset of {','.join(CHECKS)} (default: all)",
    )
    parser.add_argument(
        "--workloads",
        default="compress,xlisp",
        help="comma-separated workload names, or 'all' (default: compress,xlisp)",
    )
    parser.add_argument(
        "--designs",
        default="T4,T1,I4,PB1",
        help="comma-separated TLB design mnemonics, or 'all' "
        "(default: T4,T1,I4,PB1)",
    )
    parser.add_argument(
        "--issue-models",
        default="ooo,inorder",
        help="comma-separated from ooo,inorder (default: both)",
    )
    parser.add_argument(
        "--insts",
        type=int,
        default=5000,
        metavar="N",
        help="instructions simulated per run (default: 5000)",
    )
    from repro.ingest.build import add_trace_args, trace_workload_from_args

    add_trace_args(parser)
    args = parser.parse_args(argv)

    checks = tuple(c for c in args.checks.split(",") if c)
    if args.trace is not None:
        # The ingested-workload leg: run the same redundant-path checks
        # over an external trace (functional is skipped automatically —
        # there is no functional executor behind an ingested stream).
        workloads = [trace_workload_from_args(args)]
    else:
        workloads = (
            sorted(iter_workload_names())
            if args.workloads == "all"
            else args.workloads.split(",")
        )
    designs = (
        list(DESIGN_MNEMONICS) if args.designs == "all" else args.designs.split(",")
    )
    issue_models = args.issue_models.split(",")
    for model in issue_models:
        if model not in ("ooo", "inorder"):
            parser.error(f"unknown issue model: {model}")

    failures = 0
    total = 0
    for workload in workloads:
        for design in designs:
            for model in issue_models:
                req = RunRequest(
                    workload=workload,
                    design=design,
                    issue_model=model,
                    max_instructions=args.insts,
                )
                report = run_differential(req, checks=checks)
                total += 1
                print(f"[{model}] {report.render()}")
                if not report.ok:
                    failures += 1
    verdict = "OK" if not failures else "FAIL"
    print(f"{verdict}: {total - failures}/{total} grid points clean "
          f"({','.join(checks)})")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
