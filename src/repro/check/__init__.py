"""Simulation sanitizer: invariant checking, differential testing, fuzzing.

The simulator core trades transparency for speed — event-driven cycle
skipping, precomputed fetch plans, on-disk artifact hydration — and each
of those optimizations can silently corrupt Table 2/Figure 5 numbers if
its enabling assumption is wrong.  This package actively *hunts* such
bugs, in the spirit of sim-outorder's ``sim-safe`` cross-checks and
DiffTest-style co-simulation:

* :mod:`repro.check.invariants` — a :class:`SanityChecker` hooked into
  the cycle loop behind ``MachineConfig.sanity`` that validates
  per-cycle microarchitectural invariants and re-validates every
  event-driven skip against the mechanism's ``quiescent_until``
  contract (by replaying the skipped span on a clone);
* :mod:`repro.check.diff` — a differential harness running the same
  :class:`~repro.eval.runner.RunRequest` through event-driven vs. plain
  loops, cached vs. uncached artifact paths, and timing vs. functional
  architectural state;
* :mod:`repro.check.fuzz` — a seeded config fuzzer driving both across
  random valid machine/mechanism combinations, exposed as
  ``python -m repro.check``.
"""

from repro.check.diff import DiffReport, Mismatch, request_with_config, run_differential
from repro.check.fuzz import FuzzRecord, FuzzReport, random_request, run_fuzz
from repro.check.invariants import SanityChecker, SanityError

__all__ = [
    "DiffReport",
    "FuzzRecord",
    "FuzzReport",
    "Mismatch",
    "SanityChecker",
    "SanityError",
    "random_request",
    "request_with_config",
    "run_differential",
    "run_fuzz",
]
