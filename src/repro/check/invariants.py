"""Cycle-level invariant checker for the timing engine.

:class:`SanityChecker` attaches to a :class:`~repro.engine.machine.Machine`
when ``MachineConfig.sanity`` is set and validates, every simulated
cycle, the structural invariants the engine's fast paths rely on:

* window occupancy within ``rob_entries`` and strictly increasing
  sequence order; no squashed (dead) entry left in the window;
* no instruction carries a completion without having issued, and never
  one at or before its issue cycle (commit happens only at/after
  ``complete``, so this is the "no commit before issue" guard);
* LSQ occupancy within ``lsq_entries`` and consistent with the window's
  memory-instruction population;
* MSHR leases within ``dcache_mshrs`` and the expire gate
  (``_mshr_next``) never beyond the earliest in-flight fill;
* functional-unit lease conservation: each class holds exactly
  ``units`` lease slots at all times;
* per-tick mechanism discipline: port-granted results per cycle never
  exceed the mechanism's total :class:`~repro.tlb.base.PortArbiter`
  ports, piggybacked riders never exceed the rider capacity, and no
  result is ready in the past;
* ``pending()`` consistent with the arbiters' queued population;
* monotonically non-decreasing stats counters, with
  ``committed <= issued``.

Critically, the checker also re-validates the *event-driven* contract:
whenever the engine skips ``mech.tick`` (the ``_mech_quiet`` gate) or
jumps over a quiescent span, the skipped cycles are replayed on a
``copy.deepcopy`` clone of the mechanism and must produce no results
and no state change — exactly the ``quiescent_until`` contract of
:meth:`repro.tlb.base.TranslationMechanism.quiescent_until`.  A
mechanism whose bound is even one cycle too optimistic is caught here
with the offending cycle, rather than silently shifting grant timing
(which would corrupt results identically in both loop modes, making it
invisible to event-driven vs. plain differential testing).

Violations raise :class:`SanityError` immediately, carrying the cycle.
"""

from __future__ import annotations

import copy
import dataclasses
import types

from repro.tlb.base import PortArbiter

#: Deepcopy replay is charged per *skipped* cycle with pending work;
#: spans longer than this are validated on a prefix (they are produced
#: by NEVER-quiescent mechanisms whose queues are empty anyway).
DEFAULT_REPLAY_LIMIT = 64

_ATOMIC = (int, float, complex, str, bytes, bool, type(None))
_CALLABLE = (
    types.FunctionType,
    types.BuiltinFunctionType,
    types.MethodType,
    types.LambdaType,
)


class SanityError(RuntimeError):
    """An engine invariant or mechanism contract was violated.

    ``cycle`` identifies the offending simulated cycle.
    """

    def __init__(self, cycle: int, message: str):
        self.cycle = cycle
        self.message = message
        super().__init__(f"cycle {cycle}: {message}")


def freeze_state(obj, _depth: int = 0):
    """Order-insensitive structural snapshot of an object graph.

    Used to compare a mechanism clone before/after replayed ticks:
    dicts and sets compare by sorted content, objects by class name and
    attribute values (``__dict__`` plus ``__slots__``), callables are
    opaque (tick wrappers and bank-select closures are not state).
    """
    if isinstance(obj, _ATOMIC):
        return obj
    if _depth > 16:
        return "<max-depth>"
    if isinstance(obj, (list, tuple)):
        return tuple(freeze_state(item, _depth + 1) for item in obj)
    if isinstance(obj, dict):
        return (
            "dict",
            tuple(
                sorted(
                    (repr(key), freeze_state(value, _depth + 1))
                    for key, value in obj.items()
                )
            ),
        )
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted(repr(item) for item in obj)))
    if isinstance(obj, _CALLABLE):
        return "<callable>"
    attrs: dict[str, object] = {}
    for klass in type(obj).__mro__:
        for slot in getattr(klass, "__slots__", ()):
            if hasattr(obj, slot):
                attrs[slot] = getattr(obj, slot)
    attrs.update(getattr(obj, "__dict__", {}))
    return (
        type(obj).__name__,
        tuple(
            sorted(
                (name, freeze_state(value, _depth + 1))
                for name, value in attrs.items()
                if not isinstance(value, _CALLABLE)
            )
        ),
    )


def _discover_arbiters(mech) -> tuple[PortArbiter, ...]:
    """Every PortArbiter a mechanism arbitrates through (duck-typed)."""
    found = []
    arbiter = getattr(mech, "arbiter", None)
    if isinstance(arbiter, PortArbiter):
        found.append(arbiter)
    for arbiter in getattr(mech, "_arbiters", ()):
        if isinstance(arbiter, PortArbiter):
            found.append(arbiter)
    return tuple(found)


def _rider_capacity(mech, arbiter_count: int) -> int | None:
    """Max piggybacked riders per cycle, or None when unknowable."""
    ports = getattr(mech, "piggyback_ports", None)
    if ports is not None:
        return ports
    per_bank = getattr(mech, "piggyback_per_bank", None)
    if per_bank is not None:
        return per_bank * arbiter_count
    return None


class SanityChecker:
    """Per-cycle invariant checks plus quiescent-contract replay.

    Constructed by :class:`~repro.engine.machine.Machine` when
    ``config.sanity`` is set — *before* ``run()`` caches bound methods,
    because the checker interposes on ``mech.tick`` (as an instance
    attribute; mechanism classes have no ``__slots__``) to audit each
    tick's grant/rider/ready discipline.
    """

    def __init__(self, machine, replay_limit: int = DEFAULT_REPLAY_LIMIT):
        self.machine = machine
        self.replay_limit = replay_limit
        self.cycles_checked = 0
        self.ticks_replayed = 0
        mech = machine.mech
        self._arbiters = _discover_arbiters(mech)
        self._total_ports = sum(arbiter.ports for arbiter in self._arbiters)
        self._rider_cap = _rider_capacity(mech, len(self._arbiters))
        self._counters = self._counter_values()
        self._wrap_tick(mech)

    # -- tick interposition -------------------------------------------------

    def _wrap_tick(self, mech) -> None:
        orig_tick = mech.tick  # bound method resolved on the class
        stats = mech.stats
        checker = self

        def checked_tick(now: int):
            riders_before = stats.piggybacked
            results = orig_tick(now)
            riders = stats.piggybacked - riders_before
            if checker._arbiters:
                granted = len(results) - riders
                if granted > checker._total_ports:
                    raise SanityError(
                        now,
                        f"tick returned {granted} port-granted results "
                        f"but the mechanism has {checker._total_ports} "
                        "arbiter port(s)",
                    )
            cap = checker._rider_cap
            if cap is not None and riders > cap:
                raise SanityError(
                    now,
                    f"tick piggybacked {riders} riders; capacity is {cap}",
                )
            for result in results:
                if result.ready < now:
                    raise SanityError(
                        now,
                        f"tick produced a result ready in the past "
                        f"(ready={result.ready} for #{result.req.seq})",
                    )
                if result.req.cycle > now:
                    raise SanityError(
                        now,
                        f"tick resolved #{result.req.seq} before its "
                        f"submission cycle {result.req.cycle}",
                    )
            return results

        mech.tick = checked_tick

    # -- per-cycle invariants -----------------------------------------------

    def on_cycle(self, now: int) -> None:
        """Validate engine-side invariants at the end of cycle ``now``."""
        self.cycles_checked += 1
        machine = self.machine
        window = machine._window
        if len(window) > machine._rob_entries:
            raise SanityError(
                now,
                f"window holds {len(window)} entries; "
                f"rob_entries is {machine._rob_entries}",
            )
        mem_count = 0
        prev_seq = -1
        for infl in window:
            if infl.seq <= prev_seq:
                raise SanityError(
                    now,
                    f"window sequence order violated (#{infl.seq} "
                    f"after #{prev_seq})",
                )
            prev_seq = infl.seq
            if infl.dead:
                raise SanityError(now, f"squashed #{infl.seq} still in window")
            if infl.is_mem:
                mem_count += 1
            complete = infl.complete
            if complete is not None:
                if not infl.issued:
                    raise SanityError(
                        now,
                        f"#{infl.seq} holds completion cycle {complete} "
                        "without having issued (would commit before issue)",
                    )
                if complete <= infl.issue_cycle:
                    raise SanityError(
                        now,
                        f"#{infl.seq} completes at {complete}, not after "
                        f"its issue cycle {infl.issue_cycle}",
                    )
        if mem_count != machine._lsq_count:
            raise SanityError(
                now,
                f"LSQ count {machine._lsq_count} != {mem_count} memory "
                "instructions in the window",
            )
        if machine._lsq_count > machine._lsq_entries:
            raise SanityError(
                now,
                f"LSQ holds {machine._lsq_count} entries; "
                f"lsq_entries is {machine._lsq_entries}",
            )
        mshr = machine.mshr
        outstanding = mshr.outstanding()
        if outstanding > mshr.max_outstanding:
            raise SanityError(
                now,
                f"{outstanding} MSHR leases outstanding; file holds "
                f"{mshr.max_outstanding}",
            )
        if mshr._pending:
            earliest = min(mshr._pending.values())
            if machine._mshr_next > earliest:
                raise SanityError(
                    now,
                    f"MSHR expire gate at {machine._mshr_next} is beyond "
                    f"the earliest in-flight fill at {earliest}",
                )
        for name, free_at in machine.fupool._free_at.items():
            spec = machine.config.fu_specs[name]
            if len(free_at) != spec.units:
                raise SanityError(
                    now,
                    f"functional-unit class {name!r} holds "
                    f"{len(free_at)} lease slots; spec says {spec.units}",
                )
        mech = machine.mech
        pending = mech.pending()
        if pending < 0:
            raise SanityError(now, f"mechanism pending() is negative: {pending}")
        if self._arbiters:
            queued = sum(len(arbiter) for arbiter in self._arbiters)
            if pending != queued:
                raise SanityError(
                    now,
                    f"mechanism pending()={pending} but its arbiters "
                    f"hold {queued} queued request(s)",
                )
        self._check_monotonic(now)

    def _counter_values(self) -> dict[str, int]:
        machine = self.machine
        values: dict[str, int] = {}
        for label, stats in (
            ("machine", machine.stats),
            ("translation", machine.mech.stats),
            ("dcache", machine.dcache.stats),
        ):
            for f in dataclasses.fields(stats):
                value = getattr(stats, f.name)
                if type(value) is int:
                    values[f"{label}.{f.name}"] = value
        return values

    def _check_monotonic(self, now: int) -> None:
        current = self._counter_values()
        for name, value in current.items():
            if value < self._counters.get(name, 0):
                raise SanityError(
                    now,
                    f"stats counter {name} went backwards "
                    f"({self._counters[name]} -> {value})",
                )
        self._counters = current
        machine = self.machine
        if machine.stats.committed > machine.stats.issued:
            raise SanityError(
                now,
                f"committed {machine.stats.committed} exceeds issued "
                f"{machine.stats.issued}",
            )

    # -- quiescent-contract replay ------------------------------------------

    def on_tick_skipped(self, now: int) -> None:
        """The engine's ``_mech_quiet`` gate suppressed ``tick(now)``."""
        if self.machine.mech.pending() == 0:
            return
        self._replay_quiescent(now, now + 1)

    def on_skip(self, prev: int, target: int) -> None:
        """The event-driven loop is about to jump from ``prev+1`` to ``target``.

        Validates that no window completion, context-switch flush, or
        (with unissued work) MSHR fill / functional-unit release falls
        inside the skipped span, and replays the mechanism's skipped
        ticks against the ``quiescent_until`` contract.
        """
        machine = self.machine
        for infl in machine._window:
            complete = infl.complete
            if complete is not None and prev < complete < target:
                raise SanityError(
                    complete,
                    f"event-driven jump to {target} skips the completion "
                    f"of #{infl.seq} at {complete}",
                )
        next_flush = machine._next_flush
        if next_flush and prev < next_flush < target:
            raise SanityError(
                next_flush,
                f"event-driven jump to {target} skips the context-switch "
                f"flush at {next_flush}",
            )
        if machine._unissued or machine._wake:
            fill = machine.mshr.next_completion(prev)
            if fill < target:
                raise SanityError(
                    fill,
                    f"event-driven jump to {target} skips an MSHR fill at "
                    f"{fill} with unissued work",
                )
            release = machine.fupool.next_busy_release(prev)
            if release < target:
                raise SanityError(
                    release,
                    f"event-driven jump to {target} skips a functional-"
                    f"unit release at {release} with unissued work",
                )
        mech = machine.mech
        quiet = mech.quiescent_until(prev)
        if quiet < target:
            raise SanityError(
                quiet,
                f"event-driven jump to {target} overshoots the "
                f"mechanism's quiescent bound {quiet}",
            )
        if mech.pending():
            self._replay_quiescent(prev + 1, target)

    def _replay_quiescent(self, start: int, stop: int) -> None:
        """Assert ``tick(c)`` is a no-op for every ``c`` in [start, stop).

        Runs the skipped ticks on a deepcopy clone via the *class*
        ``tick`` (bypassing the audit wrapper, whose closure holds the
        original mechanism) and requires no results and no state change.
        """
        mech = self.machine.mech
        reference = freeze_state(mech)
        clone = copy.deepcopy(mech)
        class_tick = type(mech).tick
        for cycle in range(start, min(stop, start + self.replay_limit)):
            self.ticks_replayed += 1
            results = class_tick(clone, cycle)
            if results:
                raise SanityError(
                    cycle,
                    f"quiescent_until contract violated: tick({cycle}) "
                    f"inside a skipped span returned {len(results)} "
                    f"result(s) (first: #{results[0].req.seq})",
                )
            if freeze_state(clone) != reference:
                raise SanityError(
                    cycle,
                    f"quiescent_until contract violated: tick({cycle}) "
                    "inside a skipped span mutated mechanism state",
                )
