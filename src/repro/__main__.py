"""Top-level command line interface.

Usage::

    python -m repro list
    python -m repro run xlisp M8 [--insts N] [--inorder] [--pages 8192]
                                 [--regs 8] [--itlb] [--artifacts [DIR]]
    python -m repro profile tfft [--insts N]
    python -m repro misscurve compress [--insts N]
    python -m repro demand espresso T4 [--insts N]
    python -m repro disasm perl [--max-lines N]
    python -m repro verify tfft [--regs 8]

(The experiment drivers live under ``python -m repro.eval``.)
"""

from __future__ import annotations

import argparse

from repro.analysis.demand import demand_profile
from repro.analysis.reusedist import StackDistanceAnalyzer
from repro.analysis.spatial import profile_workload
from repro.env import env_bool
from repro.eval.options import add_eval_args
from repro.eval.runner import RunRequest, run_one
from repro.ingest.build import add_trace_args, trace_workload_from_args
from repro.func.executor import Executor
from repro.tlb.factory import DESIGN_MNEMONICS, EXTENSION_MNEMONICS
from repro.workloads import iter_workload_names, make_workload


def _cmd_list(args) -> int:
    print("workloads:")
    for name in iter_workload_names():
        wl = make_workload(name)
        print(f"  {name:12s} [{wl.regime:7s}] {wl.description}")
    print("\ndesigns (Table 2):")
    print("  " + " ".join(DESIGN_MNEMONICS))
    print("extension designs:")
    print("  " + " ".join(EXTENSION_MNEMONICS))
    return 0


def _cmd_run(args) -> int:
    if args.artifacts is not None:
        # Attach the on-disk artifact cache: a repeated run of the same
        # workload hydrates its program/trace/fetch plan instead of
        # regenerating and re-executing them.
        from repro.eval.artifacts import ArtifactStore
        from repro.eval.runner import configure_artifacts

        configure_artifacts(ArtifactStore(args.artifacts or None))
    workload = trace_workload_from_args(args)
    if workload is None:
        if args.workload is None:
            raise SystemExit("error: a workload name (or --trace FILE) is required")
        workload = args.workload
    elif args.workload is not None:
        raise SystemExit("error: give a workload name or --trace, not both")
    req = RunRequest.create(
        workload,
        args.design,
        issue_model="inorder" if args.inorder else "ooo",
        page_size=args.pages,
        int_regs=args.regs,
        fp_regs=args.regs,
        max_instructions=args.insts,
        **({"model_itlb": True} if args.itlb else {}),
        # Flag > environment (via env_bool, so REPRO_KERNEL=0 disables).
        **({"kernel": True} if args.kernel or env_bool("REPRO_KERNEL") else {}),
        **(
            {"kernel_batch": True}
            if args.kernel_batch or env_bool("REPRO_KERNEL_BATCH")
            else {}
        ),
    )
    profiler = None
    if args.profile:
        from repro.perf import SimProfiler

        profiler = SimProfiler()
    result = run_one(req, profiler=profiler)
    s = result.stats
    t = s.translation
    if args.workload is None:
        from repro.ingest.build import parse_workload

        label = parse_workload(workload).display
    else:
        label = args.workload
    print(f"{label} / {args.design}:")
    print(f"  cycles              {s.cycles}")
    print(f"  committed           {s.committed}  (IPC {s.commit_ipc:.3f})")
    print(f"  issued              {s.issued}  (IPC {s.issue_ipc:.3f}, incl. wrong path)")
    print(f"  loads/stores        {s.loads}/{s.stores}  ({s.mem_refs_per_cycle:.2f} refs/cycle)")
    print(f"  branch prediction   {100 * s.branch_prediction_rate:.1f}%")
    print(f"  f_shielded          {t.shielded_fraction:.3f}")
    print(f"  piggybacked         {t.piggybacked}")
    print(f"  port stall cycles   {t.port_stall_cycles} (mean {t.mean_port_stall:.3f}/req)")
    print(f"  base TLB miss rate  {100 * t.base_miss_rate:.2f}%  ({s.tlb_miss_services} walks)")
    print(f"  forwarded loads     {s.forwarded_loads}")
    print(f"  dcache miss rate    {100 * s.dcache.miss_rate:.2f}%")
    if args.itlb:
        print(f"  itlb misses         {s.itlb_misses}")
    if profiler is not None:
        print()
        print(profiler.render())
    return 0


def _cmd_profile(args) -> int:
    profile = profile_workload(args.workload, max_instructions=args.insts)
    print(f"spatial profile — {profile.workload}")
    print(f"  references               {profile.references}")
    print(f"  distinct pages           {profile.distinct_pages}")
    print(f"  same-page adjacency      {profile.same_page_adjacent:.3f}")
    print(f"  same-page 4-groups       {profile.same_page_group4:.3f}")
    print(f"  base-reg page reuse      {profile.base_register_page_reuse:.3f}")
    print(f"  pages by region          {profile.pages_by_region}")
    return 0


def _cmd_misscurve(args) -> int:
    build = make_workload(args.workload).build()
    analyzer = StackDistanceAnalyzer()
    executor = Executor(build.program, build.memory)
    for dyn in executor.run(max_instructions=args.insts):
        if dyn.ea is not None:
            analyzer.touch(dyn.ea >> 12)
    print(f"exact LRU miss curve — {args.workload} "
          f"({analyzer.references} refs, {analyzer.distinct_pages()} pages)")
    for size in (2, 4, 8, 16, 32, 64, 128, 256):
        rate = analyzer.miss_rate(size)
        bar = "#" * round(50 * rate)
        print(f"  {size:4d} entries: {100 * rate:6.2f}%  {bar}")
    return 0


def _cmd_demand(args) -> int:
    result = run_one(
        RunRequest(
            workload=args.workload, design=args.design, max_instructions=args.insts
        )
    )
    print(demand_profile(result).render())
    return 0


def _cmd_verify(args) -> int:
    from repro.isa.verify import verify_program

    build = make_workload(args.workload).build(int_regs=args.regs, fp_regs=args.regs)
    findings = verify_program(build.program)
    if not findings:
        print(f"{args.workload}: clean ({len(build.program)} instructions)")
        return 0
    for finding in findings:
        print(finding)
    errors = sum(1 for f in findings if f.severity == "error")
    return 1 if errors else 0


def _cmd_disasm(args) -> int:
    build = make_workload(args.workload).build()
    listing = build.program.listing().splitlines()
    for line in listing[: args.max_lines]:
        print(line)
    if len(listing) > args.max_lines:
        print(f"... ({len(listing) - args.max_lines} more lines)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and designs")

    p_run = sub.add_parser("run", help="one timing run")
    p_run.add_argument(
        "workload", nargs="?", default=None,
        help="registered workload name (omit when replaying --trace)",
    )
    p_run.add_argument("design")
    p_run.add_argument("--insts", type=int, default=40_000)
    p_run.add_argument("--inorder", action="store_true")
    p_run.add_argument("--pages", type=int, default=4096)
    p_run.add_argument("--regs", type=int, default=32)
    p_run.add_argument(
        "--itlb", action="store_true", help="model the instruction-side micro-TLB"
    )
    p_run.add_argument(
        "--profile",
        action="store_true",
        help="print a host-side per-phase wall-time profile of the run",
    )
    # Single runs take only the artifact knob of the shared engine
    # flags (no grid: nothing to shard or memoize).
    add_eval_args(p_run, jobs=False, cache=False, artifacts=True)
    add_trace_args(p_run)

    p_prof = sub.add_parser("profile", help="spatial locality profile")
    p_prof.add_argument("workload")
    p_prof.add_argument("--insts", type=int, default=60_000)

    p_miss = sub.add_parser("misscurve", help="exact LRU miss curve")
    p_miss.add_argument("workload")
    p_miss.add_argument("--insts", type=int, default=60_000)

    p_dem = sub.add_parser("demand", help="translation demand histogram")
    p_dem.add_argument("workload")
    p_dem.add_argument("design")
    p_dem.add_argument("--insts", type=int, default=30_000)

    p_dis = sub.add_parser("disasm", help="disassemble a workload")
    p_dis.add_argument("workload")
    p_dis.add_argument("--max-lines", type=int, default=80)

    p_ver = sub.add_parser("verify", help="lint a workload's program")
    p_ver.add_argument("workload")
    p_ver.add_argument("--regs", type=int, default=32)

    args = parser.parse_args(argv)
    handler = {
        "list": _cmd_list,
        "run": _cmd_run,
        "profile": _cmd_profile,
        "misscurve": _cmd_misscurve,
        "demand": _cmd_demand,
        "disasm": _cmd_disasm,
        "verify": _cmd_verify,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
