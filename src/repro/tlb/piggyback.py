"""Piggyback ports (paper §3.4) — designs PB2 and PB1.

Requests that fail to win a translation port compare their virtual page
address, in parallel with the TLB access, against the requests that did;
on a match the blocked request consumes the in-progress translation
instead of waiting for a port of its own.  The hardware cost is one
comparator and a gate on the hit signal per piggyback port, so riders add
no latency.

If the host translation *misses*, the rider shares the single page walk:
its result carries ``depends_on = host.seq`` and the engine completes it
together with the host.
"""

from __future__ import annotations

from repro.tlb.base import PortArbiter, TranslationMechanism
from repro.tlb.request import TranslationRequest, TranslationResult
from repro.tlb.storage import FullyAssocTLB


class PiggybackTLB(TranslationMechanism):
    """A multi-ported TLB augmented with piggyback ports.

    Parameters
    ----------
    ports:
        Real translation ports (PB2 has 2, PB1 has 1).
    piggyback_ports:
        Riders serviceable per cycle (PB2 has 2, PB1 has 3 — enough for
        the baseline's four simultaneous requests in both cases).
    """

    def __init__(
        self,
        ports: int,
        piggyback_ports: int,
        entries: int = 128,
        replacement: str = "random",
        page_shift: int = 12,
        seed: int = 0xBEEF_CAFE,
    ):
        super().__init__(page_shift)
        if piggyback_ports < 0:
            raise ValueError(f"piggyback_ports must be >= 0: {piggyback_ports}")
        self.tlb = FullyAssocTLB(entries, replacement=replacement, seed=seed)
        self.arbiter = PortArbiter(ports)
        self.ports = ports
        self.piggyback_ports = piggyback_ports

    def request(self, req: TranslationRequest) -> TranslationResult | None:
        self.stats.requests += 1
        self.arbiter.submit(req.cycle, req.seq, req)
        return None

    def tick(self, now: int) -> list[TranslationResult]:
        granted = self.arbiter.grant(now)
        results: list[TranslationResult] = []
        host_outcome: dict[int, tuple[int, bool]] = {}
        for req in granted:
            stall = now - req.cycle
            if stall > 0:
                self.stats.port_stall_cycles += stall
                self.stats.port_stalled_requests += 1
            self.stats.base_probes += 1
            hit = self.tlb.probe(req.vpn)
            if not hit:
                self.stats.base_misses += 1
                self.tlb.insert(req.vpn)
            results.append(TranslationResult(req, ready=now, tlb_miss=not hit))
            # First host per vpn wins; later same-vpn grants are equivalent.
            host_outcome.setdefault(req.vpn, (req.seq, not hit))
        if host_outcome and self.piggyback_ports:
            riders = 0
            for req in self.arbiter.peek_waiting(now):
                if riders >= self.piggyback_ports:
                    break
                outcome = host_outcome.get(req.vpn)
                if outcome is None:
                    continue
                host_seq, host_missed = outcome
                self.arbiter.remove(req)
                riders += 1
                self.stats.piggybacked += 1
                stall = now - req.cycle
                if stall > 0:
                    self.stats.port_stall_cycles += stall
                    self.stats.port_stalled_requests += 1
                results.append(
                    TranslationResult(
                        req,
                        ready=now,
                        tlb_miss=host_missed,
                        depends_on=host_seq if host_missed else None,
                    )
                )
        return results

    def pending(self) -> int:
        return len(self.arbiter)

    def quiescent_until(self, now: int) -> int:
        return self.arbiter.quiescent_until(now)

    def flush(self) -> None:
        self.tlb.flush()
