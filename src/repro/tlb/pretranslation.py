"""Pretranslation (paper §3.5) — design P8.

A translation is *attached to a register value* at the first load/store
that dereferences it, and reused on later dereferences as long as the
access stays on the same virtual page.  Pointer arithmetic propagates
the attachment to the result register, so optimized code that copies and
strides pointers keeps its translations alive.

Implementation (paper §4.1):

* attachments live in a small *pretranslation cache* (8 entries, LRU,
  4-ported) tagged by ``base register id (5 bits) ++ upper 4 bits of a
  load's displacement`` (zero for stores and other instructions) — the
  offset bits let one pointer hold attachments for several nearby pages;
* the cache is probed in the decode stage in parallel with register-file
  read; the virtual-page comparison happens at address generation, so a
  pretranslation *miss* is detected the cycle after address generation
  and pays at least one extra cycle to reach the single-ported base TLB;
* page status changes write through to the base TLB (port traffic);
* coherence: the cache is flushed whenever a base-TLB entry is replaced.

The ``needs_register_events`` flag makes the engine deliver in-order
register-write events (decode order) for attachment propagation.
"""

from __future__ import annotations

from repro.tlb.base import PageStatusTable, PortArbiter, TranslationMechanism, _StatusWrite
from repro.tlb.request import TranslationRequest, TranslationResult
from repro.tlb.storage import FullyAssocTLB

#: Pretranslation tags take the upper bits of a 16-bit displacement;
#: the field width is the mechanism's ``offset_tag_bits`` (paper: 4).
OFFSET_TAG_SHIFT = 12


class PretranslationCache:
    """The small LRU cache of (register, offset-bits) -> vpn attachments."""

    def __init__(self, entries: int = 8):
        if entries <= 0:
            raise ValueError(f"entries must be positive: {entries}")
        self.entries = entries
        # Insertion-ordered dict is the LRU chain (MRU last).
        self._cache: dict[tuple[int, int], int] = {}
        # reg -> set of tags, so propagation is O(attachments of src).
        self._by_reg: dict[int, set[tuple[int, int]]] = {}

    def __len__(self) -> int:
        return len(self._cache)

    def lookup(self, tag: tuple[int, int]) -> int | None:
        """Return the attached vpn for ``tag`` and touch LRU, else None."""
        vpn = self._cache.get(tag)
        if vpn is not None:
            del self._cache[tag]
            self._cache[tag] = vpn
        return vpn

    def insert(self, tag: tuple[int, int], vpn: int) -> None:
        """Attach (or refresh) ``tag -> vpn``, evicting LRU on overflow."""
        if tag in self._cache:
            del self._cache[tag]
        elif len(self._cache) >= self.entries:
            victim = next(iter(self._cache))
            del self._cache[victim]
            self._unindex(victim)
        self._cache[tag] = vpn
        self._by_reg.setdefault(tag[0], set()).add(tag)

    def tags_of(self, reg: int) -> tuple[tuple[int, int], ...]:
        """All live tags whose register field is ``reg``."""
        tags = self._by_reg.get(reg)
        if not tags:
            return ()
        return tuple(tags)

    def get(self, tag: tuple[int, int]) -> int | None:
        """Peek without LRU update."""
        return self._cache.get(tag)

    def flush(self) -> int:
        """Drop all attachments; returns how many were dropped."""
        count = len(self._cache)
        self._cache.clear()
        self._by_reg.clear()
        return count

    def _unindex(self, tag: tuple[int, int]) -> None:
        tags = self._by_reg.get(tag[0])
        if tags is not None:
            tags.discard(tag)
            if not tags:
                del self._by_reg[tag[0]]


class PretranslationMechanism(TranslationMechanism):
    """P8: an 8-entry pretranslation cache over a single-ported base TLB."""

    needs_register_events = True

    def __init__(
        self,
        cache_entries: int = 8,
        base_entries: int = 128,
        base_ports: int = 1,
        offset_tag_bits: int = 4,
        page_shift: int = 12,
        seed: int = 0xBEEF_CAFE,
    ):
        super().__init__(page_shift)
        if not 0 <= offset_tag_bits <= 8:
            raise ValueError(f"offset_tag_bits out of range: {offset_tag_bits}")
        self.offset_tag_bits = offset_tag_bits
        self._offset_mask = (1 << offset_tag_bits) - 1
        self.pcache = PretranslationCache(cache_entries)
        self.base = FullyAssocTLB(base_entries, replacement="random", seed=seed)
        self.arbiter = PortArbiter(base_ports)
        self.status = PageStatusTable()

    # -- tagging ---------------------------------------------------------------

    def tag_of(self, req: TranslationRequest) -> tuple[int, int] | None:
        """Pretranslation-cache tag of a request (None if untaggable).

        The paper's configuration concatenates the base register id with
        the upper 4 bits of a load's displacement; ``offset_tag_bits``
        generalizes the width (0 reduces the tag to the register alone,
        the BAC-without-offsets policy).
        """
        if req.base_reg is None:
            return None
        off = (
            (req.offset >> OFFSET_TAG_SHIFT) & self._offset_mask
            if req.is_load
            else 0
        )
        return (req.base_reg, off)

    # -- engine hooks --------------------------------------------------------------

    def on_register_write(self, dests: tuple, srcs: tuple) -> None:
        """Propagate attachments through pointer arithmetic (decode order)."""
        for src in srcs:
            tags = self.pcache.tags_of(src)
            if not tags:
                continue
            for tag in tags:
                vpn = self.pcache.get(tag)
                if vpn is None:
                    continue
                for dst in dests:
                    if dst == src:
                        continue  # self-update keeps its attachment as-is
                    self.pcache.insert((dst, tag[1]), vpn)

    def request(self, req: TranslationRequest) -> TranslationResult | None:
        return self.request_tagged(req, self.tag_of(req))

    def request_tagged(
        self, req: TranslationRequest, tag: tuple[int, int] | None
    ) -> TranslationResult | None:
        """:meth:`request` for callers that precomputed :meth:`tag_of`."""
        self.stats.requests += 1
        if tag is not None:
            attached = self.pcache.lookup(tag)
            if attached == req.vpn:
                self.stats.shielded += 1
                if self.status.needs_update(req.vpn, req.is_write):
                    self.status.update(req.vpn, req.is_write)
                    self.stats.status_writes += 1
                    self.arbiter.submit(req.cycle, req.seq, _StatusWrite(req.vpn))
                return TranslationResult(req, ready=req.cycle, shielded=True)
        # Miss detected the cycle after address generation; the base TLB
        # access itself happens at the grant cycle.
        self.arbiter.submit(req.cycle + 1, req.seq, req)
        return None

    def tick(self, now: int) -> list[TranslationResult]:
        results: list[TranslationResult] = []
        for payload in self.arbiter.grant(now):
            if isinstance(payload, _StatusWrite):
                continue
            req: TranslationRequest = payload
            stall = now - (req.cycle + 1)
            if stall > 0:
                self.stats.port_stall_cycles += stall
                self.stats.port_stalled_requests += 1
            self.stats.base_probes += 1
            hit = self.base.probe(req.vpn)
            if not hit:
                self.stats.base_misses += 1
                victim = self.base.insert(req.vpn)
                if victim is not None:
                    # Coherence rule: flush all attachments whenever a
                    # base-TLB entry is replaced.
                    self.pcache.flush()
                    self.stats.shield_flushes += 1
            # Attach the translation to the base register value.
            tag = self.tag_of(req)
            if tag is not None:
                self.pcache.insert(tag, req.vpn)
            self.status.update(req.vpn, req.is_write)
            results.append(TranslationResult(req, ready=now, tlb_miss=not hit))
        return results

    def pending(self) -> int:
        return len(self.arbiter)

    def quiescent_until(self, now: int) -> int:
        return self.arbiter.quiescent_until(now)

    def flush(self) -> None:
        self.pcache.flush()
        self.base.flush()
        self.status = PageStatusTable()
