"""High-bandwidth address translation mechanisms — the paper's contribution.

The thirteen designs of Table 2 are built from five mechanisms:

``multiported``
    Brute-force multi-ported TLB (T4, T2, T1) — the baseline standard.
``interleaved``
    Banked TLB behind a crossbar with bit-select or XOR-fold bank
    selection (I8, I4, X4).
``multilevel``
    Small multi-ported L1 TLB shielding a single-ported L2 (M16, M8, M4),
    with multi-level inclusion and status write-through.
``piggyback``
    Piggyback ports: simultaneous requests to the same virtual page
    combine at the access port (PB2, PB1, and per-bank in I4/PB).
``pretranslation``
    Translations attached to register values at first dereference and
    propagated through pointer arithmetic (P8).

All mechanisms implement the :class:`~repro.tlb.base.TranslationMechanism`
interface consumed by the timing engine, and are instantiated from their
paper mnemonics by :func:`~repro.tlb.factory.make_mechanism`.
"""

from repro.tlb.base import PageStatusTable, TranslationMechanism
from repro.tlb.factory import DESIGN_MNEMONICS, make_mechanism
from repro.tlb.interleaved import InterleavedTLB
from repro.tlb.multilevel import MultiLevelTLB
from repro.tlb.multiported import MultiPortedTLB, PerfectTLB
from repro.tlb.piggyback import PiggybackTLB
from repro.tlb.pretranslation import PretranslationMechanism
from repro.tlb.request import TranslationRequest, TranslationResult
from repro.tlb.stats import TranslationStats
from repro.tlb.storage import FullyAssocTLB

__all__ = [
    "DESIGN_MNEMONICS",
    "FullyAssocTLB",
    "InterleavedTLB",
    "MultiLevelTLB",
    "MultiPortedTLB",
    "PageStatusTable",
    "PerfectTLB",
    "PiggybackTLB",
    "PretranslationMechanism",
    "TranslationMechanism",
    "TranslationRequest",
    "TranslationResult",
    "TranslationStats",
    "make_mechanism",
]
