"""First-order area and latency models for the Table 2 designs.

The paper's case *against* multi-porting is a scaling argument (§3.1):
"the capacitance and resistance load on each access path increases with
the number of ports ... the area of a multi-ported device is
proportional to the square of the number of ports [Jol91]", while the
alternatives add small fixed costs (comparators, a crossbar, a small
extra array).  This module turns that argument into first-order
numbers so performance results can be paired with cost, in the spirit
of the paper's "any latency and area benefits will serve to improve
system performance through increased clock speeds and/or better die
space utilization".

Units are normalized, not nanometers: area is measured in
*single-ported CAM-entry equivalents* (one entry of a one-ported
fully-associative TLB = 1.0) and latency in *relative access delays*
(one 128-entry single-ported fully-associative lookup = 1.0).  The
scaling rules:

* a ``p``-ported cell costs ``~p**2 / 1**2`` area (wire-dominated
  layout, [Jol91]); its delay grows with the per-port load,
  modeled as ``1 + 0.15 * (p - 1)``;
* array delay grows logarithmically with entries (match-line length):
  ``0.5 + 0.5 * log2(entries) / log2(128)``;
* an interleaved design pays a ``b x b`` crossbar:
  area ``~0.05 * b**2`` entry-equivalents and a fixed 0.15 delay
  adder, but its banks are small and single-ported;
* a piggyback port costs one comparator + gate: 0.25 entry-equivalents
  and (paper §3.4) no added latency on the critical path;
* multi-level/pretranslation front structures are small multi-ported
  arrays costed by the same rules; their *hit* path sees only the small
  array's latency.

These constants are deliberately coarse — the point is relative order
of magnitude, which is all the paper claims.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

_BASELINE_ENTRIES = 128

#: Crossbar area per switch point (an interleaved design pays
#: ``ldst_ports x banks`` of them) and its fixed delay adder.
CROSSBAR_AREA_PER_POINT = 0.05
CROSSBAR_DELAY = 0.15
#: Processor-side ports feeding an interleaved crossbar.
CROSSBAR_PORTS = 4
#: One piggyback port = one comparator + gating.
PIGGYBACK_COMPARATOR_AREA = 0.25


def _array_delay(entries: int, ports: int = 1) -> float:
    """Relative delay of a fully-associative array lookup."""
    if entries <= 0:
        raise ValueError(f"entries must be positive: {entries}")
    size_term = 0.5 + 0.5 * (math.log2(entries) / math.log2(_BASELINE_ENTRIES))
    port_term = 1.0 + 0.15 * (ports - 1)
    return size_term * port_term


def _array_area(entries: int, ports: int = 1) -> float:
    """Area in single-ported entry equivalents."""
    if ports <= 0:
        raise ValueError(f"ports must be positive: {ports}")
    return entries * ports * ports


def array_area_arrays(entries, ports):
    """Vectorized :func:`_array_area`: numpy arrays in, array out.

    Same formula — ``entries * ports**2`` single-ported entry
    equivalents — applied elementwise, so the screening pipeline
    (:mod:`repro.eval.screen`) prices whole design spaces with the same
    constants :func:`design_cost` uses for single mnemonics.
    """
    return entries * ports * ports


def array_delay_arrays(entries, ports):
    """Vectorized :func:`_array_delay` (requires numpy)."""
    import numpy as np

    size_term = 0.5 + 0.5 * (
        np.log2(np.maximum(entries, 1)) / math.log2(_BASELINE_ENTRIES)
    )
    port_term = 1.0 + 0.15 * (ports - 1)
    return size_term * port_term


@dataclass
class DesignCost:
    """First-order cost summary of one design."""

    mnemonic: str
    #: Area in single-ported CAM-entry equivalents.
    area: float
    #: Relative delay of the common-case (hit) translation path.
    hit_latency: float
    #: Short explanation of what dominates the cost.
    note: str

    @property
    def area_vs_t1(self) -> float:
        """Area relative to the single-ported 128-entry baseline."""
        return self.area / _array_area(_BASELINE_ENTRIES, 1)


def design_cost(mnemonic: str) -> DesignCost:
    """Cost model for a Table 2 (or extension) mnemonic."""
    name = mnemonic.upper()
    if name in ("T4", "T2", "T1"):
        ports = int(name[1])
        return DesignCost(
            name,
            area=_array_area(128, ports),
            hit_latency=_array_delay(128, ports),
            note=f"{ports}-ported cells: area x{ports * ports}, loaded match lines",
        )
    if name in ("I8", "I4", "X4"):
        banks = int(name[1])
        bank_entries = 128 // banks
        crossbar = (
            CROSSBAR_AREA_PER_POINT * banks * banks * CROSSBAR_PORTS
        )  # ports x banks switch points
        return DesignCost(
            name,
            area=_array_area(bank_entries, 1) * banks + crossbar,
            hit_latency=_array_delay(bank_entries, 1) + CROSSBAR_DELAY,
            note="single-ported banks + crossbar adder",
        )
    if name in ("M16", "M8", "M4"):
        l1_entries = int(name[1:])
        l1 = _array_area(l1_entries, 4)
        l2 = _array_area(128, 1)
        return DesignCost(
            name,
            area=l1 + l2,
            hit_latency=_array_delay(l1_entries, 4),
            note="small 4-ported L1 on the hit path; L2 off it",
        )
    if name == "P8":
        pcache = _array_area(8, 4)
        base = _array_area(128, 1)
        return DesignCost(
            name,
            area=pcache + base,
            # Pretranslations are ready at decode: the hit path adds no
            # translation delay before cache access at all.
            hit_latency=_array_delay(8, 4) * 0.5,
            note="8-entry pretranslation cache read at decode",
        )
    if name in ("PB2", "PB1"):
        ports = int(name[2])
        riders = 2 if name == "PB2" else 3
        return DesignCost(
            name,
            area=_array_area(128, ports) + PIGGYBACK_COMPARATOR_AREA * riders,
            hit_latency=_array_delay(128, ports),  # gate on hit signal only
            note=f"{ports} real ports + {riders} comparators",
        )
    if name == "I4/PB":
        base = design_cost("I4")
        return DesignCost(
            name,
            area=base.area + PIGGYBACK_COMPARATOR_AREA * 3 * 4,
            hit_latency=base.hit_latency,
            note="I4 plus per-bank piggyback comparators",
        )
    if name in ("BAC32", "THB32"):
        front = _array_area(32, 4)
        return DesignCost(
            name,
            area=front + _array_area(128, 1),
            hit_latency=_array_delay(32, 4) * 0.5,
            note="32-entry PC-indexed cache read at decode",
        )
    raise ValueError(f"no cost model for design {mnemonic!r}")


def cost_table(mnemonics) -> str:
    """Render an area/latency table for a set of designs."""
    lines = [
        f"  {'design':8s} {'area (T1=1)':>12s} {'hit delay':>10s}  note",
    ]
    for m in mnemonics:
        c = design_cost(m)
        lines.append(
            f"  {c.mnemonic:8s} {c.area_vs_t1:12.2f} {c.hit_latency:10.2f}  {c.note}"
        )
    return "\n".join(lines)
