"""TLB entry storage: a fully-associative bank with LRU or random replacement.

All of Table 2's structures are compositions of this bank: a multi-ported
TLB is one bank with several access paths, an interleaved TLB is several
banks, a multi-level TLB is a small LRU bank over a large random bank,
and the pretranslation design's base TLB is a single random bank.

The bank stores virtual page numbers only.  Physical frame numbers are
a function of the page table and do not affect timing, so carrying them
here would be dead weight; what matters architecturally is *which* pages
are resident and the replacement order.
"""

from __future__ import annotations

from typing import Iterable

from repro.caches.replacement import XorShift32


class FullyAssocTLB:
    """Fully-associative TLB bank.

    Parameters
    ----------
    entries:
        Capacity in page-table entries.
    replacement:
        ``"lru"`` (used by the small L1 TLBs and the pretranslation
        cache) or ``"random"`` (used by the paper's 128-entry base TLBs).
    seed:
        PRNG seed for random replacement (deterministic xorshift).
    """

    def __init__(self, entries: int, replacement: str = "random", seed: int = 0xBEEF_CAFE):
        if entries <= 0:
            raise ValueError(f"entries must be positive: {entries}")
        if replacement not in ("lru", "random"):
            raise ValueError(f"unknown replacement policy: {replacement!r}")
        self.entries = entries
        self.replacement = replacement
        self._rng = XorShift32(seed)
        # Insertion-ordered dict doubles as the LRU chain (MRU last).
        self._resident: dict[int, None] = {}
        self.probes = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._resident

    def probe(self, vpn: int) -> bool:
        """Look up ``vpn``; updates recency on hit and counts stats."""
        self.probes += 1
        if vpn in self._resident:
            if self.replacement == "lru":
                del self._resident[vpn]
                self._resident[vpn] = None
            return True
        self.misses += 1
        return False

    def insert(self, vpn: int) -> int | None:
        """Install ``vpn``; returns the evicted vpn, if any.

        Inserting a resident vpn refreshes its recency and evicts
        nothing.
        """
        if vpn in self._resident:
            if self.replacement == "lru":
                del self._resident[vpn]
                self._resident[vpn] = None
            return None
        victim = None
        if len(self._resident) >= self.entries:
            if self.replacement == "lru":
                victim = next(iter(self._resident))
            else:
                index = self._rng.below(len(self._resident))
                # dict preserves order; walk to the chosen slot.
                for i, key in enumerate(self._resident):
                    if i == index:
                        victim = key
                        break
            del self._resident[victim]
            self.evictions += 1
        self._resident[vpn] = None
        self.insertions += 1
        return victim

    def invalidate(self, vpn: int) -> bool:
        """Drop ``vpn`` if resident; returns True if it was."""
        if vpn in self._resident:
            del self._resident[vpn]
            return True
        return False

    def flush(self) -> int:
        """Drop everything; returns the number of entries dropped."""
        count = len(self._resident)
        self._resident.clear()
        return count

    def resident(self) -> Iterable[int]:
        """The resident vpns, LRU order first (when LRU)."""
        return tuple(self._resident)

    @property
    def miss_rate(self) -> float:
        """Fraction of probes that missed (0 when unprobed)."""
        return self.misses / self.probes if self.probes else 0.0
