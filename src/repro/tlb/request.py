"""Translation request and result records exchanged with the timing engine."""

from __future__ import annotations


class TranslationRequest:
    """One data-memory translation request.

    Created by the timing engine when a load/store generates its
    effective address.  ``seq`` is the dynamic instruction sequence
    number; the paper's arbitration rule — "the port is allocated first
    to the earliest issued instruction" — is implemented by granting in
    ``seq`` order.
    """

    __slots__ = ("seq", "vpn", "cycle", "is_write", "is_load", "base_reg", "offset")

    def __init__(
        self,
        seq: int,
        vpn: int,
        cycle: int,
        is_write: bool = False,
        is_load: bool = True,
        base_reg: int | None = None,
        offset: int = 0,
    ):
        self.seq = seq
        self.vpn = vpn
        #: Cycle at which the address was generated (request submission).
        self.cycle = cycle
        self.is_write = is_write
        self.is_load = is_load
        #: Architected base register of the access (pretranslation tag).
        self.base_reg = base_reg
        #: Immediate displacement of the access (pretranslation tag bits).
        self.offset = offset

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "st" if self.is_write else "ld"
        return f"<TReq #{self.seq} {kind} vpn={self.vpn:#x} @c{self.cycle}>"


class TranslationResult:
    """Outcome of a translation request.

    ``ready`` is the cycle the translation is available at the requester,
    *excluding* the TLB miss handler: when ``tlb_miss`` is true, the
    engine adds the fixed 30-cycle miss latency with the paper's ordering
    rule (service starts after earlier-issued instructions complete,
    because speculative TLB misses stall dispatch).

    ``depends_on`` links a piggybacked rider that combined with a
    translation which *missed*: the rider's translation becomes available
    when the host's miss service completes, without a second walk.
    """

    __slots__ = ("req", "ready", "tlb_miss", "shielded", "depends_on")

    def __init__(
        self,
        req: TranslationRequest,
        ready: int,
        tlb_miss: bool = False,
        shielded: bool = False,
        depends_on: int | None = None,
    ):
        self.req = req
        self.ready = ready
        self.tlb_miss = tlb_miss
        self.shielded = shielded
        self.depends_on = depends_on

    @property
    def stall_cycles(self) -> int:
        """Added translation latency beyond the fully-overlapped path."""
        return self.ready - self.req.cycle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = []
        if self.tlb_miss:
            flags.append("miss")
        if self.shielded:
            flags.append("shielded")
        if self.depends_on is not None:
            flags.append(f"rides#{self.depends_on}")
        return f"<TRes #{self.req.seq} ready=c{self.ready} {' '.join(flags)}>"
