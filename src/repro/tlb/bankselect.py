"""Bank selection functions for interleaved TLBs (paper §3.2, §4.1).

* *Bit selection* uses the address bits immediately above the page
  offset — i.e. the low bits of the virtual page number — to pick the
  bank (two bits for I4, three for I8).
* *XOR folding* (design X4) XORs together "the three least significant
  groups of two address bits immediately above the page offset",
  randomizing assignment for strided streams whose low vpn bits alias.
"""

from __future__ import annotations

from typing import Callable

#: A bank selection function maps a virtual page number to a bank index.
BankSelect = Callable[[int], int]


def bit_select(banks: int) -> BankSelect:
    """Low-vpn-bit selection for a power-of-two number of banks."""
    if banks <= 0 or banks & (banks - 1):
        raise ValueError(f"banks must be a positive power of two: {banks}")
    mask = banks - 1

    def select(vpn: int) -> int:
        return vpn & mask

    return select


def xor_fold(banks: int, groups: int = 3) -> BankSelect:
    """XOR-fold ``groups`` consecutive low bit-groups of the vpn."""
    if banks <= 0 or banks & (banks - 1):
        raise ValueError(f"banks must be a positive power of two: {banks}")
    if groups < 1:
        raise ValueError(f"groups must be >= 1: {groups}")
    width = banks.bit_length() - 1
    if width == 0:
        raise ValueError("xor_fold needs at least two banks")
    mask = banks - 1

    def select(vpn: int) -> int:
        folded = 0
        for g in range(groups):
            folded ^= (vpn >> (g * width)) & mask
        return folded

    return select
