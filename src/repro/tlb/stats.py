"""Counters shared by all translation mechanisms.

These map directly onto the qualitative model of the paper's Section 2:
``shielded`` measures :math:`f_{shielded}`, ``port_stall_cycles``
accumulates :math:`t_{stalled}`, and ``base_misses / base_probes`` is
:math:`M_{TLB}` for the base mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TranslationStats:
    """Accumulated translation-mechanism counters."""

    #: Translation requests submitted by the processor core.
    requests: int = 0
    #: Requests satisfied by a shielding mechanism (L1 TLB hit,
    #: pretranslation hit) without touching the base TLB port.
    shielded: int = 0
    #: Requests satisfied by combining with another request at a port.
    piggybacked: int = 0
    #: Accesses granted a base-TLB port.
    base_probes: int = 0
    #: Base-TLB misses (each costs the 30-cycle walk in the engine).
    base_misses: int = 0
    #: Total cycles requests spent queued waiting for a port (beyond the
    #: design's intrinsic minimum latency).
    port_stall_cycles: int = 0
    #: Requests that waited at least one cycle for a port.
    port_stalled_requests: int = 0
    #: Reference/dirty-bit write-throughs sent to the base TLB.
    status_writes: int = 0
    #: Pretranslation-cache / L1-TLB flushes due to base replacements.
    shield_flushes: int = 0

    @property
    def shielded_fraction(self) -> float:
        """:math:`f_{shielded}` of the paper's model."""
        return self.shielded / self.requests if self.requests else 0.0

    @property
    def base_miss_rate(self) -> float:
        """:math:`M_{TLB}` of the paper's model."""
        return self.base_misses / self.base_probes if self.base_probes else 0.0

    @property
    def mean_port_stall(self) -> float:
        """Average :math:`t_{stalled}` over all requests."""
        return self.port_stall_cycles / self.requests if self.requests else 0.0
