"""Translation-mechanism interface and shared building blocks.

The timing engine drives a mechanism through three hooks:

* :meth:`TranslationMechanism.on_register_write` — called in program
  order as instructions enter the window (the decode stage, where
  pretranslation does its register-file-parallel propagation);
* :meth:`TranslationMechanism.request` — called when a load/store
  generates its effective address; may return an immediate
  :class:`~repro.tlb.request.TranslationResult` when a shielding
  mechanism satisfies the request, else the request queues internally;
* :meth:`TranslationMechanism.tick` — called once per cycle; arbitrates
  ports and returns the results that resolved this cycle.

Timing convention: TLB access is fully overlapped with data-cache access
(paper §4.1), so a request granted a port in its submission cycle with a
TLB hit has ``ready == request.cycle`` — zero added latency.  Base-TLB
misses are flagged and charged (30 cycles + ordering) by the engine.
"""

from __future__ import annotations

from repro.tlb.request import TranslationRequest, TranslationResult
from repro.tlb.stats import TranslationStats

#: Sentinel returned by :meth:`TranslationMechanism.quiescent_until` when a
#: mechanism has no pending work at all: "no event from this mechanism".
#: Large enough to compare above any reachable cycle count.
NEVER = 1 << 62


class TranslationMechanism:
    """Abstract base for all Table 2 designs."""

    #: Mechanisms that attach translations to register values need to see
    #: register writes (pretranslation); the engine checks this flag to
    #: avoid per-instruction overhead for everyone else.
    needs_register_events = False

    def __init__(self, page_shift: int):
        self.page_shift = page_shift
        self.stats = TranslationStats()

    # -- engine hooks --------------------------------------------------------

    def on_register_write(self, dests: tuple, srcs: tuple) -> None:
        """In-order decode-stage register-write hook (default: nothing).

        Delivered only when :attr:`needs_register_events` is set, for
        every non-load instruction that writes registers, in program
        order — this is where pretranslation propagates attachments.
        """

    def request(self, req: TranslationRequest) -> TranslationResult | None:
        """Submit a request at address-generation time.

        Returns an immediate result when shielded, else ``None`` (the
        result will come out of :meth:`tick`).
        """
        raise NotImplementedError

    def tick(self, now: int) -> list[TranslationResult]:
        """Advance one cycle; returns results resolved this cycle."""
        raise NotImplementedError

    def pending(self) -> int:
        """Number of requests still queued (for engine drain checks)."""
        raise NotImplementedError

    def quiescent_until(self, now: int) -> int:
        """Earliest cycle after ``now`` at which :meth:`tick` may act.

        The event-driven engine calls this after ticking at ``now``; it
        may skip straight to the returned cycle, never invoking ``tick``
        in between.  The contract: for every cycle ``c`` with
        ``now < c < quiescent_until(now)``, ``tick(c)`` would return no
        results and leave the mechanism's state unchanged.  Return
        :data:`NEVER` when the mechanism holds no pending work at all.

        The default is maximally conservative — "tick me every cycle" —
        so third-party mechanisms are correct without opting in.  The
        port-arbitrated designs all override this via
        :meth:`PortArbiter.quiescent_until`.
        """
        return now + 1

    def flush(self) -> None:
        """Invalidate all cached translations (context switch / VM change).

        Queued requests stay queued — they re-probe the now-cold
        structures when granted.  Subclasses override to clear their
        arrays; the default covers mechanisms with no state.
        """

    # -- helpers --------------------------------------------------------------

    def vpn_of(self, vaddr: int) -> int:
        """Virtual page number of a byte address."""
        return vaddr >> self.page_shift


class PortArbiter:
    """Queues requests for a fixed number of ports.

    Grants are in dynamic-sequence order ("the port is allocated first to
    the earliest issued instruction"), restricted to requests whose
    ``min_cycle`` has arrived (multi-level and pretranslation designs
    forward shield misses the *following* cycle).

    Queue depths in practice are single digits, so linear scans are both
    clear and fast.
    """

    __slots__ = ("ports", "_queue")

    def __init__(self, ports: int):
        if ports <= 0:
            raise ValueError(f"ports must be positive: {ports}")
        self.ports = ports
        #: List of (min_cycle, seq, payload) tuples.
        self._queue: list[tuple[int, int, object]] = []

    def submit(self, min_cycle: int, seq: int, payload: object) -> None:
        """Enqueue a request eligible for grant at ``min_cycle``."""
        self._queue.append((min_cycle, seq, payload))

    def grant(self, now: int) -> list[object]:
        """Pop up to ``ports`` eligible payloads in seq order."""
        queue = self._queue
        if not queue:
            return []
        if len(queue) == 1:
            # The overwhelmingly common case on busy cycles.
            if queue[0][0] <= now:
                return [queue.pop()[2]]
            return []
        if self.ports == 1:
            # Single port: pick the eligible min-seq item without sorting.
            best = None
            for item in queue:
                if item[0] <= now and (best is None or item[1] < best[1]):
                    best = item
            if best is None:
                return []
            queue.remove(best)
            return [best[2]]
        eligible = sorted(
            (item for item in queue if item[0] <= now), key=lambda item: item[1]
        )
        granted = eligible[: self.ports]
        for item in granted:
            queue.remove(item)
        return [item[2] for item in granted]

    def peek_waiting(self, now: int) -> list[object]:
        """Eligible-but-ungranted payloads, in seq order (for piggyback)."""
        eligible = sorted(
            (item for item in self._queue if item[0] <= now), key=lambda item: item[1]
        )
        return [item[2] for item in eligible]

    def remove(self, payload: object) -> None:
        """Withdraw a queued payload (piggybacked riders leave the queue)."""
        for item in self._queue:
            if item[2] is payload:
                self._queue.remove(item)
                return
        raise ValueError("payload not queued")

    def quiescent_until(self, now: int) -> int:
        """Earliest cycle after ``now`` at which a grant could occur.

        An empty queue yields :data:`NEVER`; leftover requests already
        eligible (the queue over-subscribed the ports) force ``now + 1``;
        otherwise the earliest future ``min_cycle`` is the next event.
        """
        queue = self._queue
        if not queue:
            return NEVER
        earliest = min(item[0] for item in queue)
        return earliest if earliest > now else now + 1

    def __len__(self) -> int:
        return len(self._queue)


class PageStatusTable:
    """Reference/dirty bits per virtual page.

    The shielding designs replicate page status upward, but changes are
    written through to the base TLB immediately (paper §4.1): the first
    reference and the first write to a page each generate one status
    write that competes for a base-TLB port.
    """

    __slots__ = ("_referenced", "_dirty")

    def __init__(self):
        self._referenced: set[int] = set()
        self._dirty: set[int] = set()

    def needs_update(self, vpn: int, is_write: bool) -> bool:
        """Would accessing ``vpn`` change its status bits?"""
        if vpn not in self._referenced:
            return True
        return is_write and vpn not in self._dirty

    def update(self, vpn: int, is_write: bool) -> None:
        """Record a reference (and write, if any) to ``vpn``."""
        self._referenced.add(vpn)
        if is_write:
            self._dirty.add(vpn)


class _StatusWrite:
    """A queued reference/dirty write-through (consumes a port cycle)."""

    __slots__ = ("vpn",)

    def __init__(self, vpn: int):
        self.vpn = vpn
