"""Multi-level TLB (paper §3.3) — designs M16, M8, M4.

A small multi-ported L1 TLB with LRU replacement shields a large
single-ported L2 TLB with random replacement.  The L1 has enough ports
(four) for every simultaneous request the baseline core can make, so an
L1 hit is a zero-added-latency shielded translation.

Timing (paper §4.1): L1 misses are sent *the following cycle* to the L2,
where they may queue behind other requests; the minimum added latency of
an L1 miss is therefore 2 cycles (one to forward, one to access the L2).

Consistency (paper §4.1):

* multi-level inclusion — misses fill both levels, and an entry replaced
  in the L2 is selectively invalidated from the L1;
* page status (reference/dirty bits) is replicated in the L1 but every
  status *change* is written through to the L2 immediately, consuming an
  L2 port cycle.
"""

from __future__ import annotations

from repro.tlb.base import PageStatusTable, PortArbiter, TranslationMechanism, _StatusWrite
from repro.tlb.request import TranslationRequest, TranslationResult
from repro.tlb.storage import FullyAssocTLB


class MultiLevelTLB(TranslationMechanism):
    """An L1/L2 TLB hierarchy with inclusion and status write-through."""

    #: Added latency of the L2 access itself after the forward cycle.
    L2_ACCESS_CYCLES = 1

    def __init__(
        self,
        l1_entries: int,
        l1_ports: int = 4,
        l2_entries: int = 128,
        l2_ports: int = 1,
        l1_replacement: str = "lru",
        page_shift: int = 12,
        seed: int = 0xBEEF_CAFE,
    ):
        super().__init__(page_shift)
        self.l1 = FullyAssocTLB(l1_entries, replacement=l1_replacement, seed=seed)
        self.l2 = FullyAssocTLB(l2_entries, replacement="random", seed=seed ^ 0x5A5A)
        self.l1_ports = l1_ports
        self.arbiter = PortArbiter(l2_ports)
        self.status = PageStatusTable()

    def request(self, req: TranslationRequest) -> TranslationResult | None:
        self.stats.requests += 1
        if self.l1.probe(req.vpn):
            self.stats.shielded += 1
            if self.status.needs_update(req.vpn, req.is_write):
                # Write the status change through to the L2 port queue.
                self.status.update(req.vpn, req.is_write)
                self.stats.status_writes += 1
                self.arbiter.submit(req.cycle, req.seq, _StatusWrite(req.vpn))
            return TranslationResult(req, ready=req.cycle, shielded=True)
        # Forwarded to the L2 the following cycle.
        self.arbiter.submit(req.cycle + 1, req.seq, req)
        return None

    def tick(self, now: int) -> list[TranslationResult]:
        results: list[TranslationResult] = []
        for payload in self.arbiter.grant(now):
            if isinstance(payload, _StatusWrite):
                continue  # consumes the port cycle; nothing to report
            req: TranslationRequest = payload
            # Queueing beyond the mandatory forward cycle is port stall.
            stall = now - (req.cycle + 1)
            if stall > 0:
                self.stats.port_stall_cycles += stall
                self.stats.port_stalled_requests += 1
            self.stats.base_probes += 1
            hit = self.l2.probe(req.vpn)
            if not hit:
                self.stats.base_misses += 1
                victim = self.l2.insert(req.vpn)
                if victim is not None:
                    # Enforce inclusion: the L1 may not cache a page the
                    # L2 no longer holds.
                    self.l1.invalidate(victim)
            self.l1.insert(req.vpn)
            self.status.update(req.vpn, req.is_write)
            results.append(
                TranslationResult(
                    req, ready=now + self.L2_ACCESS_CYCLES, tlb_miss=not hit
                )
            )
        return results

    def pending(self) -> int:
        return len(self.arbiter)

    def quiescent_until(self, now: int) -> int:
        return self.arbiter.quiescent_until(now)

    def flush(self) -> None:
        self.l1.flush()
        self.l2.flush()
        self.status = PageStatusTable()

    def check_inclusion(self) -> bool:
        """True when every L1 entry is also in the L2 (test hook)."""
        return all(vpn in self.l2 for vpn in self.l1.resident())
