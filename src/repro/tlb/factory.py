"""Design factory: paper mnemonics (Table 2) to mechanism instances."""

from __future__ import annotations

from typing import Callable

from repro.tlb.base import TranslationMechanism
from repro.tlb.interleaved import InterleavedTLB
from repro.tlb.multilevel import MultiLevelTLB
from repro.tlb.multiported import MultiPortedTLB, PerfectTLB
from repro.tlb.piggyback import PiggybackTLB
from repro.tlb.pretranslation import PretranslationMechanism
from repro.tlb.related import BranchAddressCache, TranslationHintBuffer

_BUILDERS: dict[str, Callable[[int], TranslationMechanism]] = {
    # Multi-ported, 128 entries, fully-associative, random replacement.
    "T4": lambda ps: MultiPortedTLB(ports=4, entries=128, page_shift=ps),
    "T2": lambda ps: MultiPortedTLB(ports=2, entries=128, page_shift=ps),
    "T1": lambda ps: MultiPortedTLB(ports=1, entries=128, page_shift=ps),
    # Interleaved, 128 entries total.
    "I8": lambda ps: InterleavedTLB(banks=8, entries=128, select="bit", page_shift=ps),
    "I4": lambda ps: InterleavedTLB(banks=4, entries=128, select="bit", page_shift=ps),
    "X4": lambda ps: InterleavedTLB(banks=4, entries=128, select="xor", page_shift=ps),
    # Multi-level: 4-ported LRU L1 over a single-ported 128-entry L2.
    "M16": lambda ps: MultiLevelTLB(l1_entries=16, page_shift=ps),
    "M8": lambda ps: MultiLevelTLB(l1_entries=8, page_shift=ps),
    "M4": lambda ps: MultiLevelTLB(l1_entries=4, page_shift=ps),
    # Pretranslation: 8-entry cache over a single-ported 128-entry base.
    "P8": lambda ps: PretranslationMechanism(cache_entries=8, page_shift=ps),
    # Piggybacked multi-ported TLBs.
    "PB2": lambda ps: PiggybackTLB(ports=2, piggyback_ports=2, page_shift=ps),
    "PB1": lambda ps: PiggybackTLB(ports=1, piggyback_ports=3, page_shift=ps),
    # Interleaved with piggyback ports at each bank.
    "I4/PB": lambda ps: InterleavedTLB(
        banks=4, entries=128, select="bit", piggyback_per_bank=3, page_shift=ps
    ),
    # Not in Table 2: ideal reference.
    "PERFECT": lambda ps: PerfectTLB(page_shift=ps),
    # Extension designs: the related work pretranslation builds on
    # (paper §3.5), over the same single-ported 128-entry base as P8.
    "BAC32": lambda ps: BranchAddressCache(cache_entries=32, page_shift=ps),
    "THB32": lambda ps: TranslationHintBuffer(cache_entries=32, page_shift=ps),
}

#: Extension designs beyond Table 2 (related work; see repro.tlb.related).
EXTENSION_MNEMONICS: tuple[str, ...] = ("BAC32", "THB32", "PERFECT")

#: The thirteen Table 2 mnemonics, in the paper's presentation order.
DESIGN_MNEMONICS: tuple[str, ...] = (
    "T4",
    "T2",
    "T1",
    "M16",
    "M8",
    "M4",
    "P8",
    "I8",
    "I4",
    "X4",
    "PB2",
    "PB1",
    "I4/PB",
)


def make_mechanism(mnemonic: str, page_shift: int = 12) -> TranslationMechanism:
    """Instantiate a Table 2 design (or ``PERFECT``) by mnemonic."""
    builder = _BUILDERS.get(mnemonic.upper())
    if builder is None:
        known = ", ".join(sorted(_BUILDERS))
        raise ValueError(f"unknown design {mnemonic!r}; known designs: {known}")
    return builder(page_shift)


#: Classes reachable from declarative mechanism specs (see below).
MECHANISM_CLASSES: dict[str, type[TranslationMechanism]] = {
    cls.__name__: cls
    for cls in (
        MultiPortedTLB,
        PerfectTLB,
        InterleavedTLB,
        MultiLevelTLB,
        PiggybackTLB,
        PretranslationMechanism,
        BranchAddressCache,
        TranslationHintBuffer,
    )
}


def make_mechanism_from_spec(spec, page_shift: int = 12) -> TranslationMechanism:
    """Instantiate a mechanism from a declarative (class name, kwargs) spec.

    ``spec`` is ``(class_name, kwargs)`` where ``kwargs`` is a mapping or
    an iterable of ``(name, value)`` pairs — the serializable form the
    ablation sweeps and :class:`repro.eval.runner.RunRequest` use in
    place of closure-based factories, so off-grid design points can be
    hashed, pickled to worker processes, and memoized on disk.
    """
    name, kwargs = spec
    cls = MECHANISM_CLASSES.get(name)
    if cls is None:
        known = ", ".join(sorted(MECHANISM_CLASSES))
        raise ValueError(f"unknown mechanism class {name!r}; known: {known}")
    return cls(page_shift=page_shift, **dict(kwargs))
