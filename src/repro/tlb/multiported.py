"""Multi-ported TLB (paper §3.1) — designs T4, T2, T1.

Every port has a path to every entry, so each granted request probes the
single shared fully-associative bank.  Bandwidth is exactly ``ports``
translations per cycle; excess simultaneous requests queue and are
granted to the earliest-issued instruction first.

T4 (four ports) can serve every request the 4 load/store-unit baseline
can generate, so it doubles as the paper's unlimited-bandwidth yardstick.
"""

from __future__ import annotations

from repro.tlb.base import PortArbiter, TranslationMechanism
from repro.tlb.request import TranslationRequest, TranslationResult
from repro.tlb.storage import FullyAssocTLB


class MultiPortedTLB(TranslationMechanism):
    """A ``ports``-ported, fully-associative TLB."""

    def __init__(
        self,
        ports: int,
        entries: int = 128,
        replacement: str = "random",
        page_shift: int = 12,
        seed: int = 0xBEEF_CAFE,
    ):
        super().__init__(page_shift)
        self.tlb = FullyAssocTLB(entries, replacement=replacement, seed=seed)
        self.arbiter = PortArbiter(ports)
        self.ports = ports

    def request(self, req: TranslationRequest) -> TranslationResult | None:
        self.stats.requests += 1
        self.arbiter.submit(req.cycle, req.seq, req)
        return None

    def tick(self, now: int) -> list[TranslationResult]:
        results = []
        for req in self.arbiter.grant(now):
            stall = now - req.cycle
            if stall > 0:
                self.stats.port_stall_cycles += stall
                self.stats.port_stalled_requests += 1
            self.stats.base_probes += 1
            hit = self.tlb.probe(req.vpn)
            if not hit:
                self.stats.base_misses += 1
                self.tlb.insert(req.vpn)
            results.append(TranslationResult(req, ready=now, tlb_miss=not hit))
        return results

    def pending(self) -> int:
        return len(self.arbiter)

    def quiescent_until(self, now: int) -> int:
        return self.arbiter.quiescent_until(now)

    def flush(self) -> None:
        self.tlb.flush()


class PerfectTLB(TranslationMechanism):
    """Unlimited bandwidth, zero misses: the ideal upper bound.

    Useful for sanity baselines and for isolating translation effects
    from the rest of the machine; not one of the paper's designs (T4
    plays that role there because it already saturates the core's
    demand).
    """

    def __init__(self, page_shift: int = 12):
        super().__init__(page_shift)

    def request(self, req: TranslationRequest) -> TranslationResult | None:
        self.stats.requests += 1
        self.stats.shielded += 1
        return TranslationResult(req, ready=req.cycle, shielded=True)

    def tick(self, now: int) -> list[TranslationResult]:
        return []

    def pending(self) -> int:
        return 0

    def quiescent_until(self, now: int) -> int:
        from repro.tlb.base import NEVER

        return NEVER
