"""Related-work shielding mechanisms the paper builds on (§3.5).

The paper positions pretranslation as an extension of two earlier
proposals, which we implement as extension designs so the lineage can be
measured:

* **BAC** — Chiueh & Katz's *branch address cache* idea applied to data
  access: a small cache indexed by the **instruction address** of a
  load/store remembers the page that instruction last touched.  If the
  same instruction touches the same page again, the cached translation
  is reused.  Unlike pretranslation there is no propagation through
  register arithmetic, and reuse is per static instruction rather than
  per pointer value.
* **THB** — Bray & Flynn's *translation hint buffer*, which extends the
  same structure "to include a prediction of the next translation as
  well": a hit is also scored when the access lands on the page
  *following* the cached one (capturing code/data that streams across a
  page boundary), and the cached entry is updated to the new page.

Both sit over a single-ported 128-entry base TLB, like P8, so the three
designs isolate exactly the attachment policy.
"""

from __future__ import annotations

from repro.tlb.base import PageStatusTable, PortArbiter, TranslationMechanism, _StatusWrite
from repro.tlb.request import TranslationRequest, TranslationResult
from repro.tlb.storage import FullyAssocTLB


class _PcIndexedCache:
    """Small LRU cache: static instruction tag -> last vpn."""

    def __init__(self, entries: int):
        if entries <= 0:
            raise ValueError(f"entries must be positive: {entries}")
        self.entries = entries
        self._cache: dict[int, int] = {}

    def lookup(self, tag: int) -> int | None:
        vpn = self._cache.get(tag)
        if vpn is not None:
            del self._cache[tag]
            self._cache[tag] = vpn
        return vpn

    def insert(self, tag: int, vpn: int) -> None:
        if tag in self._cache:
            del self._cache[tag]
        elif len(self._cache) >= self.entries:
            del self._cache[next(iter(self._cache))]
        self._cache[tag] = vpn

    def flush(self) -> None:
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)


class BranchAddressCache(TranslationMechanism):
    """BAC-style per-static-instruction translation reuse.

    The tag is the requesting instruction's address; the engine does not
    currently thread the PC through translation requests, so the *base
    register + displacement* pair — which identifies the static access
    site in our builder-generated code — stands in for it.  A hit
    requires the access to land on the page the site last touched.
    """

    #: When True, a hit is also scored on the page after the cached one
    #: (the THB's next-page prediction), updating the entry.
    next_page_hint = False

    def __init__(
        self,
        cache_entries: int = 32,
        base_entries: int = 128,
        base_ports: int = 1,
        page_shift: int = 12,
        seed: int = 0xBEEF_CAFE,
    ):
        super().__init__(page_shift)
        self.cache = _PcIndexedCache(cache_entries)
        self.base = FullyAssocTLB(base_entries, replacement="random", seed=seed)
        self.arbiter = PortArbiter(base_ports)
        self.status = PageStatusTable()

    @staticmethod
    def _tag(req: TranslationRequest) -> int | None:
        if req.base_reg is None:
            return None
        return (req.base_reg << 16) ^ (req.offset & 0xFFFF)

    def request(self, req: TranslationRequest) -> TranslationResult | None:
        self.stats.requests += 1
        tag = self._tag(req)
        if tag is not None:
            cached = self.cache.lookup(tag)
            if cached is not None:
                hit = cached == req.vpn
                if not hit and self.next_page_hint and req.vpn == cached + 1:
                    hit = True
                    self.cache.insert(tag, req.vpn)
                if hit:
                    self.stats.shielded += 1
                    if self.status.needs_update(req.vpn, req.is_write):
                        self.status.update(req.vpn, req.is_write)
                        self.stats.status_writes += 1
                        self.arbiter.submit(req.cycle, req.seq, _StatusWrite(req.vpn))
                    return TranslationResult(req, ready=req.cycle, shielded=True)
        self.arbiter.submit(req.cycle + 1, req.seq, req)
        return None

    def tick(self, now: int) -> list[TranslationResult]:
        results: list[TranslationResult] = []
        for payload in self.arbiter.grant(now):
            if isinstance(payload, _StatusWrite):
                continue
            req: TranslationRequest = payload
            stall = now - (req.cycle + 1)
            if stall > 0:
                self.stats.port_stall_cycles += stall
                self.stats.port_stalled_requests += 1
            self.stats.base_probes += 1
            hit = self.base.probe(req.vpn)
            if not hit:
                self.stats.base_misses += 1
                victim = self.base.insert(req.vpn)
                if victim is not None:
                    self.cache.flush()
                    self.stats.shield_flushes += 1
            tag = self._tag(req)
            if tag is not None:
                self.cache.insert(tag, req.vpn)
            self.status.update(req.vpn, req.is_write)
            results.append(TranslationResult(req, ready=now, tlb_miss=not hit))
        return results

    def pending(self) -> int:
        return len(self.arbiter)

    def quiescent_until(self, now: int) -> int:
        return self.arbiter.quiescent_until(now)

    def flush(self) -> None:
        self.cache.flush()
        self.base.flush()
        self.status = PageStatusTable()


class TranslationHintBuffer(BranchAddressCache):
    """THB: BAC plus next-page prediction (Bray & Flynn)."""

    next_page_hint = True
