"""Interleaved TLB (paper §3.2) — designs I8, I4, X4 and I4/PB.

The entry array is split into single-ported banks behind a crossbar; a
bank selection function (:mod:`repro.tlb.bankselect`) maps each virtual
page to exactly one bank, which caps associativity at the bank size
(each of the paper's configurations keeps banks >= 16-way
fully-associative, so the hit-rate penalty is negligible — we model each
bank as fully associative with random replacement, as the paper does).

Bandwidth is one translation per bank per cycle; simultaneous requests
to the same bank serialize — the bank-conflict effect that makes the
plain interleaved designs underperform in Figure 5.  With
``piggyback_per_bank`` (design I4/PB), same-cycle requests to the same
*page* combine at the bank port instead of serializing, capturing both
kinds of locality.
"""

from __future__ import annotations

from repro.tlb.bankselect import BankSelect, bit_select, xor_fold
from repro.tlb.base import PortArbiter, TranslationMechanism
from repro.tlb.request import TranslationRequest, TranslationResult
from repro.tlb.storage import FullyAssocTLB


class InterleavedTLB(TranslationMechanism):
    """A banked TLB with per-bank single ports.

    Parameters
    ----------
    banks:
        Number of banks (power of two).
    entries:
        Total entries across all banks.
    select:
        ``"bit"`` or ``"xor"`` bank selection.
    piggyback_per_bank:
        Riders serviceable per bank per cycle (0 disables; I4/PB uses 3,
        enough to combine all four baseline requests at one bank).
    """

    def __init__(
        self,
        banks: int,
        entries: int = 128,
        select: str = "bit",
        piggyback_per_bank: int = 0,
        page_shift: int = 12,
        seed: int = 0xBEEF_CAFE,
    ):
        super().__init__(page_shift)
        if entries % banks:
            raise ValueError(f"{entries} entries do not divide into {banks} banks")
        if select == "bit":
            self.select: BankSelect = bit_select(banks)
        elif select == "xor":
            self.select = xor_fold(banks)
        else:
            raise ValueError(f"unknown bank selection: {select!r}")
        self.select_name = select
        self.banks = banks
        self.piggyback_per_bank = piggyback_per_bank
        bank_entries = entries // banks
        self._banks = [
            FullyAssocTLB(bank_entries, replacement="random", seed=seed + 977 * i)
            for i in range(banks)
        ]
        self._arbiters = [PortArbiter(1) for _ in range(banks)]
        #: Same-cycle same-bank conflicts observed (diagnostic).
        self.bank_conflicts = 0

    def request(self, req: TranslationRequest) -> TranslationResult | None:
        return self.request_banked(req, self.select(req.vpn))

    def request_banked(
        self, req: TranslationRequest, bank: int
    ) -> TranslationResult | None:
        """:meth:`request` for callers that precomputed the bank index."""
        self.stats.requests += 1
        self._arbiters[bank].submit(req.cycle, req.seq, req)
        return None

    def tick(self, now: int) -> list[TranslationResult]:
        results: list[TranslationResult] = []
        for bank, arbiter in enumerate(self._arbiters):
            granted = arbiter.grant(now)
            if not granted:
                continue
            storage = self._banks[bank]
            req = granted[0]
            stall = now - req.cycle
            if stall > 0:
                self.stats.port_stall_cycles += stall
                self.stats.port_stalled_requests += 1
            self.stats.base_probes += 1
            hit = storage.probe(req.vpn)
            if not hit:
                self.stats.base_misses += 1
                storage.insert(req.vpn)
            results.append(TranslationResult(req, ready=now, tlb_miss=not hit))
            waiting = arbiter.peek_waiting(now)
            if waiting:
                self.bank_conflicts += len(waiting)
            if self.piggyback_per_bank:
                riders = 0
                for rider in waiting:
                    if riders >= self.piggyback_per_bank:
                        break
                    if rider.vpn != req.vpn:
                        continue
                    arbiter.remove(rider)
                    riders += 1
                    self.stats.piggybacked += 1
                    rider_stall = now - rider.cycle
                    if rider_stall > 0:
                        self.stats.port_stall_cycles += rider_stall
                        self.stats.port_stalled_requests += 1
                    results.append(
                        TranslationResult(
                            rider,
                            ready=now,
                            tlb_miss=not hit,
                            depends_on=req.seq if not hit else None,
                        )
                    )
        return results

    def pending(self) -> int:
        return sum(len(a) for a in self._arbiters)

    def quiescent_until(self, now: int) -> int:
        return min(arbiter.quiescent_until(now) for arbiter in self._arbiters)

    def flush(self) -> None:
        for bank in self._banks:
            bank.flush()
