"""repro — reproduction of Austin & Sohi, "High-Bandwidth Address
Translation for Multiple-Issue Processors" (ISCA 1996).

Quick start::

    from repro import RunRequest, run_one

    result = run_one(RunRequest(workload="xlisp", design="M8"))
    print(result.ipc, result.stats.translation.shielded_fraction)

Packages
--------
``repro.isa``        mini MIPS-like ISA, program builder, register allocator
``repro.mem``        sparse memory, page table, address-space layout
``repro.func``       functional simulator (dynamic instruction stream)
``repro.branch``     GAp branch predictor and friends
``repro.caches``     set-associative caches, MSHRs
``repro.tlb``        the paper's address-translation designs (Table 2)
``repro.engine``     cycle-level 8-way in-order/out-of-order machine
``repro.workloads``  the ten synthetic benchmarks
``repro.eval``       experiment drivers for every table and figure
"""

from repro.engine import Machine, MachineConfig, SimulationResult
from repro.eval.runner import RunRequest, run_one
from repro.tlb import DESIGN_MNEMONICS, make_mechanism
from repro.workloads import iter_workload_names, make_workload

__version__ = "1.0.0"

__all__ = [
    "DESIGN_MNEMONICS",
    "Machine",
    "MachineConfig",
    "RunRequest",
    "SimulationResult",
    "__version__",
    "iter_workload_names",
    "make_mechanism",
    "make_workload",
    "run_one",
]
