"""repro — reproduction of Austin & Sohi, "High-Bandwidth Address
Translation for Multiple-Issue Processors" (ISCA 1996).

Quick start::

    from repro import (
        ArtifactStore, EvalOptions, ResultStore, RunRequest, run_many, run_one,
    )

    result = run_one(RunRequest(workload="xlisp", design="M8"))
    print(result.ipc, result.stats.translation.shielded_fraction)

    # A whole grid: scheduled request-by-request across 4 worker
    # processes (longest runs first), memoized in the on-disk result
    # store, and sharing build artifacts (trace + fetch plan) through
    # the on-disk artifact cache, so re-running it is pure cache hits.
    grid = [
        RunRequest(workload=w, design=d)
        for w in ("xlisp", "compress")
        for d in ("T4", "M8", "PB2")
    ]
    opts = EvalOptions(jobs=4, store=ResultStore(), artifacts=ArtifactStore())
    results = run_many(grid, opts)
    print({r.name: round(r.ipc, 3) for r in results})

    # Or point the same call at a running `python -m repro.serve`
    # daemon (see docs/serving.md) — results are bit-identical:
    results = run_many(grid, EvalOptions(server="unix:/tmp/serve.sock"))

Packages
--------
``repro.isa``        mini MIPS-like ISA, program builder, register allocator
``repro.mem``        sparse memory, page table, address-space layout
``repro.func``       functional simulator (dynamic instruction stream)
``repro.branch``     GAp branch predictor and friends
``repro.caches``     set-associative caches, MSHRs
``repro.tlb``        the paper's address-translation designs (Table 2)
``repro.engine``     cycle-level 8-way in-order/out-of-order machine
``repro.workloads``  the ten synthetic benchmarks
``repro.eval``       experiment drivers for every table and figure
``repro.serve``      long-running evaluation daemon over the stores
"""

from repro.engine import Machine, MachineConfig, SimulationResult
from repro.eval.artifacts import ArtifactStore
from repro.eval.options import EvalOptions
from repro.eval.parallel import run_many
from repro.eval.resultstore import ResultStore
from repro.eval.runner import RunRequest, RunResult, run_one
from repro.tlb import DESIGN_MNEMONICS, make_mechanism
from repro.workloads import iter_workload_names, make_workload

__version__ = "1.1.0"

__all__ = [
    "ArtifactStore",
    "DESIGN_MNEMONICS",
    "EvalOptions",
    "Machine",
    "MachineConfig",
    "ResultStore",
    "RunRequest",
    "RunResult",
    "SimulationResult",
    "__version__",
    "iter_workload_names",
    "make_mechanism",
    "make_workload",
    "run_many",
    "run_one",
]
