"""The specialized timing kernel: replay encoded-trace arrays.

:class:`KernelMachine` produces the exact :class:`MachineStats` of
:class:`repro.engine.machine.Machine` — bit-identical, gated by
``repro.check.diff`` — but replays the flat per-instruction arrays of
:class:`repro.kernel.encode.EncodedTrace` instead of interpreting the
``DynInst``/``DecodedInst``/``_InFlight`` object graph.  The wins over
the interpreted engine:

* no per-instruction window-entry allocation: the reorder buffer is a
  fixed pool of slot indices over parallel state lists, recycled
  through a free list;
* operand producers are precomputed trace indices (the dynamic trace is
  timing-invariant, so the last writer of every register at every trace
  position is a build-time constant) — dispatch does no register
  bookkeeping at all;
* the fetch queue is two integers: fetch-plan groups are consecutive
  trace slices, so the queue contents are always the contiguous range
  ``[qhead, qtail)``;
* the per-cycle loop, commit, issue and dispatch phases are inlined
  into one function whose state lives in locals and closure cells, not
  attribute lookups.

Slot recycling is safe because of three invariants, each load-bearing:

* ``dyn_complete[i]`` (the completion cycle of trace instruction ``i``,
  ``-1`` while unknown) is written at every site that learns a
  completion, so consumers can read a producer's completion *value*
  even after the producer committed and its slot was reused — the
  interpreted engine gets this for free by keeping ``_InFlight``
  objects alive through tuples;
* ``dyn_slot[i]`` (the window slot of trace instruction ``i``) is only
  consulted under ``dyn_complete[i] < 0``, which implies the producer
  is still in the window, so the mapping needs no invalidation;
* every lazily-purged container that can outlive its entries (the wake
  heap, the unissued-store heap, the in-order issued-incomplete list,
  piggyback rider lists) stores ``(seq, slot)`` pairs and drops records
  whose slot no longer carries that seq — sequence numbers are monotone
  and never reused.  The unissued scan list is instead purged eagerly
  at squash (the only event that kills entries), which the interpreted
  engine's lazy dead-dropping makes unobservable.
"""

from __future__ import annotations

import time
from bisect import insort
from collections import deque
from dataclasses import replace
from heapq import heappop, heappush
from typing import Sequence

from repro.caches.cache import SetAssocCache
from repro.caches.mshr import MSHRFile
from repro.caches.replacement import XorShift32
from repro.engine.config import MachineConfig
from repro.engine.frontend import FetchPlan, build_fetch_plan
from repro.engine.machine import (
    SimulationResult,
    _WP_ALU,
    _WP_LOAD,
    _WP_STORE,
)
from repro.engine.funits import FunctionalUnitPool
from repro.engine.pipeview import InstTimeline
from repro.engine.stats import MachineStats
from repro.func.dyninst import OPCLASS_INDEX, DynInst
from repro.kernel.encode import EncodedTrace, encode_trace_arrays
from repro.tlb.base import NEVER, TranslationMechanism
from repro.tlb.request import TranslationRequest


def _plan_arrays(plan: FetchPlan) -> tuple:
    """Flatten a fetch plan's event stream into parallel replay arrays.

    Cached on the plan (``kernel_events``) so the thirteen designs of a
    grid sharing one plan convert it once.
    """
    cached = plan.kernel_events
    if cached is not None:
        return cached
    kind = []
    count = []
    branches = []
    jumps = []
    mp = []
    for ev in plan.events:
        if ev.__class__ is int:
            kind.append(ev)
            count.append(0)
            branches.append(0)
            jumps.append(0)
            mp.append(0)
        else:
            group, b, j = ev
            kind.append(2)
            count.append(len(group.insts))
            branches.append(b)
            jumps.append(j)
            mp.append(1 if group.mispredicted_tail else 0)
    arrays = (kind, count, branches, jumps, mp)
    plan.kernel_events = arrays
    return arrays


class KernelMachine:
    """Replays an :class:`EncodedTrace` under one machine configuration.

    Drop-in for :class:`repro.engine.machine.Machine` at the
    :func:`repro.eval.runner.simulate` level: same constructor shape
    (plus the ``encoded`` arrays), same :class:`SimulationResult`.
    ``config.sanity`` is not supported here — the runner falls back to
    the interpreted engine, whose invariant checker needs the object
    graph this kernel exists to avoid.
    """

    def __init__(
        self,
        config: MachineConfig,
        mechanism: TranslationMechanism,
        trace: Sequence[DynInst],
        encoded: EncodedTrace | None = None,
        name: str = "run",
        profiler=None,
        fetch_plan: FetchPlan | None = None,
        timeline_limit: int = 0,
    ):
        if mechanism.page_shift != config.page_shift:
            raise ValueError(
                f"mechanism page shift {mechanism.page_shift} != "
                f"machine page shift {config.page_shift}"
            )
        if config.sanity:
            raise ValueError(
                "KernelMachine does not support sanity checking; "
                "use the interpreted Machine (runner.simulate does)"
            )
        trace = trace if isinstance(trace, list) else list(trace)
        if encoded is None:
            encoded = encode_trace_arrays(trace)
        if encoded.n != len(trace):
            raise ValueError(
                f"encoded arrays cover {encoded.n} instructions; "
                f"trace has {len(trace)}"
            )
        self.config = config
        self.mech = mechanism
        self.name = name
        self.trace = trace
        self.encoded = encoded
        self.stats = MachineStats()
        self.dcache = SetAssocCache(
            config.dcache_size, config.dcache_assoc, config.dcache_block
        )
        self.mshr = MSHRFile(config.dcache_mshrs)
        if fetch_plan is None:
            fetch_plan = build_fetch_plan(trace, config)
        self.plan = fetch_plan
        self.fupool = FunctionalUnitPool(config)
        self.profiler = profiler
        #: Captured stage timelines (seq -> InstTimeline) for the first
        #: ``timeline_limit`` window entries; used by the differential
        #: harness to render divergence excerpts against the
        #: interpreted engine's pipeview.
        self.timeline_limit = timeline_limit
        self.timelines: dict[int, InstTimeline] = {}
        #: Host-side event-driven diagnostics (never part of stats).
        self.skipped_cycles = 0
        self.skip_jumps = 0

    # The whole simulation is one function: every phase of the cycle
    # loop is either inlined or a closure over shared local state, so
    # the hot path never touches ``self``.
    def run(self) -> SimulationResult:  # noqa: C901 - deliberately monolithic
        config = self.config
        mech = self.mech
        enc = self.encoded
        trace = self.trace
        stats = self.stats
        prof = self.profiler
        profiling = prof is not None
        pns = time.perf_counter_ns
        if profiling:
            started = time.perf_counter()

        # -- per-run constants ------------------------------------------------
        fetch_width = config.fetch_width
        issue_width = config.issue_width
        commit_width = config.commit_width
        rob = config.rob_entries
        lsq = config.lsq_entries
        tlb_miss_latency = config.tlb_miss_latency
        icache_miss_latency = config.icache_miss_latency
        dcache_miss_latency = config.dcache_miss_latency
        mispredict_penalty = config.mispredict_penalty
        model_wrong_path = config.model_wrong_path
        wp_load_pct = config.wrong_path_load_pct
        wp_load_store_pct = wp_load_pct + config.wrong_path_store_pct
        cs_interval = config.context_switch_interval
        max_cycles = config.max_cycles
        event_driven = config.event_driven
        inorder = config.issue_model == "inorder"
        track_stores = not inorder
        ldst_latency = config.fu_specs["ldst"].latency
        page_shift = config.page_shift
        wp_budget = max(1, fetch_width // 2)

        dcache = self.dcache
        dcache_access = dcache.access
        dcache_probe = dcache.probe
        dcache_block_of = dcache.block_of
        dshift = dcache.block_shift
        mshr = self.mshr
        mshr_pending = mshr._pending
        mshr_expire = mshr.expire
        mshr_allocate = mshr.allocate
        mshr_lookup = mshr.lookup
        mshr_full = mshr.full
        mshr_next_completion = mshr.next_completion
        fupool_release = self.fupool.next_busy_release
        mech_flush = mech.flush
        mech_tick = mech.tick
        mech_quiet_until = mech.quiescent_until
        mech_request = mech.request
        mech_on_register_write = mech.on_register_write
        needs_reg_events = mech.needs_register_events
        if profiling:
            mech_tick = prof.wrap("mech_tick", mech_tick)

        fu_map: list = [None] * len(OPCLASS_INDEX)
        for oc, triple in self.fupool.class_map().items():
            fu_map[OPCLASS_INDEX[oc]] = triple

        # -- encoded trace arrays --------------------------------------------
        t_flags = enc.flags
        t_ea1 = enc.ea1
        t_off = enc.off
        t_d1 = enc.d1
        t_d2 = enc.d2
        t_a0 = enc.a0
        t_a1 = enc.a1
        t_dd = enc.dd
        t_fut = [fu_map[i] for i in enc.fu]
        t_base = [(b - 1) if b else None for b in enc.base1]
        n_insts = enc.n
        #: One row tuple per trace index so the dispatch loop pays a
        #: single indexed load + unpack instead of ten list subscripts.
        t_row = list(
            zip(t_flags, t_fut, t_d1, t_d2, t_a0, t_a1, t_dd, t_ea1, t_base, t_off)
        )

        # -- fetch-plan replay state ------------------------------------------
        ev_kind, ev_count, ev_branches, ev_jumps, ev_mp = _plan_arrays(self.plan)
        n_ev = len(ev_kind)
        ei = 0
        fe_waiting = False
        fe_resume = -1  # -1 = unresolved (FrontEnd.resume_cycle None)
        fe_blocked = 0
        qhead = 0
        qtail = 0
        #: Trace index of the pending mispredicted group tail (-1 none).
        #: A scalar suffices: the tail must dispatch, issue and resolve
        #: before fetch unblocks, so at most one is ever outstanding.
        pending_mp = -1

        # -- window slot pool -------------------------------------------------
        s_dyn = [-1] * rob  # trace index (-1 = wrong-path synthetic)
        s_seq = [-1] * rob
        s_ea = [0] * rob
        s_base = [None] * rob
        s_off = [0] * rob
        s_load = [False] * rob
        s_store = [False] * rob
        s_mem = [False] * rob
        s_fu = [None] * rob  # (free_at, busy, latency) triple
        s_issued = [False] * rob
        s_icyc = [-1] * rob
        s_done = [-1] * rob  # completion cycle (-1 = unknown)
        s_cdone = [0] * rob  # cache-path completion (loads)
        s_tdone = [-1] * rob  # translation-available cycle (-1 = unknown)
        s_tbase = [-1] * rob
        s_tlbw = [False] * rob  # awaiting the 30-cycle miss service
        s_dhost = [-1] * rob  # piggyback host seq (-1 = none)
        s_mp = [False] * rob
        s_wp = [False] * rob
        s_dead = [False] * rob
        s_stall = [0] * rob
        s_wait = [None] * rob  # slots parked on this one's completion
        s_a0 = [-1] * rob  # surviving producer trace indices
        s_a1 = [-1] * rob
        s_dd = [-1] * rob
        s_d1 = [0] * rob  # destination registers + 1
        s_d2 = [0] * rob
        free = list(range(rob - 1, -1, -1))
        seq_of = s_seq.__getitem__

        # -- cross-instruction replay state -----------------------------------
        dyn_complete = [-1] * n_insts
        dyn_slot = [0] * n_insts
        window: deque[int] = deque()
        by_seq: dict[int, int] = {}
        riders: dict[int, list] = {}
        blockers: set[int] = set()
        stores_awaiting: list[int] = []
        unissued: list[int] = []
        issued_incomplete: list[tuple] = []
        wake: list[tuple] = []
        store_seqs: list[tuple] = []
        fwd_stores: dict[int, list] = {}
        recent_eas: deque[int] = deque(maxlen=16)
        rng_below = XorShift32(0x57A7).below
        wp_fu = (
            fu_map[_WP_ALU.fu_index],
            fu_map[_WP_LOAD.fu_index],
            fu_map[_WP_STORE.fu_index],
        )
        wp_text = (
            str(_WP_ALU.inst),
            str(_WP_LOAD.inst),
            str(_WP_STORE.inst),
        )
        next_seq = 0
        wpb_slot = -1
        wpb_seq = -1
        lsq_count = 0
        issue_next_try = 0
        mech_quiet = 0
        mshr_next = 0
        next_flush = cs_interval if cs_interval else 0
        mem_issues = 0

        # -- stats accumulators ----------------------------------------------
        st_committed = 0
        st_issued = 0
        st_loads = 0
        st_stores = 0
        st_branches = 0
        st_mispredicts = 0
        st_jumps = 0
        st_tlb_services = 0
        st_tlb_dstall = 0
        st_fe_stall = 0
        st_fwd = 0
        st_itlb = 0
        st_ctx = 0
        demand = stats.translation_demand
        skipped_total = 0
        jump_count = 0
        ns_commit = n_commit = 0
        ns_issue = n_issue = 0
        ns_dispatch = n_dispatch = 0

        tl_limit = self.timeline_limit
        timelines = self.timelines if tl_limit else None

        # -- phase closures ---------------------------------------------------

        def set_complete(slot: int, complete: int) -> None:
            """Record a completion and wake anything parked on it."""
            nonlocal issue_next_try
            d = s_dyn[slot]
            if d >= 0:
                dyn_complete[d] = complete
            s_done[slot] = complete
            ws = s_wait[slot]
            if ws is not None:
                s_wait[slot] = None
                for e in ws:
                    if s_stall[e] > complete:
                        s_stall[e] = complete
                    if track_stores and not s_issued[e] and not s_dead[e]:
                        heappush(wake, (complete, s_seq[e], e))
                if complete < issue_next_try:
                    issue_next_try = complete

        def try_complete_store(slot: int) -> None:
            """A store completes when address, translation, data are in."""
            icyc = s_icyc[slot]
            data_ready = icyc
            dd = s_dd[slot]
            if dd >= 0:
                c = dyn_complete[dd]
                if c < 0:
                    # Data producer not yet scheduled: park on it.
                    ps = dyn_slot[dd]
                    ws = s_wait[ps]
                    if ws is None:
                        s_wait[ps] = [slot]
                    else:
                        ws.append(slot)
                    s_stall[slot] = NEVER
                    stores_awaiting.append(slot)
                    return
                if c > data_ready:
                    data_ready = c
            complete = icyc + 1
            td1 = s_tdone[slot] + 1
            if td1 > complete:
                complete = td1
            if data_ready > complete:
                complete = data_ready
            set_complete(slot, complete)

        def finalize_mem(slot: int) -> None:
            """Set completion once cache path and translation are known."""
            td = s_tdone[slot]
            if td < 0:
                return
            if s_load[slot]:
                set_complete(slot, s_cdone[slot] + td - s_icyc[slot])
            else:
                try_complete_store(slot)

        def complete_stores() -> bool:
            nonlocal stores_awaiting
            pending = stores_awaiting
            for slot in pending:
                if s_stall[slot] != NEVER:
                    break
            else:
                return False  # every parked store's producer still unknown
            stores_awaiting = []
            completed = False
            for slot in pending:
                if s_done[slot] < 0:
                    if s_stall[slot] == NEVER:
                        stores_awaiting.append(slot)
                        continue
                    try_complete_store(slot)
                    if s_done[slot] >= 0:
                        completed = True
            return completed

        def complete_riders(slot: int) -> None:
            lst = riders.pop(s_seq[slot], None)
            if lst:
                td = s_tdone[slot]
                for rseq, rs in lst:
                    if s_seq[rs] != rseq:
                        continue  # rider squashed and slot recycled
                    s_tdone[rs] = td
                    s_tlbw[rs] = False
                    finalize_mem(rs)

        def apply_translation(result, now: int) -> None:
            slot = by_seq.get(result.req.seq)
            if slot is None:
                return  # request outlived its instruction
            if result.tlb_miss:
                s_tlbw[slot] = True
                s_tbase[slot] = result.ready
                dep = result.depends_on
                blockers.add(result.req.seq)
                if dep is not None:
                    s_dhost[slot] = dep
                    hslot = by_seq.get(dep)
                    if hslot is not None and s_tdone[hslot] < 0:
                        lst = riders.get(dep)
                        rec = (s_seq[slot], slot)
                        if lst is None:
                            riders[dep] = [rec]
                        else:
                            lst.append(rec)
                    else:
                        # Host already serviced (or gone): ride its result.
                        if hslot is not None:
                            done = s_tdone[hslot]
                        else:
                            done = now if now > result.ready else result.ready
                        s_tdone[slot] = done
                        s_tlbw[slot] = False
                        finalize_mem(slot)
                else:
                    s_dhost[slot] = -1
            else:
                s_tdone[slot] = result.ready
                finalize_mem(slot)

        def issue_memory(slot: int, now: int) -> None:
            nonlocal mem_issues, mech_quiet, mshr_next, st_fwd
            ea = s_ea[slot]
            mem_issues += 1
            if not s_wp[slot]:
                recent_eas.append(ea)
            is_store = s_store[slot]
            if is_store:
                word = ea & ~3
                lst = fwd_stores.get(word)
                if lst is None:
                    fwd_stores[word] = [slot]
                else:
                    lst.append(slot)
            is_load = s_load[slot]
            if is_load:
                # Store-to-load forwarding: youngest earlier issued
                # store to the same word whose data is already complete.
                fwd = -1
                candidates = fwd_stores.get(ea & ~3)
                if candidates:
                    seq = s_seq[slot]
                    best_seq = -1
                    for cand in candidates:
                        s = s_seq[cand]
                        if best_seq < s < seq:
                            fwd = cand
                            best_seq = s
                    if fwd >= 0:
                        dd = s_dd[fwd]
                        if dd >= 0:
                            c = dyn_complete[dd]
                            if c < 0 or c > now:
                                fwd = -1
                if fwd >= 0:
                    st_fwd += 1
                    s_cdone[slot] = now + 1
                elif dcache_access(ea):
                    s_cdone[slot] = now + ldst_latency
                else:
                    mshr_expire(now)
                    fill_done = mshr_allocate(
                        dcache_block_of(ea), now, dcache_miss_latency
                    )
                    if fill_done < mshr_next:
                        mshr_next = fill_done
                    s_cdone[slot] = fill_done + ldst_latency
            result = mech_request(
                TranslationRequest(
                    s_seq[slot],
                    ea >> page_shift,
                    now,
                    is_store,
                    is_load,
                    s_base[slot],
                    s_off[slot],
                )
            )
            # The request may have queued port work: the mechanism's
            # quiescent bound no longer holds.
            mech_quiet = 0
            if result is not None:
                apply_translation(result, now)

        def do_issue(slot: int, now: int) -> None:
            nonlocal fe_resume
            fu = s_fu[slot]
            free_at = fu[0]
            for i, cycle in enumerate(free_at):
                if cycle <= now:
                    free_at[i] = now + fu[1]
                    break
            s_issued[slot] = True
            s_icyc[slot] = now
            if timelines is not None:
                t = timelines.get(s_seq[slot])
                if t is not None:
                    t.issue = now
            if s_mem[slot]:
                issue_memory(slot, now)
            else:
                ready = now + fu[2]
                if s_wait[slot] is None:
                    s_done[slot] = ready
                    d = s_dyn[slot]
                    if d >= 0:
                        dyn_complete[d] = ready
                else:
                    set_complete(slot, ready)
                if s_mp[slot]:
                    # Branch resolves at completion; fetch resumes after
                    # the misprediction penalty.
                    fe_resume = ready + mispredict_penalty

        def squash(now: int) -> bool:
            """Squash the wrong-path tail once its branch has resolved."""
            nonlocal wpb_slot, lsq_count, issue_next_try, unissued
            bslot = wpb_slot
            if s_seq[bslot] != wpb_seq:
                wpb_slot = -1  # unreachable: the branch cannot leave the
                return False  # window before this squash fires
            c = s_done[bslot]
            if c < 0 or c > now:
                return False
            wpb_slot = -1
            squashed = False
            while window and s_wp[window[-1]]:
                slot = window.pop()
                squashed = True
                s_dead[slot] = True
                if s_mem[slot]:
                    lsq_count -= 1
                    if s_store[slot] and s_issued[slot]:
                        fwd_stores[s_ea[slot] & ~3].remove(slot)
                sq = s_seq[slot]
                blockers.discard(sq)
                by_seq.pop(sq, None)
                # A correct-path rider piggybacked on a squashed host
                # would otherwise wait forever; complete it now.
                lst = riders.pop(sq, None)
                if lst:
                    for rseq, rs in lst:
                        if s_seq[rs] == rseq and s_tdone[rs] < 0:
                            s_tdone[rs] = now
                            s_tlbw[rs] = False
                            finalize_mem(rs)
                free.append(slot)
            if squashed:
                # Eager purge: freed slots must not linger in the scan
                # list (the interpreted engine drops them lazily, which
                # is unobservable — the live sequence is identical).
                unissued = [s for s in unissued if not s_dead[s]]
                issue_next_try = 0
            return squashed

        def service_tlb(now: int) -> bool:
            """Start the 30-cycle walk once the misser is oldest incomplete."""
            nonlocal st_tlb_services
            for slot in window:
                c = s_done[slot]
                if 0 <= c <= now:
                    continue
                # ``slot`` is the oldest incomplete instruction.
                if s_tlbw[slot] and s_dhost[slot] < 0 and not s_wp[slot]:
                    tb = s_tbase[slot]
                    s_tdone[slot] = (now if now > tb else tb) + tlb_miss_latency
                    s_tlbw[slot] = False
                    st_tlb_services += 1
                    finalize_mem(slot)
                    complete_riders(slot)
                    return True
                break
            return False

        def dispatch_wp(now: int) -> int:
            """Fill dispatch slots with synthetic wrong-path instructions."""
            nonlocal next_seq, lsq_count
            count = 0
            while count < wp_budget and len(window) < rob:
                roll = rng_below(100)
                if roll < wp_load_pct and recent_eas:
                    kind = 1
                elif roll < wp_load_store_pct and recent_eas:
                    kind = 2
                else:
                    kind = 0
                if kind and lsq_count >= lsq:
                    kind = 0
                slot = free.pop()
                seq = next_seq
                next_seq += 1
                s_dyn[slot] = -1
                s_seq[slot] = seq
                s_load[slot] = kind == 1
                s_store[slot] = kind == 2
                s_mem[slot] = kind != 0
                s_fu[slot] = wp_fu[kind]
                s_issued[slot] = False
                s_done[slot] = -1
                s_tdone[slot] = -1
                s_tlbw[slot] = False
                s_dhost[slot] = -1
                s_mp[slot] = False
                s_wp[slot] = True
                s_dead[slot] = False
                s_stall[slot] = 0
                s_wait[slot] = None
                s_a0[slot] = -1
                s_a1[slot] = -1
                s_dd[slot] = -1
                if inorder:
                    s_d1[slot] = 0
                    s_d2[slot] = 0
                s_base[slot] = None
                s_off[slot] = 0
                if kind:
                    # Wrong paths touch data near what the code just
                    # touched: a recent address perturbed in its page.
                    base = recent_eas[rng_below(len(recent_eas))]
                    s_ea[slot] = (base & ~0xFF) + 4 * rng_below(64)
                    lsq_count += 1
                    if kind == 2 and track_stores:
                        heappush(store_seqs, (seq, slot))
                window.append(slot)
                by_seq[seq] = slot
                unissued.append(slot)
                count += 1
                if timelines is not None and seq < tl_limit:
                    timelines[seq] = InstTimeline(
                        seq=seq, text=wp_text[kind], dispatch=now
                    )
            return count

        def next_event(now: int) -> int:
            """Earliest cycle after ``now`` at which any phase could act."""
            nxt = next_flush or NEVER
            for slot in window:
                c = s_done[slot]
                if c >= 0 and now < c < nxt:
                    nxt = c
            quiet = mech_quiet_until(now)
            if quiet < nxt:
                nxt = quiet
            if unissued or wake:
                fill = mshr_next_completion(now)
                if fill < nxt:
                    nxt = fill
                release = fupool_release(now)
                if release < nxt:
                    nxt = release
            if not blockers and qtail - qhead <= fetch_width:
                if fe_waiting:
                    if 0 <= fe_resume < nxt:
                        nxt = fe_resume
                elif now < fe_blocked < nxt:
                    nxt = fe_blocked
            return nxt

        if profiling:
            complete_stores = prof.wrap("stores", complete_stores)
            squash = prof.wrap("squash", squash)
            service_tlb = prof.wrap("tlb_service", service_tlb)
            next_event = prof.wrap("next_event", next_event)
            mshr_expire_timed = prof.wrap("mshr_expire", mshr_expire)
        else:
            mshr_expire_timed = mshr_expire

        # -- the cycle loop ---------------------------------------------------
        now = 0
        while True:
            did_work = False
            if next_flush and now >= next_flush:
                # Context switch: all cached translations invalidated.
                mech_flush()
                st_ctx += 1
                next_flush = now + cs_interval
                mech_quiet = 0
                did_work = True
            if wpb_slot >= 0 and squash(now):
                did_work = True
            if window:
                head = window[0]
                hc = s_done[head]
                if 0 <= hc <= now:
                    # ---- commit (inline) ----
                    if profiling:
                        t0 = pns()
                    count = 0
                    loads = 0
                    stores = 0
                    while count < commit_width:
                        head = window[0]
                        c = s_done[head]
                        if c < 0 or c > now:
                            break
                        window.popleft()
                        count += 1
                        if s_mem[head]:
                            lsq_count -= 1
                            if s_store[head]:
                                stores += 1
                                ea = s_ea[head]
                                # Committed stores write the data cache.
                                dcache_access(ea, write=True)
                                fwd_stores[ea & ~3].remove(head)
                            else:
                                loads += 1
                        sq = s_seq[head]
                        if blockers:
                            blockers.discard(sq)
                        by_seq.pop(sq, None)
                        free.append(head)
                        if timelines is not None:
                            t = timelines.get(sq)
                            if t is not None:
                                t.commit = now
                                t.complete = c
                        if not window:
                            break
                    st_committed += count
                    st_loads += loads
                    st_stores += stores
                    if count:
                        did_work = True
                    if profiling:
                        ns_commit += pns() - t0
                        n_commit += 1
            if mshr_pending and now >= mshr_next:
                mshr_expire_timed(now)
                mshr_next = mshr_next_completion(now)
            if stores_awaiting and complete_stores():
                did_work = True
            if blockers and service_tlb(now):
                did_work = True
            if now >= issue_next_try:
                # ---- issue (inline) ----
                if profiling:
                    t0 = pns()
                if wake and wake[0][0] <= now:
                    # Re-admit entries whose stall bound arrived, in seq
                    # order; stale records for gone entries drop.
                    while wake and wake[0][0] <= now:
                        rec = heappop(wake)
                        rslot = rec[2]
                        if (
                            s_seq[rslot] == rec[1]
                            and not s_issued[rslot]
                            and not s_dead[rslot]
                        ):
                            insort(unissued, rslot, key=seq_of)
                mem_issues = 0
                if not unissued:
                    issue_next_try = wake[0][0] if wake else NEVER
                else:
                    issued = 0
                    now1 = now + 1
                    next_try = NEVER
                    retained = None
                    n = len(unissued)
                    if inorder:
                        # No renaming: WAW hazards against every issued
                        # instruction whose result is still in flight.
                        pending: dict = {}
                        live: list = []
                        for rec in issued_incomplete:
                            rs = rec[1]
                            if s_seq[rs] != rec[0] or s_dead[rs]:
                                continue
                            c = s_done[rs]
                            if c < 0 or c > now:
                                live.append(rec)
                                d = s_d1[rs]
                                if d:
                                    pending[d] = rs
                                    d = s_d2[rs]
                                    if d:
                                        pending[d] = rs
                        issued_incomplete = live
                        for i in range(n):
                            slot = unissued[i]
                            if s_dead[slot]:
                                if retained is None:
                                    retained = unissued[:i]
                                continue
                            if issued >= issue_width:
                                if retained is not None:
                                    retained.extend(unissued[i:])
                                next_try = now1
                                break
                            s = s_stall[slot]
                            if s > now:
                                if retained is not None:
                                    retained.extend(unissued[i:])
                                next_try = s
                                break
                            parked = False
                            bound = -1
                            p = s_a0[slot]
                            if p >= 0:
                                c = dyn_complete[p]
                                if c < 0:
                                    ps = dyn_slot[p]
                                    ws = s_wait[ps]
                                    if ws is None:
                                        s_wait[ps] = [slot]
                                    else:
                                        ws.append(slot)
                                    s_stall[slot] = NEVER
                                    parked = True
                                elif c > now:
                                    s_stall[slot] = bound = c
                                else:
                                    s_a0[slot] = -1  # satisfied for good
                            if not parked and bound < 0:
                                p = s_a1[slot]
                                if p >= 0:
                                    c = dyn_complete[p]
                                    if c < 0:
                                        ps = dyn_slot[p]
                                        ws = s_wait[ps]
                                        if ws is None:
                                            s_wait[ps] = [slot]
                                        else:
                                            ws.append(slot)
                                        s_stall[slot] = NEVER
                                        parked = True
                                    elif c > now:
                                        s_stall[slot] = bound = c
                                    else:
                                        s_a1[slot] = -1
                            if not parked and bound < 0:
                                # The in-order model stalls on the store
                                # data hazard too.
                                p = s_dd[slot]
                                if p >= 0:
                                    c = dyn_complete[p]
                                    if c < 0:
                                        ps = dyn_slot[p]
                                        ws = s_wait[ps]
                                        if ws is None:
                                            s_wait[ps] = [slot]
                                        else:
                                            ws.append(slot)
                                        s_stall[slot] = NEVER
                                        parked = True
                                    elif c > now:
                                        s_stall[slot] = bound = c
                            if not parked and bound < 0:
                                # WAW against an incomplete earlier writer.
                                d = s_d1[slot]
                                w = pending.get(d, -1) if d else -1
                                if w < 0:
                                    d = s_d2[slot]
                                    if d:
                                        w = pending.get(d, -1)
                                if w >= 0:
                                    c = s_done[w]
                                    if c < 0:
                                        ws = s_wait[w]
                                        if ws is None:
                                            s_wait[w] = [slot]
                                        else:
                                            ws.append(slot)
                                        s_stall[slot] = NEVER
                                        parked = True
                                    else:
                                        s_stall[slot] = bound = c
                            if not parked and bound < 0:
                                free_at = s_fu[slot][0]
                                ok = False
                                for fa in free_at:
                                    if fa <= now:
                                        ok = True
                                        break
                                if not ok:
                                    s_stall[slot] = bound = min(free_at)
                            if not parked and bound < 0 and s_load[slot]:
                                # Structural: a missing load needs an MSHR.
                                ea = s_ea[slot]
                                if (
                                    not dcache_probe(ea)
                                    and mshr_lookup(ea >> dshift) is None
                                    and mshr_full()
                                ):
                                    bound = now1  # never cached: see below
                            if parked or bound >= 0:
                                # The blocked head stalls everything
                                # behind it.
                                if retained is not None:
                                    retained.extend(unissued[i:])
                                if bound >= 0:
                                    next_try = bound
                                break
                            do_issue(slot, now)
                            issued += 1
                            if retained is None:
                                retained = unissued[:i]
                            c = s_done[slot]
                            if c < 0 or c > now:
                                live.append((s_seq[slot], slot))
                                d = s_d1[slot]
                                if d:
                                    pending[d] = slot
                                    d = s_d2[slot]
                                    if d:
                                        pending[d] = slot
                    else:
                        # Oldest live unissued store: any younger load is
                        # blocked on its still-unknown address.  Tops go
                        # stale only when a store issues (squash/commit
                        # never run mid-pass), so clean the heap once
                        # here and again after each store issue instead
                        # of on every blocked-load visit.
                        while store_seqs:
                            top = store_seqs[0]
                            ts = top[1]
                            if s_seq[ts] != top[0] or s_issued[ts] or s_dead[ts]:
                                heappop(store_seqs)
                            else:
                                break
                        block_seq = store_seqs[0][0] if store_seqs else NEVER
                        for i in range(n):
                            slot = unissued[i]
                            if s_dead[slot]:
                                if retained is None:
                                    retained = unissued[:i]
                                continue
                            if issued >= issue_width:
                                if retained is not None:
                                    retained.extend(unissued[i:])
                                next_try = now1
                                break
                            if s_load[slot] and block_seq < s_seq[slot]:
                                # An earlier unissued store means its
                                # address is still unknown.
                                if retained is not None:
                                    retained.append(slot)
                                continue
                            deferred = False
                            p = s_a0[slot]
                            if p >= 0:
                                c = dyn_complete[p]
                                if c < 0:
                                    # Producer completion unknown: park.
                                    ps = dyn_slot[p]
                                    ws = s_wait[ps]
                                    if ws is None:
                                        s_wait[ps] = [slot]
                                    else:
                                        ws.append(slot)
                                    deferred = True
                                elif c > now:
                                    heappush(wake, (c, s_seq[slot], slot))
                                    deferred = True
                                else:
                                    s_a0[slot] = -1
                            if not deferred:
                                p = s_a1[slot]
                                if p >= 0:
                                    c = dyn_complete[p]
                                    if c < 0:
                                        ps = dyn_slot[p]
                                        ws = s_wait[ps]
                                        if ws is None:
                                            s_wait[ps] = [slot]
                                        else:
                                            ws.append(slot)
                                        deferred = True
                                    elif c > now:
                                        heappush(wake, (c, s_seq[slot], slot))
                                        deferred = True
                                    else:
                                        s_a1[slot] = -1
                            fu = None
                            if not deferred:
                                fu = s_fu[slot]
                                free_at = fu[0]
                                fui = -1
                                for j, fa in enumerate(free_at):
                                    if fa <= now:
                                        fui = j
                                        break
                                if fui < 0:
                                    heappush(
                                        wake, (min(free_at), s_seq[slot], slot)
                                    )
                                    deferred = True
                            if deferred:
                                # Out of the scan list until the wake
                                # record (or waiter drain) re-admits it.
                                if retained is None:
                                    retained = unissued[:i]
                                continue
                            if s_load[slot]:
                                # Structural: a missing load needs an
                                # MSHR.  Never cached as a bound: a
                                # commit-time store write-allocate can
                                # flip the probe to a hit any cycle.
                                ea = s_ea[slot]
                                if (
                                    not dcache_probe(ea)
                                    and mshr_lookup(ea >> dshift) is None
                                    and mshr_full()
                                ):
                                    if now1 < next_try:
                                        next_try = now1
                                    if retained is not None:
                                        retained.append(slot)
                                    continue
                            # ---- do_issue, inlined (the hot path) ----
                            free_at[fui] = now + fu[1]
                            s_issued[slot] = True
                            s_icyc[slot] = now
                            if timelines is not None:
                                t = timelines.get(s_seq[slot])
                                if t is not None:
                                    t.issue = now
                            if s_mem[slot]:
                                issue_memory(slot, now)
                                if s_store[slot]:
                                    # The oldest-store bound may advance.
                                    while store_seqs:
                                        top = store_seqs[0]
                                        ts = top[1]
                                        if (
                                            s_seq[ts] != top[0]
                                            or s_issued[ts]
                                            or s_dead[ts]
                                        ):
                                            heappop(store_seqs)
                                        else:
                                            break
                                    block_seq = (
                                        store_seqs[0][0] if store_seqs else NEVER
                                    )
                            else:
                                ready = now + fu[2]
                                if s_wait[slot] is None:
                                    s_done[slot] = ready
                                    d = s_dyn[slot]
                                    if d >= 0:
                                        dyn_complete[d] = ready
                                else:
                                    set_complete(slot, ready)
                                if s_mp[slot]:
                                    # Branch resolves at completion; fetch
                                    # resumes after the penalty.
                                    fe_resume = ready + mispredict_penalty
                            issued += 1
                            if retained is None:
                                retained = unissued[:i]
                    if retained is not None:
                        unissued = retained
                    if wake and wake[0][0] < next_try:
                        next_try = wake[0][0]
                    issue_next_try = next_try
                    st_issued += issued
                    if issued:
                        did_work = True
                    if mem_issues:
                        # Histogram of simultaneous translation requests
                        # per cycle (the paper's Section 2 evidence).
                        demand[mem_issues] = demand.get(mem_issues, 0) + 1
                if profiling:
                    ns_issue += pns() - t0
                    n_issue += 1
            if now >= mech_quiet:
                results = mech_tick(now)
                if results:
                    did_work = True
                    for result in results:
                        apply_translation(result, now)
                else:
                    mech_quiet = mech_quiet_until(now)
            # ---- dispatch / fetch (inline) ----
            if profiling:
                t0 = pns()
            if blockers:
                st_tlb_dstall += 1
            else:
                fetched = False
                count = 0
                if qtail - qhead <= fetch_width:
                    # FrontEnd.fetch_group replay.
                    deliver = True
                    if fe_waiting:
                        if fe_resume < 0 or now < fe_resume:
                            st_fe_stall += 1
                            deliver = False
                        else:
                            fe_waiting = False
                            fe_resume = -1
                    if deliver and now < fe_blocked:
                        st_fe_stall += 1
                        deliver = False
                    if deliver and ei < n_ev:
                        k = ev_kind[ei]
                        if k == 2:
                            b = ev_branches[ei]
                            if b:
                                st_branches += b
                                if ev_mp[ei]:
                                    st_mispredicts += 1
                            j = ev_jumps[ei]
                            if j:
                                st_jumps += j
                            qtail += ev_count[ei]
                            fetched = True
                            if ev_mp[ei]:
                                pending_mp = qtail - 1
                                fe_waiting = True
                                fe_resume = -1
                        else:
                            if k == 1:
                                st_itlb += 1
                                fe_blocked = now + tlb_miss_latency
                            else:
                                fe_blocked = now + icache_miss_latency
                            st_fe_stall += 1
                        ei += 1
                if qhead < qtail and len(window) < rob:
                    seq = next_seq
                    while qhead < qtail and count < fetch_width:
                        idx = qhead
                        f, fut, d1, d2, a0, a1, dd, ea1, base, off = t_row[idx]
                        if len(window) >= rob:
                            break
                        mem = (f & 4) != 0
                        if mem and lsq_count >= lsq:
                            break
                        qhead += 1
                        count += 1
                        slot = free.pop()
                        s_dyn[slot] = idx
                        s_seq[slot] = seq
                        s_load[slot] = (f & 1) != 0
                        s_store[slot] = st = (f & 2) != 0
                        s_mem[slot] = mem
                        s_fu[slot] = fut
                        s_issued[slot] = False
                        s_done[slot] = -1
                        s_tdone[slot] = -1
                        s_tlbw[slot] = False
                        s_dhost[slot] = -1
                        s_wp[slot] = False
                        s_dead[slot] = False
                        s_stall[slot] = 0
                        s_wait[slot] = None
                        if inorder:
                            s_d1[slot] = d1
                            s_d2[slot] = d2
                        # Producers that already completed can never
                        # stall this entry; prune them here rather than
                        # re-checking every scan.
                        if a0 >= 0:
                            c = dyn_complete[a0]
                            if 0 <= c <= now:
                                a0 = -1
                        s_a0[slot] = a0
                        if a1 >= 0:
                            c = dyn_complete[a1]
                            if 0 <= c <= now:
                                a1 = -1
                        s_a1[slot] = a1
                        if dd >= 0:
                            c = dyn_complete[dd]
                            if 0 <= c <= now:
                                dd = -1
                        s_dd[slot] = dd
                        if mem:
                            s_ea[slot] = ea1 - 1
                            s_base[slot] = base
                            s_off[slot] = off
                            lsq_count += 1
                        if idx == pending_mp:
                            pending_mp = -1
                            s_mp[slot] = True
                            if model_wrong_path:
                                wpb_slot = slot
                                wpb_seq = seq
                        else:
                            s_mp[slot] = False
                        if st and track_stores:
                            heappush(store_seqs, (seq, slot))
                        if needs_reg_events and f & 8:
                            # Decode-order register events for
                            # pretranslation mechanisms.
                            dec = trace[idx].decoded
                            mech_on_register_write(dec.dests, dec.srcs)
                        dyn_slot[idx] = slot
                        window.append(slot)
                        by_seq[seq] = slot
                        seq += 1
                        unissued.append(slot)
                        if timelines is not None and s_seq[slot] < tl_limit:
                            timelines[s_seq[slot]] = InstTimeline(
                                seq=s_seq[slot],
                                text=str(trace[idx].decoded.inst),
                                dispatch=now,
                            )
                    if count:
                        next_seq = seq
                        if needs_reg_events:
                            # Register events mutated the mechanism:
                            # drop its quiescent bound.
                            mech_quiet = 0
                if (
                    wpb_slot >= 0
                    and model_wrong_path
                    and qhead == qtail
                    and count < fetch_width
                ):
                    # The front end is fetching down the wrong path.
                    count += dispatch_wp(now)
                if count:
                    # New issue candidates: the gate no longer holds.
                    issue_next_try = 0
                if fetched or count:
                    did_work = True
            if profiling:
                ns_dispatch += pns() - t0
                n_dispatch += 1
            now += 1
            if max_cycles and now >= max_cycles:
                raise RuntimeError(f"simulation exceeded {max_cycles} cycles")
            if not window and qhead == qtail and ei >= n_ev:
                break
            if event_driven and not did_work:
                target = next_event(now - 1)
                if target > now:
                    if max_cycles and target >= max_cycles:
                        # The plain loop would idle up to the valve and
                        # abort there; abort now with the same error.
                        raise RuntimeError(
                            f"simulation exceeded {max_cycles} cycles"
                        )
                    # Jump the quiescent span, charging the stall stats
                    # the skipped cycles would have accrued.
                    skipped = target - now
                    skipped_total += skipped
                    jump_count += 1
                    if blockers:
                        st_tlb_dstall += skipped
                    elif qtail - qhead <= fetch_width and (
                        fe_waiting or fe_blocked > now - 1
                    ):
                        st_fe_stall += skipped
                    now = target

        # -- finalize ---------------------------------------------------------
        stats.cycles = now
        stats.committed = st_committed
        stats.issued = st_issued
        stats.loads = st_loads
        stats.stores = st_stores
        stats.branches = st_branches
        stats.mispredicts = st_mispredicts
        stats.jumps = st_jumps
        stats.tlb_miss_services = st_tlb_services
        stats.tlb_dispatch_stall_cycles = st_tlb_dstall
        stats.frontend_stall_cycles = st_fe_stall
        stats.forwarded_loads = st_fwd
        stats.itlb_misses = st_itlb
        stats.context_switches = st_ctx
        stats.icache = replace(self.plan.icache_stats)
        stats.dcache = dcache.stats
        stats.translation = mech.stats
        self.skipped_cycles = skipped_total
        self.skip_jumps = jump_count
        if profiling:
            prof.add_phase_ns("commit", ns_commit, n_commit)
            prof.add_phase_ns("issue", ns_issue, n_issue)
            prof.add_phase_ns("dispatch", ns_dispatch, n_dispatch)
            prof.note_run(
                cycles=stats.cycles,
                committed=stats.committed,
                skipped=skipped_total,
                jumps=jump_count,
                wall_s=time.perf_counter() - started,
            )
        return SimulationResult(self.name, stats, config)


def capture_kernel_timelines(
    config: MachineConfig,
    mechanism: TranslationMechanism,
    trace: Sequence[DynInst],
    encoded: EncodedTrace | None = None,
    limit: int = 64,
) -> tuple[list[InstTimeline], SimulationResult]:
    """Run the kernel recording the first ``limit`` instructions.

    The kernel-side counterpart of ``PipelineTrace.capture``; the
    differential harness renders both around a divergence.
    """
    machine = KernelMachine(
        config, mechanism, trace, encoded, timeline_limit=limit
    )
    result = machine.run()
    ordered = [machine.timelines[k] for k in sorted(machine.timelines)]
    return ordered, result
