"""Build-time trace encoding: the kernel's structure-of-arrays buffers.

The timing behaviour of one dynamic instruction depends on a handful of
facts the interpreted engine re-derives from the ``DynInst`` object
graph on every dispatch: its functional-unit class, whether it is a
load/store, its effective address, and — crucially — *which earlier
dynamic instruction produces each of its source operands*.  All of
these are properties of the dynamic trace alone: the trace is fixed
regardless of timing (the functional simulator already resolved it), so
the last writer of every architectural register at every trace position
is a build-time constant.  Wrong-path synthetics have no register
effects and correct-path instructions are never squashed, so the
producer indices stay valid for the whole run.

:func:`encode_trace_arrays` walks the trace once and flattens those
facts into parallel Python lists (one scalar per instruction — the
structure-of-arrays layout :mod:`repro.kernel.machine` replays without
touching a single ``DynInst``/``DecodedInst`` attribute).  When numpy
is importable (``pip install repro[fast]``) the dependence resolution
is vectorized — per-register writer-position arrays plus
``searchsorted`` — and produces byte-identical arrays; the pure-stdlib
sequential walk is always available (``dependencies = []`` stays true)
and is forced with ``REPRO_NO_NUMPY=1``.

The encoded arrays serialize to the ``KERN`` section of a version-2
:mod:`repro.func.tracefile` container (``array('q')`` little-endian
streams), so :class:`repro.eval.artifacts.ArtifactStore` content-
addresses them next to the trace they specialize: encode once, replay
under all thirteen designs and across serve workers.

Beyond the dependence arrays, every *timing-invariant address
computation* the replay loop would otherwise repeat per reference is
also hoisted here as :class:`TraceGeometry`: virtual page number, data-
cache block/set/tag, and the word index used for store-to-load
forwarding are pure functions of the effective address and a few
configuration constants (:func:`geometry_params`), so they are computed
once — vectorized under numpy, byte-identical stdlib fallback — and
replayed by :mod:`repro.kernel.batch`.  Bank indices and
pretranslation-cache tags are mechanism-dependent but still
timing-invariant; :func:`bank_indices` and :func:`pretranslation_tags`
derive them from the geometry on demand.  Geometry rides the ``KERN``
section as a version-2 sub-layout keyed by its parameters: loading a
container whose recorded parameters do not match the current
configuration is a *clean miss* on the geometry alone — the dependence
arrays still hydrate and the geometry is recomputed
(:func:`ensure_geometry`).
"""

from __future__ import annotations

import struct
import sys
from array import array
from typing import Sequence

from repro.env import env_bool
from repro.func.dyninst import DynInst
from repro.func.tracefile import TraceFileError

#: KERN payload preamble: magic, layout version, instruction count.
_KERN_HEAD = struct.Struct("<4sHxxQ")
_KERN_MAGIC = b"KTR\x01"
#: Version 2 appends the optional geometry sub-layout (flag, parameter
#: triple, geometry arrays).  Version-1 payloads are rejected, which the
#: artifact store treats as a clean miss — the arrays re-encode.
_KERN_VERSION = 2

#: Geometry sub-layout scalars: present flag, then the parameter triple.
_GEO_FLAG = struct.Struct("<q")
_GEO_PARAMS = struct.Struct("<qqq")

#: EncodedTrace flag bits (see :class:`EncodedTrace.flags`).
FLAG_LOAD = 1
FLAG_STORE = 2
FLAG_MEM = 4
#: Set when the instruction writes registers and is not a load — the
#: dispatch-time predicate for pretranslation register events.
FLAG_REG_EVENT = 8

#: Array attributes in serialization order (all int64 streams).
_ARRAY_FIELDS = (
    "fu",
    "flags",
    "ea1",
    "base1",
    "off",
    "d1",
    "d2",
    "a0",
    "a1",
    "dd",
)

#: Geometry array attributes in serialization order (all int64 streams).
_GEOM_FIELDS = ("vpn", "blk", "dset", "word")


class TraceGeometry:
    """Per-reference address geometry hoisted out of the replay loop.

    All arrays are plain Python lists of ``n`` ints, zero at non-memory
    positions (the replay loop only reads them for memory references).
    ``params`` is the :func:`geometry_params` triple the arrays were
    computed for — the clean-miss key of the serialized form.
    """

    __slots__ = ("params",) + _GEOM_FIELDS

    def __init__(self, params, vpn, blk, dset, word):
        #: (page_shift, dcache block_shift, dcache set_mask).
        self.params = params
        #: Virtual page number (``ea >> page_shift``).
        self.vpn = vpn
        #: Data-cache block number — the cache's tag (``ea >> block_shift``).
        self.blk = blk
        #: Data-cache set index (``blk & set_mask``).
        self.dset = dset
        #: Word address for store-to-load forwarding (``ea & ~3``).
        self.word = word

    def __eq__(self, other) -> bool:
        if not isinstance(other, TraceGeometry):
            return NotImplemented
        return self.params == other.params and all(
            getattr(self, name) == getattr(other, name) for name in _GEOM_FIELDS
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceGeometry params={self.params}>"


class EncodedTrace:
    """Flat per-instruction arrays replayed by the kernel loop.

    All attributes are plain Python lists of ``n`` ints (scalar list
    indexing is the fastest random access CPython offers; numpy scalars
    would be slower in the replay loop).  Register numbers are stored
    ``+1`` with ``0`` meaning "none"; producer indices are trace
    positions with ``-1`` meaning "no producer".
    """

    __slots__ = ("n", "geometry") + _ARRAY_FIELDS

    def __init__(self, n, fu, flags, ea1, base1, off, d1, d2, a0, a1, dd):
        #: Instruction count.
        self.n = n
        #: Attached :class:`TraceGeometry`, or None until
        #: :func:`ensure_geometry` computes (or the codec hydrates) one.
        #: Not part of ``__eq__``: the dependence arrays are the
        #: canonical content, geometry is a derived cache.
        self.geometry = None
        #: DecodedInst.fu_index (dense OpClass index) per instruction.
        self.fu = fu
        #: FLAG_* bits per instruction.
        self.flags = flags
        #: Effective address + 1 (0 = not a memory access).
        self.ea1 = ea1
        #: Base register + 1 of a memory access (0 = none).
        self.base1 = base1
        #: Immediate displacement of a memory access.
        self.off = off
        #: Destination registers + 1, in ``DecodedInst.dests`` order.
        self.d1 = d1
        self.d2 = d2
        #: Producer trace index of each address operand (-1 = ready).
        self.a0 = a0
        self.a1 = a1
        #: Producer trace index of a store's data operand (-1 = ready).
        self.dd = dd

    def __eq__(self, other) -> bool:
        if not isinstance(other, EncodedTrace):
            return NotImplemented
        return self.n == other.n and all(
            getattr(self, name) == getattr(other, name) for name in _ARRAY_FIELDS
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EncodedTrace n={self.n}>"


def _numpy():
    """The numpy module, or ``None`` (not installed / ``REPRO_NO_NUMPY``)."""
    if env_bool("REPRO_NO_NUMPY"):
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - depends on the environment
        return None
    return numpy


def encode_trace_arrays(trace: Sequence[DynInst]) -> EncodedTrace:
    """Encode ``trace`` into kernel replay arrays.

    Dispatches to the vectorized numpy encoder when available; both
    paths produce identical arrays (a property the codec tests pin).
    """
    np = _numpy()
    if np is not None:
        return _encode_numpy(trace, np)
    return _encode_python(trace)


def _static_facts(dec) -> tuple[int, int, int, int, int, int]:
    """(flags, base1, off, d1, d2) static scalars of one decode record."""
    flags = 0
    if dec.is_load:
        flags |= FLAG_LOAD
    if dec.is_store:
        flags |= FLAG_STORE
    base1 = 0
    off = 0
    if dec.is_mem:
        flags |= FLAG_MEM
        if dec.base_reg is not None:
            base1 = dec.base_reg + 1
        off = dec.offset
    dests = dec.dests
    if dests and not dec.is_load:
        flags |= FLAG_REG_EVENT
    if len(dests) > 2 or len(dec.addr_srcs) > 2 or len(dec.data_srcs) > 1:
        raise TraceFileError(
            f"static instruction {dec.index} exceeds the encoded operand "
            f"layout (dests={dests}, addr_srcs={dec.addr_srcs}, "
            f"data_srcs={dec.data_srcs})"
        )
    d1 = dests[0] + 1 if dests else 0
    d2 = dests[1] + 1 if len(dests) > 1 else 0
    return flags, base1, off, d1, d2


def _encode_python(trace: Sequence[DynInst]) -> EncodedTrace:
    """Sequential stdlib encoder: one last-writer walk over the trace."""
    n = len(trace)
    fu = [0] * n
    flags = [0] * n
    ea1 = [0] * n
    base1 = [0] * n
    off = [0] * n
    d1 = [0] * n
    d2 = [0] * n
    a0 = [-1] * n
    a1 = [-1] * n
    dd = [-1] * n
    static: dict[int, tuple] = {}
    last: dict[int, int] = {}
    last_get = last.get
    for i, dyn in enumerate(trace):
        dec = dyn.decoded
        facts = static.get(dec.index)
        if facts is None:
            facts = static[dec.index] = _static_facts(dec)
        f = facts[0]
        fu[i] = dec.fu_index
        flags[i] = f
        if f & FLAG_MEM:
            if dyn.ea is None:
                raise TraceFileError(
                    f"memory instruction at trace position {i} has no "
                    "effective address"
                )
            ea1[i] = dyn.ea + 1
            base1[i] = facts[1]
            off[i] = facts[2]
        srcs = dec.addr_srcs
        if srcs:
            p = last_get(srcs[0])
            if p is not None:
                a0[i] = p
            if len(srcs) > 1:
                p = last_get(srcs[1])
                if p is not None:
                    a1[i] = p
        srcs = dec.data_srcs
        if srcs:
            p = last_get(srcs[0])
            if p is not None:
                dd[i] = p
        w = facts[3]
        if w:
            last[w - 1] = i
            w = facts[4]
            if w:
                last[w - 1] = i
        d1[i] = facts[3]
        d2[i] = facts[4]
    return EncodedTrace(n, fu, flags, ea1, base1, off, d1, d2, a0, a1, dd)


def _encode_numpy(trace: Sequence[DynInst], np) -> EncodedTrace:
    """Vectorized encoder: static tables + per-register ``searchsorted``.

    One cheap Python pass collects the per-instruction dynamic scalars
    (static index, effective address) and the static decode table; all
    per-instruction fact spreading and the last-writer dependence
    resolution run as numpy array operations.  Produces the exact
    arrays of :func:`_encode_python`.
    """
    n = len(trace)
    sidx_l = [0] * n
    ea1_l = [0] * n
    static: dict[int, object] = {}
    for i, dyn in enumerate(trace):
        dec = dyn.decoded
        si = dec.index
        sidx_l[i] = si
        if si not in static:
            static[si] = dec
        if dec.is_mem:
            if dyn.ea is None:
                raise TraceFileError(
                    f"memory instruction at trace position {i} has no "
                    "effective address"
                )
            ea1_l[i] = dyn.ea + 1
    if not n:
        return EncodedTrace(0, [], [], [], [], [], [], [], [], [], [])
    # Dense static tables over the used static indices.
    max_si = max(static) + 1
    s_fu = np.zeros(max_si, np.int64)
    s_flags = np.zeros(max_si, np.int64)
    s_base1 = np.zeros(max_si, np.int64)
    s_off = np.zeros(max_si, np.int64)
    s_d1 = np.zeros(max_si, np.int64)
    s_d2 = np.zeros(max_si, np.int64)
    s_a0 = np.zeros(max_si, np.int64)  # addr-source registers + 1
    s_a1 = np.zeros(max_si, np.int64)
    s_dd = np.zeros(max_si, np.int64)  # data-source register + 1
    for si, dec in static.items():
        flags, base1, off, d1, d2 = _static_facts(dec)
        s_fu[si] = dec.fu_index
        s_flags[si] = flags
        s_base1[si] = base1
        s_off[si] = off
        s_d1[si] = d1
        s_d2[si] = d2
        srcs = dec.addr_srcs
        if srcs:
            s_a0[si] = srcs[0] + 1
            if len(srcs) > 1:
                s_a1[si] = srcs[1] + 1
        if dec.data_srcs:
            s_dd[si] = dec.data_srcs[0] + 1
    sidx = np.asarray(sidx_l, np.int64)
    ea1 = np.asarray(ea1_l, np.int64)
    fu = s_fu[sidx]
    flags = s_flags[sidx]
    mem = (flags & FLAG_MEM) != 0
    base1 = np.where(mem, s_base1[sidx], 0)
    off = np.where(mem, s_off[sidx], 0)
    d1 = s_d1[sidx]
    d2 = s_d2[sidx]
    a0r = s_a0[sidx]
    a1r = s_a1[sidx]
    ddr = s_dd[sidx]
    a0 = np.full(n, -1, np.int64)
    a1 = np.full(n, -1, np.int64)
    dd = np.full(n, -1, np.int64)
    # Per register: writer positions are sorted by construction, so the
    # last writer strictly before each reader is one searchsorted away.
    written = np.unique(np.concatenate((d1, d2)))
    for r in written:
        if r == 0:
            continue
        writers = np.flatnonzero((d1 == r) | (d2 == r))
        for src, dep in ((a0r, a0), (a1r, a1), (ddr, dd)):
            readers = np.flatnonzero(src == r)
            if not readers.size:
                continue
            pos = np.searchsorted(writers, readers, side="left") - 1
            valid = pos >= 0
            dep[readers[valid]] = writers[pos[valid]]
    return EncodedTrace(
        n,
        fu.tolist(),
        flags.tolist(),
        ea1.tolist(),
        base1.tolist(),
        off.tolist(),
        d1.tolist(),
        d2.tolist(),
        a0.tolist(),
        a1.tolist(),
        dd.tolist(),
    )


# ---------------------------------------------------------------------------
# Encode-time address geometry.
# ---------------------------------------------------------------------------


def geometry_params(config) -> tuple[int, int, int]:
    """The configuration constants the geometry arrays depend on.

    ``config`` is a :class:`repro.engine.config.MachineConfig` (duck-
    typed to keep this module importable without the engine package).
    The triple is the serialized clean-miss key: geometry loaded under
    different parameters is discarded and recomputed.
    """
    block_shift = config.dcache_block.bit_length() - 1
    num_sets = config.dcache_size // (config.dcache_assoc * config.dcache_block)
    return (config.page_shift, block_shift, num_sets - 1)


def compute_geometry(encoded: EncodedTrace, params) -> TraceGeometry:
    """Compute the per-reference geometry arrays for ``params``.

    Vectorized under numpy; the stdlib walk produces byte-identical
    lists (``REPRO_NO_NUMPY=1`` forces it, as for the encoder).
    """
    page_shift, block_shift, set_mask = params
    n = encoded.n
    np = _numpy()
    if np is not None and n:
        ea1 = np.asarray(encoded.ea1, np.int64)
        flags = np.asarray(encoded.flags, np.int64)
        ea = np.where((flags & FLAG_MEM) != 0, ea1 - 1, 0)
        blk = ea >> block_shift
        return TraceGeometry(
            tuple(params),
            (ea >> page_shift).tolist(),
            blk.tolist(),
            (blk & set_mask).tolist(),
            (ea & ~3).tolist(),
        )
    vpn = [0] * n
    blk = [0] * n
    dset = [0] * n
    word = [0] * n
    t_flags = encoded.flags
    t_ea1 = encoded.ea1
    for i in range(n):
        if t_flags[i] & FLAG_MEM:
            ea = t_ea1[i] - 1
            vpn[i] = ea >> page_shift
            b = ea >> block_shift
            blk[i] = b
            dset[i] = b & set_mask
            word[i] = ea & ~3
    return TraceGeometry(tuple(params), vpn, blk, dset, word)


def ensure_geometry(encoded: EncodedTrace, params) -> TraceGeometry:
    """Attach (or reuse) geometry for ``params``; returns it.

    A parameter mismatch against an already-attached geometry — e.g. a
    ``KERN`` section recorded under a different page size — is a clean
    miss on the geometry alone: it is recomputed here while the
    dependence arrays stay as loaded.
    """
    params = tuple(params)
    geo = encoded.geometry
    if geo is None or geo.params != params:
        geo = compute_geometry(encoded, params)
        encoded.geometry = geo
    return geo


def bank_indices(geometry: TraceGeometry, banks: int, select: str) -> list:
    """Per-reference interleaved-TLB bank index of each trace position.

    Mirrors :mod:`repro.tlb.bankselect` exactly (the property tests pin
    the equality against the live mechanism's selection function); zero
    at non-memory positions, like every geometry array.
    """
    vpn = geometry.vpn
    mask = banks - 1
    np = _numpy()
    if select == "bit":
        if np is not None and vpn:
            return (np.asarray(vpn, np.int64) & mask).tolist()
        return [v & mask for v in vpn]
    if select == "xor":
        width = banks.bit_length() - 1
        if np is not None and vpn:
            v = np.asarray(vpn, np.int64)
            folded = (v & mask) ^ ((v >> width) & mask) ^ ((v >> (2 * width)) & mask)
            return folded.tolist()
        from repro.tlb.bankselect import xor_fold

        fold = xor_fold(banks)
        return [fold(v) for v in vpn]
    raise ValueError(f"unknown bank selection: {select!r}")


def pretranslation_tags(encoded: EncodedTrace, offset_tag_bits: int) -> list:
    """Per-reference pretranslation-cache tag, ``None`` where untaggable.

    The tag is static per trace position — base register concatenated
    with the upper displacement bits of a load (zero for stores), as
    :meth:`repro.tlb.pretranslation.PretranslationMechanism.tag_of`
    computes on-line from each request.
    """
    from repro.tlb.pretranslation import OFFSET_TAG_SHIFT

    mask = (1 << offset_tag_bits) - 1
    n = encoded.n
    out = [None] * n
    t_flags = encoded.flags
    t_base1 = encoded.base1
    t_off = encoded.off
    np = _numpy()
    if np is not None and n:
        offbits = (
            (np.asarray(t_off, np.int64) >> OFFSET_TAG_SHIFT) & mask
        ).tolist()
        for i in range(n):
            b = t_base1[i]
            if b:
                out[i] = (b - 1, offbits[i] if t_flags[i] & FLAG_LOAD else 0)
        return out
    for i in range(n):
        b = t_base1[i]
        if b:
            out[i] = (
                b - 1,
                (t_off[i] >> OFFSET_TAG_SHIFT) & mask
                if t_flags[i] & FLAG_LOAD
                else 0,
            )
    return out


# ---------------------------------------------------------------------------
# KERN section codec.
# ---------------------------------------------------------------------------


def _to_bytes(values: list) -> bytes:
    arr = array("q", values)
    if sys.byteorder == "big":  # pragma: no cover - little-endian hosts
        arr.byteswap()
    return arr.tobytes()


def _from_bytes(data: bytes) -> list:
    arr = array("q")
    arr.frombytes(data)
    if sys.byteorder == "big":  # pragma: no cover - little-endian hosts
        arr.byteswap()
    return arr.tolist()


def encode_kernel_section(encoded: EncodedTrace) -> bytes:
    """Serialize encoded arrays to a ``KERN`` section payload.

    Version 2 appends a geometry sub-layout after the base arrays: a
    presence flag, then — when geometry is attached — the parameter
    triple and the four geometry arrays.  Encoding without geometry is
    legal (the flag is zero) so the section stays design-agnostic when
    no machine has touched the trace yet.
    """
    parts = [_KERN_HEAD.pack(_KERN_MAGIC, _KERN_VERSION, encoded.n)]
    for name in _ARRAY_FIELDS:
        parts.append(_to_bytes(getattr(encoded, name)))
    geo = encoded.geometry
    if geo is None:
        parts.append(_GEO_FLAG.pack(0))
    else:
        parts.append(_GEO_FLAG.pack(1))
        parts.append(_GEO_PARAMS.pack(*geo.params))
        for name in _GEOM_FIELDS:
            parts.append(_to_bytes(getattr(geo, name)))
    return b"".join(parts)


def decode_kernel_section(data: bytes) -> EncodedTrace:
    """Rebuild an :class:`EncodedTrace` from a ``KERN`` payload.

    Raises :class:`~repro.func.tracefile.TraceFileError` for truncated
    or corrupt payloads (the artifact store turns that into a miss).
    Version-1 payloads — which lack the geometry sub-layout — are
    rejected the same way, so pre-geometry artifacts re-encode cleanly.
    """
    if len(data) < _KERN_HEAD.size:
        raise TraceFileError("truncated kernel section")
    magic, version, count = _KERN_HEAD.unpack_from(data)
    if magic != _KERN_MAGIC:
        raise TraceFileError(f"bad kernel-section magic: {magic!r}")
    if version != _KERN_VERSION:
        raise TraceFileError(f"unsupported kernel-section version: {version}")
    stride = count * 8
    base_end = _KERN_HEAD.size + stride * len(_ARRAY_FIELDS)
    if len(data) < base_end + _GEO_FLAG.size:
        raise TraceFileError(
            f"kernel section holds {len(data)} bytes; {count} instructions "
            f"need at least {base_end + _GEO_FLAG.size}"
        )
    arrays = []
    pos = _KERN_HEAD.size
    for _ in _ARRAY_FIELDS:
        arrays.append(_from_bytes(data[pos : pos + stride]))
        pos += stride
    (geo_flag,) = _GEO_FLAG.unpack_from(data, pos)
    pos += _GEO_FLAG.size
    if geo_flag not in (0, 1):
        raise TraceFileError(f"bad kernel-section geometry flag: {geo_flag}")
    geometry = None
    if geo_flag:
        expected = pos + _GEO_PARAMS.size + stride * len(_GEOM_FIELDS)
        if len(data) != expected:
            raise TraceFileError(
                f"kernel section holds {len(data)} bytes; {count} "
                f"instructions with geometry need {expected}"
            )
        params = _GEO_PARAMS.unpack_from(data, pos)
        pos += _GEO_PARAMS.size
        geo_arrays = []
        for _ in _GEOM_FIELDS:
            geo_arrays.append(_from_bytes(data[pos : pos + stride]))
            pos += stride
        geometry = TraceGeometry(params, *geo_arrays)
    elif len(data) != pos:
        raise TraceFileError(
            f"kernel section holds {len(data)} bytes; {count} instructions "
            f"without geometry need {pos}"
        )
    encoded = EncodedTrace(count, *arrays)
    encoded.geometry = geometry
    return encoded
