"""Batch-vectorized replay: precomputed geometry + wavefront stepping.

:class:`BatchKernelMachine` is the second replay backend over
:class:`repro.kernel.encode.EncodedTrace`.  It produces the exact
:class:`MachineStats` of the interpreted engine and of
:class:`repro.kernel.machine.KernelMachine` — bit-identical, gated by
the ``kernel-batch`` differential check — but moves work out of the
per-instruction hot path in two ways:

**Encode-time geometry.**  Every address-derived quantity the cycle
loop needs is a pure function of the (timing-invariant) reference
stream and a handful of configuration constants, so it is hoisted out
of the loop entirely:

* virtual page number, cache block number, cache set index and the
  word-aligned forwarding key are computed once per trace by
  :func:`repro.kernel.encode.compute_geometry` (numpy-vectorized with a
  byte-identical stdlib fallback) and cached in the ``KERN`` tracefile
  section, keyed on the parameter triple — a mismatch is a clean miss
  on the geometry alone;
* the interleaved-TLB bank index and the pretranslation-cache tag are
  mechanism-dependent, so they are derived from the cached VPN array at
  machine construction (:func:`~repro.kernel.encode.bank_indices`,
  :func:`~repro.kernel.encode.pretranslation_tags`) and fed to the
  mechanisms through their precomputed-argument entry points
  (``request_banked`` / ``request_tagged``);
* functional-unit descriptors are gathered per trace index up front, as
  in the base kernel.

At issue time the machine therefore performs no shifting, masking,
folding or tag hashing at all — every per-reference value is an indexed
load.

**Wavefront stepping.**  Each simulated cycle processes its entire
ready wavefront through three bulk phases instead of interleaving
per-instruction scheduling with per-instruction bookkeeping:

* *gather* — drain every ripe wake record at once (one sort restores
  seq order, replacing repeated ``insort``) and bulk-prune satisfied
  operand producers across the whole wavefront.  Pruning up front is
  equivalent to the lazy per-slot pruning of the base kernel because a
  producer observed satisfied stays satisfied: completions always land
  at ``now + 1`` or later, so no mid-pass write can un-satisfy or newly
  satisfy a producer for this pass;
* *step* — walk the wavefront in sequence order, classifying each entry
  against the precomputed geometry.  The walk itself must stay ordered
  and stateful: port and bank arbitration, MSHR occupancy, FU leases
  and store-to-load forwarding all observe mid-pass mutations, and the
  paper's contention results depend on requests reaching the arbiters
  in exactly this order;
* *scatter* — completion cycles discovered during the walk are written
  back (``dyn_complete`` / wake records); deferred entries are batched
  into the wake heap with a single ``heapify`` instead of one
  ``heappush`` per deferral (the heap is only observed between passes,
  so the multiset is all that matters).

Only the out-of-order issue model is supported: the in-order model's
WAW scan is inherently serial, and ``repro.eval.runner.simulate`` falls
back to :class:`KernelMachine` for it (and to the interpreted engine
for ``config.sanity``).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import replace
from heapq import heapify, heappop, heappush
from typing import Sequence

from repro.caches.cache import SetAssocCache
from repro.caches.mshr import MSHRFile
from repro.caches.replacement import XorShift32
from repro.engine.config import MachineConfig
from repro.engine.frontend import FetchPlan, build_fetch_plan
from repro.engine.machine import (
    SimulationResult,
    _WP_ALU,
    _WP_LOAD,
    _WP_STORE,
)
from repro.engine.funits import FunctionalUnitPool
from repro.engine.pipeview import InstTimeline
from repro.engine.stats import MachineStats
from repro.func.dyninst import OPCLASS_INDEX, DynInst
from repro.kernel.encode import (
    EncodedTrace,
    bank_indices,
    encode_trace_arrays,
    ensure_geometry,
    geometry_params,
    pretranslation_tags,
)
from repro.kernel.machine import _plan_arrays, capture_kernel_timelines
from repro.tlb.base import NEVER, TranslationMechanism
from repro.tlb.interleaved import InterleavedTLB
from repro.tlb.pretranslation import PretranslationMechanism
from repro.tlb.request import TranslationRequest


class BatchKernelMachine:
    """Replays an :class:`EncodedTrace` with precomputed geometry.

    Drop-in for :class:`repro.kernel.machine.KernelMachine` at the
    :func:`repro.eval.runner.simulate` level, restricted to
    ``issue_model == "ooo"`` (the runner falls back for in-order and
    for ``config.sanity``).
    """

    def __init__(
        self,
        config: MachineConfig,
        mechanism: TranslationMechanism,
        trace: Sequence[DynInst],
        encoded: EncodedTrace | None = None,
        name: str = "run",
        profiler=None,
        fetch_plan: FetchPlan | None = None,
        timeline_limit: int = 0,
    ):
        if mechanism.page_shift != config.page_shift:
            raise ValueError(
                f"mechanism page shift {mechanism.page_shift} != "
                f"machine page shift {config.page_shift}"
            )
        if config.sanity:
            raise ValueError(
                "BatchKernelMachine does not support sanity checking; "
                "use the interpreted Machine (runner.simulate does)"
            )
        if config.issue_model != "ooo":
            raise ValueError(
                "BatchKernelMachine supports the ooo issue model only; "
                "use KernelMachine (runner.simulate falls back)"
            )
        trace = trace if isinstance(trace, list) else list(trace)
        if encoded is None:
            encoded = encode_trace_arrays(trace)
        if encoded.n != len(trace):
            raise ValueError(
                f"encoded arrays cover {encoded.n} instructions; "
                f"trace has {len(trace)}"
            )
        self.config = config
        self.mech = mechanism
        self.name = name
        self.trace = trace
        self.encoded = encoded
        self.geometry = ensure_geometry(encoded, geometry_params(config))
        self.stats = MachineStats()
        self.dcache = SetAssocCache(
            config.dcache_size, config.dcache_assoc, config.dcache_block
        )
        self.mshr = MSHRFile(config.dcache_mshrs)
        if fetch_plan is None:
            fetch_plan = build_fetch_plan(trace, config)
        self.plan = fetch_plan
        self.fupool = FunctionalUnitPool(config)
        self.profiler = profiler
        self.timeline_limit = timeline_limit
        self.timelines: dict[int, InstTimeline] = {}
        #: Host-side event-driven diagnostics (never part of stats).
        self.skipped_cycles = 0
        self.skip_jumps = 0

    # One monolithic function, like the base kernel: the hot path never
    # touches ``self``.
    def run(self) -> SimulationResult:  # noqa: C901 - deliberately monolithic
        config = self.config
        mech = self.mech
        enc = self.encoded
        geo = self.geometry
        trace = self.trace
        stats = self.stats
        prof = self.profiler
        profiling = prof is not None
        pns = time.perf_counter_ns
        if profiling:
            started = time.perf_counter()

        # -- per-run constants ------------------------------------------------
        fetch_width = config.fetch_width
        issue_width = config.issue_width
        commit_width = config.commit_width
        rob = config.rob_entries
        lsq = config.lsq_entries
        tlb_miss_latency = config.tlb_miss_latency
        icache_miss_latency = config.icache_miss_latency
        dcache_miss_latency = config.dcache_miss_latency
        mispredict_penalty = config.mispredict_penalty
        model_wrong_path = config.model_wrong_path
        wp_load_pct = config.wrong_path_load_pct
        wp_load_store_pct = wp_load_pct + config.wrong_path_store_pct
        cs_interval = config.context_switch_interval
        max_cycles = config.max_cycles
        event_driven = config.event_driven
        ldst_latency = config.fu_specs["ldst"].latency
        page_shift = config.page_shift
        wp_budget = max(1, fetch_width // 2)

        dcache = self.dcache
        dcache_access_block = dcache.access_block
        dcache_probe_block = dcache.probe_block
        dshift = dcache.block_shift
        mshr = self.mshr
        mshr_pending = mshr._pending
        mshr_expire = mshr.expire
        mshr_allocate = mshr.allocate
        mshr_lookup = mshr.lookup
        mshr_full = mshr.full
        mshr_next_completion = mshr.next_completion
        fupool_release = self.fupool.next_busy_release
        mech_flush = mech.flush
        mech_tick = mech.tick
        mech_quiet_until = mech.quiescent_until
        mech_request = mech.request
        mech_on_register_write = mech.on_register_write
        needs_reg_events = mech.needs_register_events
        if profiling:
            mech_tick = prof.wrap("mech_tick", mech_tick)

        # Precomputed-argument entry points.  Guarded by exact type so a
        # subclass overriding selection or tagging falls back to the
        # generic ``request`` path.
        use_banked = type(mech) is InterleavedTLB
        use_tagged = type(mech) is PretranslationMechanism
        if use_banked:
            mech_request_banked = mech.request_banked
            mech_select = mech.select
            t_bank = bank_indices(geo, mech.banks, mech.select_name)
        if use_tagged:
            mech_request_tagged = mech.request_tagged
            t_ptag = pretranslation_tags(enc, mech.offset_tag_bits)

        fu_map: list = [None] * len(OPCLASS_INDEX)
        for oc, triple in self.fupool.class_map().items():
            fu_map[OPCLASS_INDEX[oc]] = triple

        # -- encoded trace + geometry arrays ----------------------------------
        t_flags = enc.flags
        t_fut = [fu_map[i] for i in enc.fu]
        t_base = [(b - 1) if b else None for b in enc.base1]
        n_insts = enc.n
        #: One row tuple per trace index: encoded fields plus the
        #: precomputed geometry, unpacked in a single indexed load.
        t_row = list(
            zip(
                t_flags,
                t_fut,
                enc.a0,
                enc.a1,
                enc.dd,
                enc.ea1,
                t_base,
                enc.off,
                geo.vpn,
                geo.blk,
                geo.word,
            )
        )

        # -- fetch-plan replay state ------------------------------------------
        ev_kind, ev_count, ev_branches, ev_jumps, ev_mp = _plan_arrays(self.plan)
        n_ev = len(ev_kind)
        ei = 0
        fe_waiting = False
        fe_resume = -1
        fe_blocked = 0
        qhead = 0
        qtail = 0
        pending_mp = -1

        # -- window slot pool -------------------------------------------------
        s_dyn = [-1] * rob
        s_seq = [-1] * rob
        s_ea = [0] * rob
        s_vpn = [0] * rob  # precomputed page number
        s_blk = [0] * rob  # precomputed cache block number
        s_word = [0] * rob  # precomputed forwarding key (ea & ~3)
        s_bank = [0] * rob  # precomputed TLB bank (interleaved only)
        s_ptag = [None] * rob  # precomputed pcache tag (pretranslation only)
        s_base = [None] * rob
        s_off = [0] * rob
        s_load = [False] * rob
        s_store = [False] * rob
        s_mem = [False] * rob
        s_fu = [None] * rob
        s_issued = [False] * rob
        s_icyc = [-1] * rob
        s_done = [-1] * rob
        s_cdone = [0] * rob
        s_tdone = [-1] * rob
        s_tbase = [-1] * rob
        s_tlbw = [False] * rob
        s_dhost = [-1] * rob
        s_mp = [False] * rob
        s_wp = [False] * rob
        s_dead = [False] * rob
        s_stall = [0] * rob
        s_wait = [None] * rob
        s_a0 = [-1] * rob
        s_a1 = [-1] * rob
        s_dd = [-1] * rob
        free = list(range(rob - 1, -1, -1))
        seq_of = s_seq.__getitem__

        # -- cross-instruction replay state -----------------------------------
        dyn_complete = [-1] * n_insts
        dyn_slot = [0] * n_insts
        window: deque[int] = deque()
        by_seq: dict[int, int] = {}
        riders: dict[int, list] = {}
        blockers: set[int] = set()
        stores_awaiting: list[int] = []
        unissued: list[int] = []
        wake: list[tuple] = []
        store_seqs: list[tuple] = []
        fwd_stores: dict[int, list] = {}
        recent_eas: deque[int] = deque(maxlen=16)
        rng_below = XorShift32(0x57A7).below
        wp_fu = (
            fu_map[_WP_ALU.fu_index],
            fu_map[_WP_LOAD.fu_index],
            fu_map[_WP_STORE.fu_index],
        )
        wp_text = (
            str(_WP_ALU.inst),
            str(_WP_LOAD.inst),
            str(_WP_STORE.inst),
        )
        next_seq = 0
        wpb_slot = -1
        wpb_seq = -1
        lsq_count = 0
        issue_next_try = 0
        mech_quiet = 0
        mshr_next = 0
        next_flush = cs_interval if cs_interval else 0
        mem_issues = 0

        # -- stats accumulators ----------------------------------------------
        st_committed = 0
        st_issued = 0
        st_loads = 0
        st_stores = 0
        st_branches = 0
        st_mispredicts = 0
        st_jumps = 0
        st_tlb_services = 0
        st_tlb_dstall = 0
        st_fe_stall = 0
        st_fwd = 0
        st_itlb = 0
        st_ctx = 0
        demand = stats.translation_demand
        skipped_total = 0
        jump_count = 0
        ns_commit = n_commit = 0
        ns_gather = n_gather = 0
        ns_step = n_step = 0
        ns_dispatch = n_dispatch = 0

        tl_limit = self.timeline_limit
        timelines = self.timelines if tl_limit else None

        # -- phase closures ---------------------------------------------------

        def set_complete(slot: int, complete: int) -> None:
            nonlocal issue_next_try
            d = s_dyn[slot]
            if d >= 0:
                dyn_complete[d] = complete
            s_done[slot] = complete
            ws = s_wait[slot]
            if ws is not None:
                s_wait[slot] = None
                for e in ws:
                    if s_stall[e] > complete:
                        s_stall[e] = complete
                    if not s_issued[e] and not s_dead[e]:
                        heappush(wake, (complete, s_seq[e], e))
                if complete < issue_next_try:
                    issue_next_try = complete

        def try_complete_store(slot: int) -> None:
            icyc = s_icyc[slot]
            data_ready = icyc
            dd = s_dd[slot]
            if dd >= 0:
                c = dyn_complete[dd]
                if c < 0:
                    ps = dyn_slot[dd]
                    ws = s_wait[ps]
                    if ws is None:
                        s_wait[ps] = [slot]
                    else:
                        ws.append(slot)
                    s_stall[slot] = NEVER
                    stores_awaiting.append(slot)
                    return
                if c > data_ready:
                    data_ready = c
            complete = icyc + 1
            td1 = s_tdone[slot] + 1
            if td1 > complete:
                complete = td1
            if data_ready > complete:
                complete = data_ready
            set_complete(slot, complete)

        def finalize_mem(slot: int) -> None:
            td = s_tdone[slot]
            if td < 0:
                return
            if s_load[slot]:
                set_complete(slot, s_cdone[slot] + td - s_icyc[slot])
            else:
                try_complete_store(slot)

        def complete_stores() -> bool:
            nonlocal stores_awaiting
            pending = stores_awaiting
            for slot in pending:
                if s_stall[slot] != NEVER:
                    break
            else:
                return False
            stores_awaiting = []
            completed = False
            for slot in pending:
                if s_done[slot] < 0:
                    if s_stall[slot] == NEVER:
                        stores_awaiting.append(slot)
                        continue
                    try_complete_store(slot)
                    if s_done[slot] >= 0:
                        completed = True
            return completed

        def complete_riders(slot: int) -> None:
            lst = riders.pop(s_seq[slot], None)
            if lst:
                td = s_tdone[slot]
                for rseq, rs in lst:
                    if s_seq[rs] != rseq:
                        continue
                    s_tdone[rs] = td
                    s_tlbw[rs] = False
                    finalize_mem(rs)

        def apply_translation(result, now: int) -> None:
            slot = by_seq.get(result.req.seq)
            if slot is None:
                return
            if result.tlb_miss:
                s_tlbw[slot] = True
                s_tbase[slot] = result.ready
                dep = result.depends_on
                blockers.add(result.req.seq)
                if dep is not None:
                    s_dhost[slot] = dep
                    hslot = by_seq.get(dep)
                    if hslot is not None and s_tdone[hslot] < 0:
                        lst = riders.get(dep)
                        rec = (s_seq[slot], slot)
                        if lst is None:
                            riders[dep] = [rec]
                        else:
                            lst.append(rec)
                    else:
                        if hslot is not None:
                            done = s_tdone[hslot]
                        else:
                            done = now if now > result.ready else result.ready
                        s_tdone[slot] = done
                        s_tlbw[slot] = False
                        finalize_mem(slot)
                else:
                    s_dhost[slot] = -1
            else:
                s_tdone[slot] = result.ready
                finalize_mem(slot)

        def issue_memory(slot: int, now: int) -> None:
            nonlocal mem_issues, mech_quiet, mshr_next, st_fwd
            ea = s_ea[slot]
            word = s_word[slot]
            mem_issues += 1
            if not s_wp[slot]:
                recent_eas.append(ea)
            is_store = s_store[slot]
            if is_store:
                lst = fwd_stores.get(word)
                if lst is None:
                    fwd_stores[word] = [slot]
                else:
                    lst.append(slot)
            is_load = s_load[slot]
            if is_load:
                fwd = -1
                candidates = fwd_stores.get(word)
                if candidates:
                    seq = s_seq[slot]
                    best_seq = -1
                    for cand in candidates:
                        s = s_seq[cand]
                        if best_seq < s < seq:
                            fwd = cand
                            best_seq = s
                    if fwd >= 0:
                        dd = s_dd[fwd]
                        if dd >= 0:
                            c = dyn_complete[dd]
                            if c < 0 or c > now:
                                fwd = -1
                if fwd >= 0:
                    st_fwd += 1
                    s_cdone[slot] = now + 1
                elif dcache_access_block(s_blk[slot]):
                    s_cdone[slot] = now + ldst_latency
                else:
                    mshr_expire(now)
                    fill_done = mshr_allocate(
                        s_blk[slot], now, dcache_miss_latency
                    )
                    if fill_done < mshr_next:
                        mshr_next = fill_done
                    s_cdone[slot] = fill_done + ldst_latency
            req = TranslationRequest(
                s_seq[slot],
                s_vpn[slot],
                now,
                is_store,
                is_load,
                s_base[slot],
                s_off[slot],
            )
            if use_banked:
                result = mech_request_banked(req, s_bank[slot])
            elif use_tagged:
                result = mech_request_tagged(req, s_ptag[slot])
            else:
                result = mech_request(req)
            mech_quiet = 0
            if result is not None:
                apply_translation(result, now)

        def squash(now: int) -> bool:
            nonlocal wpb_slot, lsq_count, issue_next_try, unissued
            bslot = wpb_slot
            if s_seq[bslot] != wpb_seq:
                wpb_slot = -1  # unreachable: the branch cannot leave the
                return False  # window before this squash fires
            c = s_done[bslot]
            if c < 0 or c > now:
                return False
            wpb_slot = -1
            squashed = False
            while window and s_wp[window[-1]]:
                slot = window.pop()
                squashed = True
                s_dead[slot] = True
                if s_mem[slot]:
                    lsq_count -= 1
                    if s_store[slot] and s_issued[slot]:
                        fwd_stores[s_word[slot]].remove(slot)
                sq = s_seq[slot]
                blockers.discard(sq)
                by_seq.pop(sq, None)
                lst = riders.pop(sq, None)
                if lst:
                    for rseq, rs in lst:
                        if s_seq[rs] == rseq and s_tdone[rs] < 0:
                            s_tdone[rs] = now
                            s_tlbw[rs] = False
                            finalize_mem(rs)
                free.append(slot)
            if squashed:
                unissued = [s for s in unissued if not s_dead[s]]
                issue_next_try = 0
            return squashed

        def service_tlb(now: int) -> bool:
            nonlocal st_tlb_services
            for slot in window:
                c = s_done[slot]
                if 0 <= c <= now:
                    continue
                if s_tlbw[slot] and s_dhost[slot] < 0 and not s_wp[slot]:
                    tb = s_tbase[slot]
                    s_tdone[slot] = (now if now > tb else tb) + tlb_miss_latency
                    s_tlbw[slot] = False
                    st_tlb_services += 1
                    finalize_mem(slot)
                    complete_riders(slot)
                    return True
                break
            return False

        def dispatch_wp(now: int) -> int:
            nonlocal next_seq, lsq_count
            count = 0
            while count < wp_budget and len(window) < rob:
                roll = rng_below(100)
                if roll < wp_load_pct and recent_eas:
                    kind = 1
                elif roll < wp_load_store_pct and recent_eas:
                    kind = 2
                else:
                    kind = 0
                if kind and lsq_count >= lsq:
                    kind = 0
                slot = free.pop()
                seq = next_seq
                next_seq += 1
                s_dyn[slot] = -1
                s_seq[slot] = seq
                s_load[slot] = kind == 1
                s_store[slot] = kind == 2
                s_mem[slot] = kind != 0
                s_fu[slot] = wp_fu[kind]
                s_issued[slot] = False
                s_done[slot] = -1
                s_tdone[slot] = -1
                s_tlbw[slot] = False
                s_dhost[slot] = -1
                s_mp[slot] = False
                s_wp[slot] = True
                s_dead[slot] = False
                s_stall[slot] = 0
                s_wait[slot] = None
                s_a0[slot] = -1
                s_a1[slot] = -1
                s_dd[slot] = -1
                s_base[slot] = None
                s_off[slot] = 0
                if kind:
                    # Wrong-path geometry is synthesized inline: these
                    # addresses are invented here, never encoded.
                    base = recent_eas[rng_below(len(recent_eas))]
                    ea = (base & ~0xFF) + 4 * rng_below(64)
                    s_ea[slot] = ea
                    vpn = ea >> page_shift
                    s_vpn[slot] = vpn
                    s_blk[slot] = ea >> dshift
                    s_word[slot] = ea & ~3
                    if use_banked:
                        s_bank[slot] = mech_select(vpn)
                    elif use_tagged:
                        s_ptag[slot] = None
                    lsq_count += 1
                    if kind == 2:
                        heappush(store_seqs, (seq, slot))
                window.append(slot)
                by_seq[seq] = slot
                unissued.append(slot)
                count += 1
                if timelines is not None and seq < tl_limit:
                    timelines[seq] = InstTimeline(
                        seq=seq, text=wp_text[kind], dispatch=now
                    )
            return count

        def next_event(now: int) -> int:
            nxt = next_flush or NEVER
            for slot in window:
                c = s_done[slot]
                if c >= 0 and now < c < nxt:
                    nxt = c
            quiet = mech_quiet_until(now)
            if quiet < nxt:
                nxt = quiet
            if unissued or wake:
                fill = mshr_next_completion(now)
                if fill < nxt:
                    nxt = fill
                release = fupool_release(now)
                if release < nxt:
                    nxt = release
            if not blockers and qtail - qhead <= fetch_width:
                if fe_waiting:
                    if 0 <= fe_resume < nxt:
                        nxt = fe_resume
                elif now < fe_blocked < nxt:
                    nxt = fe_blocked
            return nxt

        if profiling:
            complete_stores = prof.wrap("stores", complete_stores)
            squash = prof.wrap("squash", squash)
            service_tlb = prof.wrap("tlb_service", service_tlb)
            next_event = prof.wrap("next_event", next_event)
            mshr_expire_timed = prof.wrap("mshr_expire", mshr_expire)
        else:
            mshr_expire_timed = mshr_expire

        # -- the cycle loop ---------------------------------------------------
        now = 0
        while True:
            did_work = False
            if next_flush and now >= next_flush:
                mech_flush()
                st_ctx += 1
                next_flush = now + cs_interval
                mech_quiet = 0
                did_work = True
            if wpb_slot >= 0 and squash(now):
                did_work = True
            if window:
                head = window[0]
                hc = s_done[head]
                if 0 <= hc <= now:
                    # ---- commit (inline) ----
                    if profiling:
                        t0 = pns()
                    count = 0
                    loads = 0
                    stores = 0
                    while count < commit_width:
                        head = window[0]
                        c = s_done[head]
                        if c < 0 or c > now:
                            break
                        window.popleft()
                        count += 1
                        if s_mem[head]:
                            lsq_count -= 1
                            if s_store[head]:
                                stores += 1
                                # Committed stores write the data cache.
                                dcache_access_block(s_blk[head], True)
                                fwd_stores[s_word[head]].remove(head)
                            else:
                                loads += 1
                        sq = s_seq[head]
                        if blockers:
                            blockers.discard(sq)
                        by_seq.pop(sq, None)
                        free.append(head)
                        if timelines is not None:
                            t = timelines.get(sq)
                            if t is not None:
                                t.commit = now
                                t.complete = c
                        if not window:
                            break
                    st_committed += count
                    st_loads += loads
                    st_stores += stores
                    if count:
                        did_work = True
                    if profiling:
                        ns_commit += pns() - t0
                        n_commit += 1
            if mshr_pending and now >= mshr_next:
                mshr_expire_timed(now)
                mshr_next = mshr_next_completion(now)
            if stores_awaiting and complete_stores():
                did_work = True
            if blockers and service_tlb(now):
                did_work = True
            if now >= issue_next_try:
                # ---- gather: assemble this cycle's wavefront ----
                if profiling:
                    t0 = pns()
                if wake and wake[0][0] <= now:
                    # Bulk drain: pop every ripe record, drop stale ones,
                    # restore seq order with one sort (equivalent to the
                    # base kernel's repeated insort — same final order).
                    fresh = []
                    while wake and wake[0][0] <= now:
                        rec = heappop(wake)
                        rslot = rec[2]
                        if (
                            s_seq[rslot] == rec[1]
                            and not s_issued[rslot]
                            and not s_dead[rslot]
                        ):
                            fresh.append(rslot)
                    if fresh:
                        unissued.extend(fresh)
                        unissued.sort(key=seq_of)
                mem_issues = 0
                if not unissued:
                    issue_next_try = wake[0][0] if wake else NEVER
                    if profiling:
                        ns_gather += pns() - t0
                        n_gather += 1
                else:
                    # Bulk producer pruning across the whole wavefront:
                    # a producer observed satisfied stays satisfied for
                    # this pass (completions land at now+1 or later), so
                    # clearing up front matches the step walk's lazy
                    # pruning exactly.
                    for slot in unissued:
                        p = s_a0[slot]
                        if p >= 0 and 0 <= dyn_complete[p] <= now:
                            s_a0[slot] = -1
                        p = s_a1[slot]
                        if p >= 0 and 0 <= dyn_complete[p] <= now:
                            s_a1[slot] = -1
                    if profiling:
                        ns_gather += pns() - t0
                        n_gather += 1
                        t0 = pns()
                    # ---- step: seq-ordered wavefront walk ----
                    issued = 0
                    now1 = now + 1
                    next_try = NEVER
                    retained = None
                    defer: list = []
                    n = len(unissued)
                    # Oldest live unissued store: any younger load is
                    # blocked on its still-unknown address.
                    while store_seqs:
                        top = store_seqs[0]
                        ts = top[1]
                        if s_seq[ts] != top[0] or s_issued[ts] or s_dead[ts]:
                            heappop(store_seqs)
                        else:
                            break
                    block_seq = store_seqs[0][0] if store_seqs else NEVER
                    for i in range(n):
                        slot = unissued[i]
                        if s_dead[slot]:
                            if retained is None:
                                retained = unissued[:i]
                            continue
                        if issued >= issue_width:
                            if retained is not None:
                                retained.extend(unissued[i:])
                            next_try = now1
                            break
                        if s_load[slot] and block_seq < s_seq[slot]:
                            if retained is not None:
                                retained.append(slot)
                            continue
                        deferred = False
                        p = s_a0[slot]
                        if p >= 0:
                            c = dyn_complete[p]
                            if c < 0:
                                ps = dyn_slot[p]
                                ws = s_wait[ps]
                                if ws is None:
                                    s_wait[ps] = [slot]
                                else:
                                    ws.append(slot)
                                deferred = True
                            elif c > now:
                                defer.append((c, s_seq[slot], slot))
                                deferred = True
                            else:
                                s_a0[slot] = -1
                        if not deferred:
                            p = s_a1[slot]
                            if p >= 0:
                                c = dyn_complete[p]
                                if c < 0:
                                    ps = dyn_slot[p]
                                    ws = s_wait[ps]
                                    if ws is None:
                                        s_wait[ps] = [slot]
                                    else:
                                        ws.append(slot)
                                    deferred = True
                                elif c > now:
                                    defer.append((c, s_seq[slot], slot))
                                    deferred = True
                                else:
                                    s_a1[slot] = -1
                        fu = None
                        if not deferred:
                            fu = s_fu[slot]
                            free_at = fu[0]
                            fui = -1
                            for j, fa in enumerate(free_at):
                                if fa <= now:
                                    fui = j
                                    break
                            if fui < 0:
                                defer.append((min(free_at), s_seq[slot], slot))
                                deferred = True
                        if deferred:
                            if retained is None:
                                retained = unissued[:i]
                            continue
                        if s_load[slot]:
                            # Structural: a missing load needs an MSHR.
                            # Never cached as a bound: a commit-time
                            # store write-allocate can flip the probe to
                            # a hit any cycle.
                            if (
                                not dcache_probe_block(s_blk[slot])
                                and mshr_lookup(s_blk[slot]) is None
                                and mshr_full()
                            ):
                                if now1 < next_try:
                                    next_try = now1
                                if retained is not None:
                                    retained.append(slot)
                                continue
                        # ---- issue (the hot path) ----
                        free_at[fui] = now + fu[1]
                        s_issued[slot] = True
                        s_icyc[slot] = now
                        if timelines is not None:
                            t = timelines.get(s_seq[slot])
                            if t is not None:
                                t.issue = now
                        if s_mem[slot]:
                            issue_memory(slot, now)
                            if s_store[slot]:
                                while store_seqs:
                                    top = store_seqs[0]
                                    ts = top[1]
                                    if (
                                        s_seq[ts] != top[0]
                                        or s_issued[ts]
                                        or s_dead[ts]
                                    ):
                                        heappop(store_seqs)
                                    else:
                                        break
                                block_seq = (
                                    store_seqs[0][0] if store_seqs else NEVER
                                )
                        else:
                            ready = now + fu[2]
                            if s_wait[slot] is None:
                                s_done[slot] = ready
                                d = s_dyn[slot]
                                if d >= 0:
                                    dyn_complete[d] = ready
                            else:
                                set_complete(slot, ready)
                            if s_mp[slot]:
                                fe_resume = ready + mispredict_penalty
                        issued += 1
                        if retained is None:
                            retained = unissued[:i]
                    # ---- scatter: batch the pass's deferrals ----
                    # The wake heap is only observed between passes, so
                    # extend + one heapify matches per-record heappush.
                    if defer:
                        wake.extend(defer)
                        heapify(wake)
                    if retained is not None:
                        unissued = retained
                    if wake and wake[0][0] < next_try:
                        next_try = wake[0][0]
                    issue_next_try = next_try
                    st_issued += issued
                    if issued:
                        did_work = True
                    if mem_issues:
                        demand[mem_issues] = demand.get(mem_issues, 0) + 1
                    if profiling:
                        ns_step += pns() - t0
                        n_step += 1
            if now >= mech_quiet:
                results = mech_tick(now)
                if results:
                    did_work = True
                    for result in results:
                        apply_translation(result, now)
                else:
                    mech_quiet = mech_quiet_until(now)
            # ---- dispatch / fetch (inline) ----
            if profiling:
                t0 = pns()
            if blockers:
                st_tlb_dstall += 1
            else:
                fetched = False
                count = 0
                if qtail - qhead <= fetch_width:
                    deliver = True
                    if fe_waiting:
                        if fe_resume < 0 or now < fe_resume:
                            st_fe_stall += 1
                            deliver = False
                        else:
                            fe_waiting = False
                            fe_resume = -1
                    if deliver and now < fe_blocked:
                        st_fe_stall += 1
                        deliver = False
                    if deliver and ei < n_ev:
                        k = ev_kind[ei]
                        if k == 2:
                            b = ev_branches[ei]
                            if b:
                                st_branches += b
                                if ev_mp[ei]:
                                    st_mispredicts += 1
                            j = ev_jumps[ei]
                            if j:
                                st_jumps += j
                            qtail += ev_count[ei]
                            fetched = True
                            if ev_mp[ei]:
                                pending_mp = qtail - 1
                                fe_waiting = True
                                fe_resume = -1
                        else:
                            if k == 1:
                                st_itlb += 1
                                fe_blocked = now + tlb_miss_latency
                            else:
                                fe_blocked = now + icache_miss_latency
                            st_fe_stall += 1
                        ei += 1
                if qhead < qtail and len(window) < rob:
                    seq = next_seq
                    while qhead < qtail and count < fetch_width:
                        idx = qhead
                        (
                            f,
                            fut,
                            a0,
                            a1,
                            dd,
                            ea1,
                            base,
                            off,
                            vpn,
                            blk,
                            word,
                        ) = t_row[idx]
                        if len(window) >= rob:
                            break
                        mem = (f & 4) != 0
                        if mem and lsq_count >= lsq:
                            break
                        qhead += 1
                        count += 1
                        slot = free.pop()
                        s_dyn[slot] = idx
                        s_seq[slot] = seq
                        s_load[slot] = (f & 1) != 0
                        s_store[slot] = st = (f & 2) != 0
                        s_mem[slot] = mem
                        s_fu[slot] = fut
                        s_issued[slot] = False
                        s_done[slot] = -1
                        s_tdone[slot] = -1
                        s_tlbw[slot] = False
                        s_dhost[slot] = -1
                        s_wp[slot] = False
                        s_dead[slot] = False
                        s_stall[slot] = 0
                        s_wait[slot] = None
                        if a0 >= 0:
                            c = dyn_complete[a0]
                            if 0 <= c <= now:
                                a0 = -1
                        s_a0[slot] = a0
                        if a1 >= 0:
                            c = dyn_complete[a1]
                            if 0 <= c <= now:
                                a1 = -1
                        s_a1[slot] = a1
                        if dd >= 0:
                            c = dyn_complete[dd]
                            if 0 <= c <= now:
                                dd = -1
                        s_dd[slot] = dd
                        if mem:
                            s_ea[slot] = ea1 - 1
                            s_vpn[slot] = vpn
                            s_blk[slot] = blk
                            s_word[slot] = word
                            if use_banked:
                                s_bank[slot] = t_bank[idx]
                            elif use_tagged:
                                s_ptag[slot] = t_ptag[idx]
                            s_base[slot] = base
                            s_off[slot] = off
                            lsq_count += 1
                        if idx == pending_mp:
                            pending_mp = -1
                            s_mp[slot] = True
                            if model_wrong_path:
                                wpb_slot = slot
                                wpb_seq = seq
                        else:
                            s_mp[slot] = False
                        if st:
                            heappush(store_seqs, (seq, slot))
                        if needs_reg_events and f & 8:
                            dec = trace[idx].decoded
                            mech_on_register_write(dec.dests, dec.srcs)
                        dyn_slot[idx] = slot
                        window.append(slot)
                        by_seq[seq] = slot
                        seq += 1
                        unissued.append(slot)
                        if timelines is not None and s_seq[slot] < tl_limit:
                            timelines[s_seq[slot]] = InstTimeline(
                                seq=s_seq[slot],
                                text=str(trace[idx].decoded.inst),
                                dispatch=now,
                            )
                    if count:
                        next_seq = seq
                        if needs_reg_events:
                            mech_quiet = 0
                if (
                    wpb_slot >= 0
                    and model_wrong_path
                    and qhead == qtail
                    and count < fetch_width
                ):
                    count += dispatch_wp(now)
                if count:
                    issue_next_try = 0
                if fetched or count:
                    did_work = True
            if profiling:
                ns_dispatch += pns() - t0
                n_dispatch += 1
            now += 1
            if max_cycles and now >= max_cycles:
                raise RuntimeError(f"simulation exceeded {max_cycles} cycles")
            if not window and qhead == qtail and ei >= n_ev:
                break
            if event_driven and not did_work:
                target = next_event(now - 1)
                if target > now:
                    if max_cycles and target >= max_cycles:
                        raise RuntimeError(
                            f"simulation exceeded {max_cycles} cycles"
                        )
                    skipped = target - now
                    skipped_total += skipped
                    jump_count += 1
                    if blockers:
                        st_tlb_dstall += skipped
                    elif qtail - qhead <= fetch_width and (
                        fe_waiting or fe_blocked > now - 1
                    ):
                        st_fe_stall += skipped
                    now = target

        # -- finalize ---------------------------------------------------------
        stats.cycles = now
        stats.committed = st_committed
        stats.issued = st_issued
        stats.loads = st_loads
        stats.stores = st_stores
        stats.branches = st_branches
        stats.mispredicts = st_mispredicts
        stats.jumps = st_jumps
        stats.tlb_miss_services = st_tlb_services
        stats.tlb_dispatch_stall_cycles = st_tlb_dstall
        stats.frontend_stall_cycles = st_fe_stall
        stats.forwarded_loads = st_fwd
        stats.itlb_misses = st_itlb
        stats.context_switches = st_ctx
        stats.icache = replace(self.plan.icache_stats)
        stats.dcache = dcache.stats
        stats.translation = mech.stats
        self.skipped_cycles = skipped_total
        self.skip_jumps = jump_count
        if profiling:
            prof.add_phase_ns("commit", ns_commit, n_commit)
            prof.add_phase_ns("kernel_batch_gather", ns_gather, n_gather)
            prof.add_phase_ns("kernel_batch_step", ns_step, n_step)
            prof.add_phase_ns("dispatch", ns_dispatch, n_dispatch)
            prof.note_run(
                cycles=stats.cycles,
                committed=stats.committed,
                skipped=skipped_total,
                jumps=jump_count,
                wall_s=time.perf_counter() - started,
            )
        return SimulationResult(self.name, stats, config)


def capture_batch_timelines(
    config: MachineConfig,
    mechanism: TranslationMechanism,
    trace: Sequence[DynInst],
    encoded: EncodedTrace | None = None,
    limit: int = 64,
) -> tuple[list[InstTimeline], SimulationResult]:
    """Run the batch backend recording the first ``limit`` instructions.

    Falls back to the base kernel's capture for the in-order model,
    mirroring the runner's fallback.
    """
    if config.issue_model != "ooo":
        return capture_kernel_timelines(config, mechanism, trace, encoded, limit)
    machine = BatchKernelMachine(
        config, mechanism, trace, encoded, timeline_limit=limit
    )
    result = machine.run()
    ordered = [machine.timelines[k] for k in sorted(machine.timelines)]
    return ordered, result
