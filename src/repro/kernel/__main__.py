"""``python -m repro.kernel`` — inspect a workload's KERN encoding.

Encodes a workload's dynamic trace, prints the per-array layout of the
``KERN`` tracefile section (element counts, dtype, serialized bytes,
geometry sub-layout), and verifies a full tracefile round trip: the
payload is written into a version-2 container, read back, decoded, and
compared for exact equality — base arrays and geometry both.  Exits
non-zero on any mismatch, so encode regressions are debuggable without
a full simulation.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro.engine.config import MachineConfig
from repro.eval.runner import _CACHE
from repro.kernel.encode import (
    _ARRAY_FIELDS,
    _GEOM_FIELDS,
    _numpy,
    decode_kernel_section,
    encode_kernel_section,
    ensure_geometry,
    geometry_params,
)
from repro.func.tracefile import SECTION_KERNEL, read_container, write_container


def _print_arrays(label: str, obj, fields: tuple) -> int:
    total = 0
    for name in fields:
        values = getattr(obj, name)
        nbytes = len(values) * 8
        total += nbytes
        print(f"  {label}.{name:<6} int64[{len(values):>7}]  {nbytes:>9} bytes")
    return total


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.kernel", description=__doc__
    )
    parser.add_argument("workload", help="workload name (e.g. compress)")
    parser.add_argument("--insts", type=int, default=20_000)
    parser.add_argument("--regs", type=int, default=32)
    parser.add_argument(
        "--pages",
        type=int,
        default=4096,
        help="page size for the geometry parameter triple (default 4096)",
    )
    parser.add_argument(
        "--no-geometry",
        action="store_true",
        help="inspect the base arrays only (geometry flag 0)",
    )
    args = parser.parse_args(argv)

    np = _numpy()
    print(f"encoder: {'numpy ' + np.__version__ if np is not None else 'stdlib'}")
    trace = _CACHE.get_trace(args.workload, args.regs, args.regs, 1.0, args.insts)
    from repro.kernel.encode import encode_trace_arrays

    encoded = encode_trace_arrays(trace)
    config = MachineConfig(page_size=args.pages)
    if not args.no_geometry:
        params = geometry_params(config)
        ensure_geometry(encoded, params)
        print(
            f"geometry params: page_shift={params[0]} "
            f"block_shift={params[1]} set_mask={params[2]:#x}"
        )

    print(f"{args.workload}: {encoded.n} instructions")
    total = _print_arrays("base", encoded, _ARRAY_FIELDS)
    if encoded.geometry is not None:
        total += _print_arrays("geom", encoded.geometry, _GEOM_FIELDS)
    payload = encode_kernel_section(encoded)
    print(f"  array bytes {total}, KERN payload {len(payload)} bytes")

    # Round trip through a real container file.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "kern.trc"
        write_container(path, {SECTION_KERNEL: payload})
        sections = read_container(path)
        decoded = decode_kernel_section(sections[SECTION_KERNEL])
    if decoded != encoded:
        print("FAIL: decoded base arrays differ from the encoding")
        return 1
    if not args.no_geometry:
        if decoded.geometry is None or decoded.geometry != encoded.geometry:
            print("FAIL: decoded geometry differs from the encoding")
            return 1
    elif decoded.geometry is not None:
        print("FAIL: geometry present after encoding without it")
        return 1
    print("round trip ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
