"""Trace-specialized compiled timing kernel.

The build-time encoder (:mod:`repro.kernel.encode`) flattens a dynamic
trace into structure-of-arrays buffers — opcode class, operand-producer
trace indices, effective addresses, store-data producers — and the
replay machine (:mod:`repro.kernel.machine`) runs the cycle loop over
those arrays, bit-identical to the interpreted engine but without
touching the instruction object graph.  Enable with
``MachineConfig.kernel=True`` or ``--kernel`` on the eval/serve CLIs.

numpy (``pip install repro[fast]``) accelerates the encoder only; the
replay loop is scalar either way, and a pure-stdlib encoder producing
byte-identical arrays is always available (set ``REPRO_NO_NUMPY=1`` to
force it).
"""

from repro.kernel.encode import (
    EncodedTrace,
    decode_kernel_section,
    encode_kernel_section,
    encode_trace_arrays,
)
from repro.kernel.machine import KernelMachine, capture_kernel_timelines

__all__ = [
    "EncodedTrace",
    "KernelMachine",
    "capture_kernel_timelines",
    "decode_kernel_section",
    "encode_kernel_section",
    "encode_trace_arrays",
]
