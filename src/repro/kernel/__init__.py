"""Trace-specialized compiled timing kernel.

The build-time encoder (:mod:`repro.kernel.encode`) flattens a dynamic
trace into structure-of-arrays buffers — opcode class, operand-producer
trace indices, effective addresses, store-data producers — and the
replay machine (:mod:`repro.kernel.machine`) runs the cycle loop over
those arrays, bit-identical to the interpreted engine but without
touching the instruction object graph.  Enable with
``MachineConfig.kernel=True`` or ``--kernel`` on the eval/serve CLIs.

The batch backend (:mod:`repro.kernel.batch`) goes further: it hoists
all address geometry (page number, cache block/set, TLB bank index,
pretranslation tag) to encode time — cached alongside the base arrays
in the ``KERN`` tracefile section — and steps each cycle's ready
wavefront through bulk gather/step/scatter phases.  Enable with
``MachineConfig.kernel_batch=True`` or ``--kernel-batch``; only the
ooo issue model has a batch backend (in-order falls back to
:class:`KernelMachine`).

numpy (``pip install repro[fast]``) accelerates the encoder and the
geometry precomputation only; a pure-stdlib path producing
byte-identical arrays is always available (set ``REPRO_NO_NUMPY=1`` to
force it).

``python -m repro.kernel <workload>`` inspects an encoding: per-array
sizes and dtypes of the KERN section plus a tracefile round-trip check.
"""

from repro.kernel.batch import BatchKernelMachine, capture_batch_timelines
from repro.kernel.encode import (
    EncodedTrace,
    TraceGeometry,
    bank_indices,
    compute_geometry,
    decode_kernel_section,
    encode_kernel_section,
    encode_trace_arrays,
    ensure_geometry,
    geometry_params,
    pretranslation_tags,
)
from repro.kernel.machine import KernelMachine, capture_kernel_timelines

__all__ = [
    "BatchKernelMachine",
    "EncodedTrace",
    "KernelMachine",
    "TraceGeometry",
    "bank_indices",
    "capture_batch_timelines",
    "capture_kernel_timelines",
    "compute_geometry",
    "decode_kernel_section",
    "encode_kernel_section",
    "encode_trace_arrays",
    "ensure_geometry",
    "geometry_params",
    "pretranslation_tags",
]
