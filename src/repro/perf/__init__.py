"""Performance instrumentation for the simulator core.

See :mod:`repro.perf.profiler` and docs/performance.md.
"""

from repro.perf.profiler import SimProfiler

__all__ = ["SimProfiler"]
