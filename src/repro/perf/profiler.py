"""Host-side performance instrumentation for the simulator core.

:class:`SimProfiler` measures where the simulator spends *host* time:
per-phase wall time (commit, issue, dispatch, ...), call counts, and the
event-driven loop's skip effectiveness (quiescent cycles jumped over
versus cycles actually executed).  It observes the run from outside the
simulated machine — attaching a profiler never changes simulated
results, only adds wrapper overhead to the host loop.

Attach one via the CLIs' ``--profile`` flag, or directly::

    prof = SimProfiler()
    Machine(config, mech, trace, profiler=prof).run()
    print(prof.render())

The per-phase wrappers cost roughly 2x on the hot loop, so profile runs
are for finding hot spots, not for benchmarking; use
``benchmarks/test_simcore_speed.py`` for timing.
"""

from __future__ import annotations

from time import perf_counter_ns


class SimProfiler:
    """Collects per-phase wall time and run-level throughput counters."""

    __slots__ = ("phase_ns", "phase_calls", "runs")

    def __init__(self):
        #: phase name -> accumulated wall nanoseconds.
        self.phase_ns: dict[str, int] = {}
        #: phase name -> number of calls.
        self.phase_calls: dict[str, int] = {}
        #: One record per completed Machine.run() (see :meth:`note_run`).
        self.runs: list[dict] = []

    def wrap(self, name: str, fn):
        """Return ``fn`` wrapped to bill its wall time to phase ``name``."""
        phase_ns = self.phase_ns
        phase_calls = self.phase_calls
        phase_ns.setdefault(name, 0)
        phase_calls.setdefault(name, 0)

        def timed(*args):
            start = perf_counter_ns()
            result = fn(*args)
            phase_ns[name] += perf_counter_ns() - start
            phase_calls[name] += 1
            return result

        return timed

    def add_phase_ns(self, name: str, ns: int, calls: int = 1) -> None:
        """Bill ``ns`` wall nanoseconds to phase ``name`` directly.

        For loops that time a phase inline (accumulating into a local)
        instead of paying a :meth:`wrap` closure call per iteration —
        the kernel replay loop uses this for its commit/issue/dispatch
        phases and for the one-off trace-encoding pass.
        """
        self.phase_ns[name] = self.phase_ns.get(name, 0) + ns
        self.phase_calls[name] = self.phase_calls.get(name, 0) + calls

    def note_run(
        self,
        *,
        cycles: int,
        committed: int,
        skipped: int,
        jumps: int,
        wall_s: float,
    ) -> None:
        """Record one completed simulation (called by ``Machine.run``)."""
        self.runs.append(
            {
                "cycles": cycles,
                "committed": committed,
                "skipped_cycles": skipped,
                "skip_jumps": jumps,
                "wall_s": wall_s,
            }
        )

    # -- reporting ---------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready summary (phases sorted by time, runs aggregated)."""
        total_cycles = sum(r["cycles"] for r in self.runs)
        total_skipped = sum(r["skipped_cycles"] for r in self.runs)
        total_wall = sum(r["wall_s"] for r in self.runs)
        phases = [
            {
                "phase": name,
                "wall_s": ns / 1e9,
                "calls": self.phase_calls[name],
            }
            for name, ns in sorted(
                self.phase_ns.items(), key=lambda kv: kv[1], reverse=True
            )
        ]
        return {
            "runs": len(self.runs),
            "sim_cycles": total_cycles,
            "skipped_cycles": total_skipped,
            "skip_jumps": sum(r["skip_jumps"] for r in self.runs),
            "executed_cycles": total_cycles - total_skipped,
            "wall_s": total_wall,
            "host_cycles_per_s": (total_cycles / total_wall) if total_wall else 0.0,
            "phases": phases,
        }

    def render(self) -> str:
        """Human-readable profile table."""
        summary = self.to_dict()
        lines = [
            "simulator core profile",
            f"  runs            : {summary['runs']}",
            f"  sim cycles      : {summary['sim_cycles']:,}"
            f" ({summary['skipped_cycles']:,} skipped in"
            f" {summary['skip_jumps']:,} jumps)",
            f"  executed cycles : {summary['executed_cycles']:,}",
            f"  wall time       : {summary['wall_s']:.3f} s"
            f" ({summary['host_cycles_per_s']:,.0f} sim cycles/s)",
            "  phase              wall(s)      calls",
        ]
        for phase in summary["phases"]:
            lines.append(
                f"  {phase['phase']:<16s} {phase['wall_s']:>9.3f} {phase['calls']:>10,}"
            )
        return "\n".join(lines)
