"""Analytical translation-cost model: predict CPI without simulating.

The cycle simulator prices a design point in seconds; this model prices
a million in one vectorized pass, from the per-workload
:class:`~repro.analysis.profile.AnalysisProfile` alone.  It follows the
decomposition the paper's data suggests — translation cost is port/bank
*contention* on the request stream plus *miss* servicing on the page
working set — with each piece driven by an exact or measured statistic:

* **Shielding**: the fraction of requests a front structure absorbs
  before they reach arbitrated ports.  Multi-level L1 shields follow
  directly from the LRU stack-distance curve (an ``e``-entry LRU L1
  hits exactly the references with distance < ``e``); pretranslation
  shields come from the profile's attachment-cache replay; piggyback
  and interleaved designs shield nothing.
* **Contention**, split into two statistics because the simulator shows
  they are hidden very differently.  *Transient* waits: each cycle with
  ``k`` simultaneous requests thins to ``Binomial(k, 1 - shield)``
  unshielded probes, which drain through the design's ports/banks under
  a small closed recurrence (same-page duplicates serialize on a bank,
  ride on a piggyback port); the out-of-order window hides most of
  these.  *Sustained overload*: the extra cycles needed to serve the
  mean busy-cycle demand at the design's steady-state throughput, which
  the window cannot hide — a saturated single port costs almost exactly
  ``refs/inst * (1 - mu/lambda)`` CPI in the simulator.  The per-``k``
  cycle frequencies come from the anchor run's measured
  ``translation_demand`` histogram.  Banked designs use the profile's
  *measured* cross-page bank-collision probability: a same-page run
  serializes inside its bank, but that drain overlaps with later
  references whenever they select other banks — which is why an
  interleaved TLB on a page-run workload behaves like several pipelined
  ports rather than one shared one.  Piggyback ports sustain
  ``ports / P(page change)`` throughput, because a granted host clears
  its whole page run across cycles.
* **Misses**: warm (capacity) misses at the backing TLB size, straight
  off the stack-distance curve.  Compulsory misses are excluded from
  the priced miss column — every design of any size takes exactly one
  per touched page, so they are a design-independent constant the
  calibration's CPI floor absorbs.  This also makes the model *exact*
  for degenerate designs: infinite capacity and full port coverage
  predict exactly zero translation stalls.  The one place compulsory
  misses *are* design-dependent is the piggyback ride credit: a rider
  merged into a missing host shares the host's 30-cycle service —
  first-touch misses included — where a port-only design serializes
  both, so the credit column is computed from the *total* miss rate.

A per-workload :func:`calibrate` step anchors the model to a handful of
cycle-simulated points in two stages.  Stage one rescales shield
efficiencies to the anchors' measured ``shielded_fraction`` and fits
``CPI = base + coef_port * port + coef_over * overload + coef_miss *
miss - coef_ride * ride`` over the *unshielded* anchors only (default
T4, T2, T1, I4/PB and the capacity-starved T4E16 — T2 pins the
transient/overload split, I4/PB prices the ride credit), so the
contention and miss coefficients are never contaminated by
front-structure effects.  Stage two measures each shielded family's
*signed* residual at its anchor (M8, P8) and carries it as an additive
offset, scaled by the ratio of unshielded fractions: the simulator
shows small but systematic, seed-stable family effects (a multi-level
or pretranslation design can land a fraction of a percent *under* T4)
that no per-cycle latency term reproduces, so the model measures them
instead of guessing.  Everything else — every size, port count, bank
count, page size, rider count — is pure prediction.

Predictions are *screening* quality: they rank designs and expose the
Pareto-relevant region, after which :mod:`repro.eval.screen` hands the
frontier back to the exact simulator.  Cross-validation against the
full Figure-5 grid is part of the test suite; committed error numbers
live in ``docs/performance.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.analysis.profile import AnalysisProfile
from repro.analysis.reusedist import _numpy

#: Design family codes (`DesignSpace.family` values).
FAMILY_MULTI = 0
FAMILY_PIGGY = 1
FAMILY_INTER = 2
FAMILY_MULTILEVEL = 3
FAMILY_PRETRANS = 4
FAMILY_PERFECT = 5

FAMILY_NAMES = {
    FAMILY_MULTI: "multi-ported",
    FAMILY_PIGGY: "piggyback",
    FAMILY_INTER: "interleaved",
    FAMILY_MULTILEVEL: "multi-level",
    FAMILY_PRETRANS: "pretranslation",
    FAMILY_PERFECT: "perfect",
}

#: Base-TLB miss service latency (MachineConfig.tlb_miss_latency).
MISS_LATENCY = 30

#: Largest per-cycle demand the drain recurrence tabulates.
MAX_DEMAND = 16

#: Cap on the unshielded-fraction ratio that scales a shielded family's
#: anchor residual onto other members: keeps a noise-level residual
#: measured at a nearly-fully-shielded anchor from being extrapolated
#: onto heavily exposed configurations.
OFFSET_RATIO_CAP = 4.0

#: Default calibration anchors: the three MULTI port counts (T2 pins
#: how much transient queueing the out-of-order window hides, between
#: the saturated T1 and free T4 extremes), one representative of each
#: shielded family, one piggybacked design (I4/PB, which prices the
#: rider miss-merging credit), and one capacity-starved point (T4E16)
#: so the miss coefficient is identifiable — the Table 2 designs all
#: back onto 128 entries, which leaves the miss column nearly constant
#: across them.
DEFAULT_ANCHORS = ("T4", "T2", "T1", "M8", "P8", "I4/PB", "T4E16")


def _require_numpy():
    np = _numpy()
    if np is None:
        raise RuntimeError(
            "the analytical screening model requires numpy "
            "(unset REPRO_NO_NUMPY or install repro[fast])"
        )
    return np


# -- the design space, structure-of-arrays ------------------------------------


@dataclass
class DesignSpace:
    """N candidate designs as parallel numpy arrays.

    Field semantics by family: ``ports`` is the arbitrated port count —
    real TLB ports for multi-ported/piggyback, the *backing* structure's
    ports for multi-level (L2) and pretranslation (base TLB).
    ``entries`` is the backing/main TLB capacity; ``shield_entries`` the
    front structure's (L1 / pretranslation cache); ``riders`` the
    piggyback port count (total, or per bank for interleaved); ``banks``
    and ``xor_select`` apply to interleaved designs only.
    """

    family: "object"
    ports: "object"
    riders: "object"
    banks: "object"
    xor_select: "object"
    entries: "object"
    shield_entries: "object"
    page_shift: "object"

    def __len__(self) -> int:
        return int(self.family.shape[0])

    @classmethod
    def from_rows(cls, rows: Sequence[Mapping]) -> "DesignSpace":
        """Build from dicts with the field names above (missing -> 0)."""
        np = _require_numpy()

        def col(name, default=0):
            return np.asarray(
                [row.get(name, default) for row in rows], dtype=np.int64
            )

        return cls(
            family=col("family"),
            ports=col("ports", 1),
            riders=col("riders"),
            banks=col("banks"),
            xor_select=col("xor_select").astype(bool),
            entries=col("entries", 128),
            shield_entries=col("shield_entries"),
            page_shift=col("page_shift", 12),
        )

    def row(self, i: int) -> dict:
        """Design ``i`` as a plain dict (the inverse of from_rows)."""
        return {
            "family": int(self.family[i]),
            "ports": int(self.ports[i]),
            "riders": int(self.riders[i]),
            "banks": int(self.banks[i]),
            "xor_select": bool(self.xor_select[i]),
            "entries": int(self.entries[i]),
            "shield_entries": int(self.shield_entries[i]),
            "page_shift": int(self.page_shift[i]),
        }

    def label(self, i: int) -> str:
        """Compact human-readable name of design ``i``."""
        fam = int(self.family[i])
        if fam == FAMILY_MULTI:
            core = f"T{int(self.ports[i])}e{int(self.entries[i])}"
        elif fam == FAMILY_PIGGY:
            core = (
                f"PB{int(self.ports[i])}+{int(self.riders[i])}"
                f"e{int(self.entries[i])}"
            )
        elif fam == FAMILY_INTER:
            sel = "X" if self.xor_select[i] else "I"
            pb = f"/pb{int(self.riders[i])}" if self.riders[i] else ""
            core = f"{sel}{int(self.banks[i])}e{int(self.entries[i])}{pb}"
        elif fam == FAMILY_MULTILEVEL:
            core = f"M{int(self.shield_entries[i])}e{int(self.entries[i])}"
        elif fam == FAMILY_PRETRANS:
            core = f"P{int(self.shield_entries[i])}e{int(self.entries[i])}"
        else:
            core = "PERFECT"
        shift = int(self.page_shift[i])
        return core if shift == 12 else f"{core}@{shift}"

    def mechanism_spec(self, i: int) -> "tuple[str, tuple] | None":
        """Declarative mechanism spec of design ``i`` for a RunRequest."""
        fam = int(self.family[i])
        if fam == FAMILY_MULTI:
            return (
                "MultiPortedTLB",
                (("ports", int(self.ports[i])), ("entries", int(self.entries[i]))),
            )
        if fam == FAMILY_PIGGY:
            return (
                "PiggybackTLB",
                (
                    ("ports", int(self.ports[i])),
                    ("piggyback_ports", int(self.riders[i])),
                    ("entries", int(self.entries[i])),
                ),
            )
        if fam == FAMILY_INTER:
            return (
                "InterleavedTLB",
                (
                    ("banks", int(self.banks[i])),
                    ("entries", int(self.entries[i])),
                    ("select", "xor" if self.xor_select[i] else "bit"),
                    ("piggyback_per_bank", int(self.riders[i])),
                ),
            )
        if fam == FAMILY_MULTILEVEL:
            return (
                "MultiLevelTLB",
                (
                    ("l1_entries", int(self.shield_entries[i])),
                    ("l2_entries", int(self.entries[i])),
                    ("l2_ports", int(self.ports[i])),
                ),
            )
        if fam == FAMILY_PRETRANS:
            return (
                "PretranslationMechanism",
                (
                    ("cache_entries", int(self.shield_entries[i])),
                    ("base_entries", int(self.entries[i])),
                    ("base_ports", int(self.ports[i])),
                ),
            )
        if fam == FAMILY_PERFECT:
            return ("PerfectTLB", ())
        raise ValueError(f"unknown family code {fam}")


#: The Table 2 mnemonics (plus PERFECT) as model rows.
_MNEMONIC_ROWS = {
    "T4": {"family": FAMILY_MULTI, "ports": 4, "entries": 128},
    "T2": {"family": FAMILY_MULTI, "ports": 2, "entries": 128},
    "T1": {"family": FAMILY_MULTI, "ports": 1, "entries": 128},
    "M16": {"family": FAMILY_MULTILEVEL, "ports": 1, "entries": 128, "shield_entries": 16},
    "M8": {"family": FAMILY_MULTILEVEL, "ports": 1, "entries": 128, "shield_entries": 8},
    "M4": {"family": FAMILY_MULTILEVEL, "ports": 1, "entries": 128, "shield_entries": 4},
    "P8": {"family": FAMILY_PRETRANS, "ports": 1, "entries": 128, "shield_entries": 8},
    "I8": {"family": FAMILY_INTER, "banks": 8, "entries": 128},
    "I4": {"family": FAMILY_INTER, "banks": 4, "entries": 128},
    "X4": {"family": FAMILY_INTER, "banks": 4, "entries": 128, "xor_select": 1},
    "PB2": {"family": FAMILY_PIGGY, "ports": 2, "riders": 2, "entries": 128},
    "PB1": {"family": FAMILY_PIGGY, "ports": 1, "riders": 3, "entries": 128},
    "I4/PB": {"family": FAMILY_INTER, "banks": 4, "entries": 128, "riders": 3},
    "PERFECT": {"family": FAMILY_PERFECT},
    # Anchor-only extension: a capacity-starved multi-ported point.
    "T4E16": {"family": FAMILY_MULTI, "ports": 4, "entries": 16},
}


def mnemonic_space(mnemonics: Sequence[str], page_shift: int = 12) -> DesignSpace:
    """The given Table 2 mnemonics as a :class:`DesignSpace`."""
    rows = []
    for m in mnemonics:
        row = dict(_MNEMONIC_ROWS[m.upper()])
        row["page_shift"] = page_shift
        rows.append(row)
    return DesignSpace.from_rows(rows)


# -- contention: the per-cycle drain recurrence -------------------------------


def _cycle_capacity(np, family, ports, riders, banks, kappa, rem, dup):
    """Expected requests served in one cycle given ``rem`` waiting.

    ``dup`` is the profile's probability that a reference shares its
    page with another reference of the same small window — the model's
    stand-in for same-cycle same-page clustering.  ``kappa`` is the
    measured cross-page bank-collision probability of each design's
    select function (zero for non-banked designs).
    """
    cap = np.where(family == FAMILY_PERFECT, rem, ports.astype(np.float64))
    piggy = family == FAMILY_PIGGY
    if piggy.any():
        overflow = np.maximum(rem - ports, 0.0)
        cap = np.where(
            piggy, ports + np.minimum(riders, overflow * dup), cap
        )
    inter = family == FAMILY_INTER
    if inter.any():
        # Same-page requests form clusters; distinct clusters engage
        # distinct banks except when the select function collides them
        # (measured kappa).  A cluster's extra members serialize inside
        # their bank, but that drain overlaps with whatever comes next
        # unless the next references collide into the same bank — so
        # duplicates cost throughput only with probability kappa.
        clusters = np.where(rem >= 1.0, 1.0 + (rem - 1.0) * (1.0 - dup), rem)
        occupied = np.minimum(
            1.0 + (clusters - 1.0) * (1.0 - kappa),
            np.maximum(banks.astype(np.float64), 1.0),
        )
        duplicates = np.maximum(rem - clusters, 0.0)
        merged = np.minimum(duplicates, riders * occupied)
        leftover = duplicates - merged
        cap = np.where(inter, occupied + merged + leftover * (1.0 - kappa), cap)
    return np.minimum(cap, rem)


def _sustained_capacity(np, space: DesignSpace, kappa, rem, dup: float):
    """Steady-state requests served per cycle at arrival level ``rem``.

    Mostly the per-cycle drain capacity, with one cross-cycle effect the
    within-burst recurrence cannot see: a piggyback port granted for one
    page clears the *whole page run* — references of that page arriving
    in later cycles ride free — so hosts are consumed by page changes,
    not references.  Sustained piggyback throughput is therefore
    ``ports / P(page change)``, bounded by the rider hardware.
    """
    cap = _cycle_capacity(
        np, space.family, space.ports, space.riders, space.banks, kappa, rem, dup
    )
    piggy = space.family == FAMILY_PIGGY
    if piggy.any():
        ports = space.ports.astype(np.float64)
        runs = ports / max(1.0 - dup, 1.0 / MAX_DEMAND)
        cap = np.where(
            piggy,
            np.maximum(cap, np.minimum(runs, ports + space.riders)),
            cap,
        )
    return cap


def _wait_table(np, space: DesignSpace, kappa, dup: float, kmax: int):
    """``W[k, i]``: expected total wait cycles when ``k`` unshielded
    requests arrive at design ``i`` in one cycle.

    Capacity is independent of TLB size, so the recurrence runs on the
    unique port-geometry rows only and scatters back — the table costs
    the same for 10^2 or 10^6 candidate designs.
    """
    geometry = np.stack(
        [
            space.family.astype(np.float64),
            space.ports.astype(np.float64),
            space.riders.astype(np.float64),
            space.banks.astype(np.float64),
            np.asarray(kappa, dtype=np.float64),
        ]
    )
    unique, inverse = np.unique(geometry, axis=1, return_inverse=True)
    family, ports, riders, banks, kap = (
        unique[0].astype(np.int64),
        unique[1],
        unique[2],
        unique[3],
        unique[4],
    )
    n = family.shape[0]
    table = np.zeros((kmax + 1, n))
    for k in range(1, kmax + 1):
        rem = np.full(n, float(k))
        wait = np.zeros(n)
        for _ in range(4 * kmax):
            served = _cycle_capacity(
                np, family, ports, riders, banks, kap, rem, dup
            )
            rem = np.maximum(rem - served, 0.0)
            wait += rem
            if rem.max() <= 1e-9:
                break
        table[k] = wait
    return table[:, inverse]


def _bank_kappa(stream, banks: int, xor: bool) -> float:
    """The stream's measured collision probability for one bank select.

    Falls back to the largest profiled bank count not above ``banks``
    (fewer banks collide more, so the substitute errs conservative) and
    to 0.5 when the profile carries no bank statistics at all.
    """
    if banks <= 1:
        return 1.0
    select = "xor" if xor else "bit"
    table = getattr(stream, "bank_collision", None) or {}
    key = f"{banks}:{select}"
    if key in table:
        return float(table[key])
    best = None
    for entry, value in table.items():
        count, _, sel = entry.partition(":")
        if sel != select:
            continue
        count = int(count)
        if count <= banks and (best is None or count > best[0]):
            best = (count, float(value))
    return best[1] if best is not None else 0.5


# -- shielding ----------------------------------------------------------------


def _shield_fractions(
    np, profile: AnalysisProfile, space: DesignSpace, mask, shift: int,
    eta_ml: float, eta_pret: float,
):
    """Shield fraction of every masked design at one page shift."""
    stream = profile.stream(shift)
    shield = np.zeros(int(mask.sum()))
    family = space.family[mask]
    entries = space.shield_entries[mask]
    ml = family == FAMILY_MULTILEVEL
    if ml.any():
        hit = 1.0 - stream.miss_rates(np.maximum(entries[ml], 1))
        shield[ml] = np.clip(hit * eta_ml, 0.0, 1.0)
    pret = family == FAMILY_PRETRANS
    if pret.any():
        sizes = sorted(stream.pretranslation_hit)
        if sizes:
            xs = np.asarray(sizes, dtype=np.float64)
            ys = np.asarray([stream.pretranslation_hit[s] for s in sizes])
            hit = np.interp(entries[pret].astype(np.float64), xs, ys)
        else:
            hit = np.zeros(int(pret.sum()))
        shield[pret] = np.clip(hit * eta_pret, 0.0, 1.0)
    shield[family == FAMILY_PERFECT] = 1.0
    return shield


# -- the model proper ---------------------------------------------------------


@dataclass
class Components:
    """Raw (uncalibrated-scale) per-instruction stall components."""

    #: Expected transient port/bank wait cycles per instruction (the
    #: within-burst drain; the out-of-order window hides most of it).
    port_cycles: "object"
    #: Expected sustained-overload cycles per instruction — extra time
    #: the design needs to serve the average busy-cycle demand at all.
    overload_cycles: "object"
    #: Expected warm-miss service cycles per instruction.
    miss_cycles: "object"
    #: Portion of ``miss_cycles`` a piggyback rider shares with its
    #: host (a rider on a missed host completes with the host, so the
    #: rider's own miss service is saved).  Enters the fit as a credit.
    ride_miss_cycles: "object"
    #: Shield fraction per design.
    shield: "object"


def stall_components(
    profile: AnalysisProfile,
    space: DesignSpace,
    groups_per_inst: Mapping[int, float],
    eta_ml: float = 1.0,
    eta_pret: float = 1.0,
) -> Components:
    """Predict both stall components for every design in ``space``.

    ``groups_per_inst`` maps simultaneous-request count ``k`` to how
    many such cycles occur per committed instruction (the anchor run's
    measured ``translation_demand`` histogram, normalized).
    """
    np = _require_numpy()
    n = len(space)
    port_cycles = np.zeros(n)
    overload_cycles = np.zeros(n)
    miss_cycles = np.zeros(n)
    ride_miss_cycles = np.zeros(n)
    shield = np.zeros(n)
    demand = sorted(
        (int(k), float(g)) for k, g in groups_per_inst.items() if k > 0 and g > 0
    )
    refs_per_inst = profile.refs_per_instruction
    for shift in np.unique(space.page_shift):
        shift = int(shift)
        mask = space.page_shift == shift
        stream = profile.stream(shift)
        sub_shield = _shield_fractions(
            np, profile, space, mask, shift, eta_ml, eta_pret
        )
        shield[mask] = sub_shield
        # -- contention: thin each k-demand cycle binomially by the
        # shield, then charge the drain recurrence's expected wait.
        # Same-cycle page matching is tighter than 4-window sharing, so
        # the rider/cluster probability uses the adjacent-pair figure.
        dup = stream.dup_within.get(2, 0.0)
        kmax = min(max((k for k, _ in demand), default=0), MAX_DEMAND)
        sub_space = DesignSpace(
            family=space.family[mask],
            ports=space.ports[mask],
            riders=space.riders[mask],
            banks=space.banks[mask],
            xor_select=space.xor_select[mask],
            entries=space.entries[mask],
            shield_entries=space.shield_entries[mask],
            page_shift=space.page_shift[mask],
        )
        kappa = np.zeros(int(mask.sum()))
        inter = sub_space.family == FAMILY_INTER
        if inter.any():
            combos = np.unique(
                np.stack(
                    [
                        sub_space.banks[inter],
                        sub_space.xor_select[inter].astype(np.int64),
                    ]
                ),
                axis=1,
            )
            for b, x in combos.T:
                sel = inter & (sub_space.banks == b) & (
                    sub_space.xor_select == bool(x)
                )
                kappa[sel] = _bank_kappa(stream, int(b), bool(x))
        waits = _wait_table(np, sub_space, kappa, dup, kmax) if kmax else None
        q = np.clip(1.0 - sub_shield, 0.0, 1.0)  # unshielded probability
        sub_port = np.zeros(int(mask.sum()))
        for k, groups in demand:
            k = min(k, MAX_DEMAND)
            # Binomial(k, q) over j surviving requests, iteratively:
            # weight(j) built from weight(j-1) * (k-j+1)/j * q/(1-q)
            # would divide by zero at q in {0,1}; the direct form is
            # cheap for k <= MAX_DEMAND.
            expected = np.zeros_like(sub_port)
            for j in range(1, k + 1):
                comb = _comb(k, j)
                weight = comb * q**j * (1.0 - q) ** (k - j)
                expected += weight * waits[j]
            sub_port += groups * expected
        port_cycles[mask] = sub_port
        # -- sustained overload: extra cycles per instruction the design
        # needs just to keep up with the *average* busy-cycle demand.
        # Transient burst waits above mostly hide inside the out-of-order
        # window; time the machine spends over sustained capacity cannot.
        busy = sum(g for _, g in demand)
        if busy > 0:
            lam = sum(k * g for k, g in demand) / busy
            arrival = lam * q
            mu = _sustained_capacity(
                np, sub_space, kappa, np.maximum(arrival, 1.0), dup
            )
            overload_cycles[mask] = busy * np.maximum(
                arrival / np.maximum(mu, 1e-9) - 1.0, 0.0
            )
        # -- warm misses at the backing capacity (compulsory excluded;
        # see module docstring).  Banked designs keep their full
        # capacity: the select functions spread pages evenly enough
        # that the simulator shows no measurable banking miss penalty.
        capacity = space.entries[mask].astype(np.float64)
        total_miss = stream.miss_rates(capacity)
        warm_miss = total_miss
        if stream.references:
            warm_miss = np.maximum(
                total_miss - stream.cold / stream.references, 0.0
            )
        perfect = sub_space.family == FAMILY_PERFECT
        warm_miss[perfect] = 0.0
        total_miss = np.where(perfect, 0.0, total_miss)
        miss_cycles[mask] = warm_miss * refs_per_inst * MISS_LATENCY
        # -- rider miss merging: a reference that rides a piggyback port
        # shares its (same-page) host's miss service instead of queueing
        # its own, so the expected riding fraction of references enters
        # the fit as a miss credit column.  The credit covers *total*
        # misses — compulsory ones merge too, which is how a piggybacked
        # design can land below the wide-ported ideal in the simulator.
        refs_in_groups = sum(k * g for k, g in demand)
        if refs_in_groups > 0:
            ports_f = sub_space.ports.astype(np.float64)
            riders_f = sub_space.riders.astype(np.float64)
            piggy = sub_space.family == FAMILY_PIGGY
            inter_pb = (sub_space.family == FAMILY_INTER) & (sub_space.riders > 0)
            rides = np.zeros(int(mask.sum()))
            for k, groups in demand:
                k = float(min(k, MAX_DEMAND))
                per_cycle = np.where(
                    piggy,
                    np.minimum(np.maximum(k - ports_f, 0.0) * dup, riders_f),
                    0.0,
                )
                per_cycle = np.where(
                    inter_pb,
                    np.minimum(
                        (k - 1.0) * dup,
                        riders_f * np.maximum(sub_space.banks, 1),
                    ),
                    per_cycle,
                )
                rides += groups * per_cycle
            ride_frac = np.clip(rides / refs_in_groups, 0.0, 1.0)
            ride_miss_cycles[mask] = (
                total_miss * refs_per_inst * MISS_LATENCY * ride_frac
            )
    return Components(
        port_cycles=port_cycles,
        overload_cycles=overload_cycles,
        miss_cycles=miss_cycles,
        ride_miss_cycles=ride_miss_cycles,
        shield=shield,
    )


def _comb(k: int, j: int) -> float:
    import math

    return float(math.comb(k, j))


# -- calibration --------------------------------------------------------------


@dataclass
class Calibration:
    """Per-workload anchor fit; everything predict() needs besides the space."""

    workload: str
    #: k simultaneous requests -> cycles per committed instruction.
    groups_per_inst: dict
    #: Shield-efficiency rescales measured at the anchors.
    eta_ml: float = 1.0
    eta_pret: float = 1.0
    #: CPI = cpi_base + coef_port * port_cycles + coef_over *
    #: overload_cycles + coef_miss * miss_cycles - coef_ride *
    #: ride_miss_cycles + family offset (below).
    cpi_base: float = 1.0
    coef_port: float = 1.0
    coef_over: float = 0.0
    coef_miss: float = 1.0
    coef_ride: float = 0.0
    #: Signed residuals measured at the shielded-family anchors, and the
    #: anchors' unshielded fractions used to scale them onto other
    #: family members (see :func:`_family_offsets`).
    delta_ml: float = 0.0
    delta_pret: float = 0.0
    q_ml: float = 0.0
    q_pret: float = 0.0
    #: Anchor diagnostics: mnemonic -> (measured CPI, fitted CPI).
    anchor_fit: dict = field(default_factory=dict)

    def to_payload(self) -> dict:
        return {
            "workload": self.workload,
            "groups_per_inst": {str(k): v for k, v in self.groups_per_inst.items()},
            "eta_ml": self.eta_ml,
            "eta_pret": self.eta_pret,
            "cpi_base": self.cpi_base,
            "coef_port": self.coef_port,
            "coef_over": self.coef_over,
            "coef_miss": self.coef_miss,
            "coef_ride": self.coef_ride,
            "delta_ml": self.delta_ml,
            "delta_pret": self.delta_pret,
            "q_ml": self.q_ml,
            "q_pret": self.q_pret,
            "anchor_fit": {k: list(v) for k, v in self.anchor_fit.items()},
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Calibration":
        return cls(
            workload=payload["workload"],
            groups_per_inst={
                int(k): float(v) for k, v in payload["groups_per_inst"].items()
            },
            eta_ml=float(payload["eta_ml"]),
            eta_pret=float(payload["eta_pret"]),
            cpi_base=float(payload["cpi_base"]),
            coef_port=float(payload["coef_port"]),
            coef_over=float(payload.get("coef_over", 0.0)),
            coef_miss=float(payload["coef_miss"]),
            coef_ride=float(payload.get("coef_ride", 0.0)),
            delta_ml=float(payload.get("delta_ml", 0.0)),
            delta_pret=float(payload.get("delta_pret", 0.0)),
            q_ml=float(payload.get("q_ml", 0.0)),
            q_pret=float(payload.get("q_pret", 0.0)),
            anchor_fit={k: tuple(v) for k, v in payload["anchor_fit"].items()},
        )


def _measured_cpi(result) -> float:
    stats = result.stats
    return stats.cycles / stats.committed if stats.committed else 0.0


def calibrate(
    profile: AnalysisProfile,
    anchor_results: Mapping[str, "object"],
    page_shift: int = 12,
) -> Calibration:
    """Fit the model to cycle-simulated anchor runs of one workload.

    ``anchor_results`` maps design mnemonics to finished
    :class:`~repro.eval.runner.RunResult` objects.  The demand
    histogram is taken from the widest-ported anchor present (its
    request stream is least perturbed by port back-pressure).
    """
    np = _require_numpy()
    if not anchor_results:
        raise ValueError("calibration needs at least one anchor result")
    # Demand histogram: prefer T4, else the anchor with most ports.
    order = sorted(
        anchor_results,
        key=lambda m: (m != "T4", m),
    )
    demand_source = anchor_results[order[0]]
    committed = max(demand_source.stats.committed, 1)
    groups = {
        int(k): cycles / committed
        for k, cycles in demand_source.stats.translation_demand.items()
        if int(k) > 0
    }
    cal = Calibration(workload=profile.workload, groups_per_inst=groups)

    # Shield-efficiency rescales from measured shielded fractions.
    stream = profile.stream(page_shift)
    for mnemonic, result in anchor_results.items():
        row = _MNEMONIC_ROWS.get(mnemonic.upper())
        if row is None:
            continue
        measured = result.stats.translation.shielded_fraction
        if row["family"] == FAMILY_MULTILEVEL:
            raw = 1.0 - stream.miss_rate(row["shield_entries"])
            if raw > 0:
                cal.eta_ml = min(measured / raw, 1.0 / max(raw, 1e-9))
        elif row["family"] == FAMILY_PRETRANS:
            raw = stream.pretranslation_hit.get(row["shield_entries"])
            if raw is None:
                sizes = sorted(stream.pretranslation_hit)
                raw = (
                    float(
                        np.interp(
                            row["shield_entries"],
                            np.asarray(sizes, dtype=np.float64),
                            np.asarray(
                                [stream.pretranslation_hit[s] for s in sizes]
                            ),
                        )
                    )
                    if sizes
                    else 0.0
                )
            if raw > 0:
                cal.eta_pret = min(measured / raw, 1.0 / max(raw, 1e-9))

    # Stage 1: non-negative least squares over the *unshielded* anchors
    # only, so contention and miss coefficients stay clean of
    # front-structure effects (falls back to every anchor if too few
    # qualify).  Slopes are fit on deltas relative to the reference
    # anchor (T4 when present) so the reference is reproduced exactly —
    # every low-stall design's prediction inherits its accuracy, which
    # is what near-tied orderings at the top of a ranking hinge on.
    mnemonics = list(anchor_results)
    space = mnemonic_space(mnemonics, page_shift=page_shift)
    parts = stall_components(
        profile, space, groups, eta_ml=cal.eta_ml, eta_pret=cal.eta_pret
    )
    y = np.asarray([_measured_cpi(anchor_results[m]) for m in mnemonics])
    families = [
        _MNEMONIC_ROWS[m.upper()]["family"]
        for m in mnemonics
    ]
    shielded = (FAMILY_MULTILEVEL, FAMILY_PRETRANS)
    stage1 = [i for i, fam in enumerate(families) if fam not in shielded]
    if len(stage1) < 2:
        stage1 = list(range(len(mnemonics)))
    ref = next((i for i in stage1 if mnemonics[i].upper() == "T4"), stage1[0])
    rest = [i for i in stage1 if i != ref]
    raw_cols = (
        parts.port_cycles,
        parts.overload_cycles,
        parts.miss_cycles,
        -parts.ride_miss_cycles,
    )
    if rest:
        idx = np.asarray(rest)
        deltas = [c[idx] - c[ref] for c in raw_cols]
        coef = _nonneg_fit(np, deltas, y[idx] - y[ref], free=())
    else:
        coef = np.zeros(len(raw_cols))
    cal.coef_port, cal.coef_over, cal.coef_miss, cal.coef_ride = (
        float(coef[0]),
        float(coef[1]),
        float(coef[2]),
        float(coef[3]),
    )
    slope = sum(c * col[ref] for c, col in zip(coef, raw_cols))
    cal.cpi_base = float(y[ref] - slope)
    # Stage 2: each shielded family's signed residual at its anchor(s),
    # plus the anchor's unshielded fraction for ratio scaling.
    stage1_fit = cal.cpi_base + sum(c * col for c, col in zip(coef, raw_cols))
    for target, delta_attr, q_attr in (
        (FAMILY_MULTILEVEL, "delta_ml", "q_ml"),
        (FAMILY_PRETRANS, "delta_pret", "q_pret"),
    ):
        members = [i for i, fam in enumerate(families) if fam == target]
        if not members:
            continue
        residuals = [float(y[i] - stage1_fit[i]) for i in members]
        exposures = [float(1.0 - parts.shield[i]) for i in members]
        setattr(cal, delta_attr, sum(residuals) / len(residuals))
        setattr(cal, q_attr, sum(exposures) / len(exposures))
    fitted = stage1_fit + _family_offsets(np, cal, parts, space.family)
    cal.anchor_fit = {
        m: (float(y[i]), float(fitted[i])) for i, m in enumerate(mnemonics)
    }
    return cal


def _family_offsets(np, cal: "Calibration", parts: Components, family):
    """Per-design additive offsets from the shielded-family residuals.

    A family's anchor residual is scaled by the ratio of the design's
    unshielded fraction to the anchor's (capped at
    :data:`OFFSET_RATIO_CAP`): the measured effect tracks how much
    traffic actually reaches the backing structure, and a fully
    shielded design (q -> 0) keeps the degenerate-exactness property of
    zero predicted translation cost.
    """
    offsets = np.zeros(family.shape[0])
    for target, delta, q_anchor in (
        (FAMILY_MULTILEVEL, cal.delta_ml, cal.q_ml),
        (FAMILY_PRETRANS, cal.delta_pret, cal.q_pret),
    ):
        members = family == target
        if not members.any() or not delta:
            continue
        q = 1.0 - parts.shield[members]
        if q_anchor > 1e-6:
            scale = np.clip(q / q_anchor, 0.0, OFFSET_RATIO_CAP)
        else:
            scale = (q > 1e-6).astype(np.float64)
        offsets[members] = delta * scale
    return offsets


def _nonneg_fit(np, columns, y, free=(0,)):
    """Least squares with slope columns clamped non-negative.

    Columns listed in ``free`` (by default an intercept at position 0)
    may go negative; any other negative fitted slope is dropped (clamped
    to 0) and the rest refit — with a handful of columns this tiny
    active-set loop is exact enough for calibration.
    """
    active = list(range(len(columns)))
    while active:
        X = np.stack([columns[i] for i in active], axis=1)
        fit, *_ = np.linalg.lstsq(X, y, rcond=None)
        negative = [
            active[j]
            for j in range(len(active))
            if active[j] not in free and fit[j] < 0
        ]
        if not negative:
            coef = np.zeros(len(columns))
            for j, i in enumerate(active):
                coef[i] = fit[j]
            return coef
        active = [i for i in active if i not in negative]
    return np.zeros(len(columns))


# -- prediction ---------------------------------------------------------------


@dataclass
class Prediction:
    """Vectorized model output for a design space."""

    #: Predicted CPI per design.
    cpi: "object"
    #: Predicted translation stall cycles per instruction (both kinds,
    #: in calibrated CPI units).
    translation_cpi: "object"
    components: Components


def predict(
    profile: AnalysisProfile, calibration: Calibration, space: DesignSpace
) -> Prediction:
    """Predicted CPI of every design in ``space`` for one workload."""
    np = _require_numpy()
    parts = stall_components(
        profile,
        space,
        calibration.groups_per_inst,
        eta_ml=calibration.eta_ml,
        eta_pret=calibration.eta_pret,
    )
    stalls = (
        calibration.coef_port * parts.port_cycles
        + calibration.coef_over * parts.overload_cycles
        + calibration.coef_miss * parts.miss_cycles
        - calibration.coef_ride * parts.ride_miss_cycles
        + _family_offsets(np, calibration, parts, space.family)
    )
    return Prediction(
        cpi=calibration.cpi_base + stalls,
        translation_cpi=stalls,
        components=parts,
    )
