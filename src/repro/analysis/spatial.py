"""Spatial-locality and base-register-reuse profiling.

Quantifies the two workload properties the paper's new mechanisms
exploit:

* *same-page adjacency* — how often consecutive (and near-simultaneous)
  data references touch the same virtual page.  This is the locality
  piggyback ports combine at the TLB port;
* *base-register page reuse* — how often a load/store through a base
  register hits the same page as the previous access through that
  register.  This is the reuse pretranslation attaches to register
  values (an upper bound on its shielding, before capacity/flush loss).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.func.executor import Executor
from repro.workloads import make_workload


@dataclass
class SpatialProfile:
    """Reference-stream locality summary for one workload."""

    workload: str
    references: int = 0
    distinct_pages: int = 0
    #: Fraction of references to the same page as the previous reference.
    same_page_adjacent: float = 0.0
    #: Fraction of windowed reference groups (size <= 4, a dispatch
    #: group's worth) whose members all share one page.
    same_page_group4: float = 0.0
    #: Fraction of accesses whose base register points at the same page
    #: it pointed at on its previous dereference.
    base_register_page_reuse: float = 0.0
    #: Page footprint histogram by region tag.
    pages_by_region: dict = field(default_factory=dict)


_REGIONS = (
    ("globals", 0x1000_0000, 0x2000_0000),
    ("heap", 0x2000_0000, 0x6000_0000),
    ("stack", 0x7000_0000, 0x7FF0_0000),
    ("spill", 0x7FF0_0000, 0x8000_0000),
)


def _region_of(vaddr: int) -> str:
    for name, lo, hi in _REGIONS:
        if lo <= vaddr < hi:
            return name
    return "other"


def profile_workload(
    workload: str,
    max_instructions: int = 60_000,
    page_shift: int = 12,
    int_regs: int = 32,
    fp_regs: int = 32,
    scale: float = 1.0,
) -> SpatialProfile:
    """Run a workload functionally and profile its reference stream."""
    build = make_workload(workload).build(int_regs=int_regs, fp_regs=fp_regs, scale=scale)
    executor = Executor(build.program, build.memory)
    profile = SpatialProfile(workload=workload)

    pages: set[int] = set()
    region_pages: dict[str, set[int]] = {}
    prev_page: int | None = None
    adjacent_same = 0
    base_page: dict[int, int] = {}
    base_reuse_hits = 0
    base_reuse_total = 0
    window: list[int] = []
    groups = uniform_groups = 0

    for dyn in executor.run(max_instructions=max_instructions):
        if dyn.ea is None:
            continue
        profile.references += 1
        page = dyn.ea >> page_shift
        pages.add(page)
        region_pages.setdefault(_region_of(dyn.ea), set()).add(page)
        if prev_page == page:
            adjacent_same += 1
        prev_page = page
        base = dyn.decoded.base_reg
        if base is not None:
            base_reuse_total += 1
            if base_page.get(base) == page:
                base_reuse_hits += 1
            base_page[base] = page
        window.append(page)
        if len(window) == 4:
            groups += 1
            if len(set(window)) == 1:
                uniform_groups += 1
            window.clear()

    refs = profile.references
    profile.distinct_pages = len(pages)
    profile.same_page_adjacent = adjacent_same / refs if refs else 0.0
    profile.same_page_group4 = uniform_groups / groups if groups else 0.0
    profile.base_register_page_reuse = (
        base_reuse_hits / base_reuse_total if base_reuse_total else 0.0
    )
    profile.pages_by_region = {k: len(v) for k, v in sorted(region_pages.items())}
    return profile
