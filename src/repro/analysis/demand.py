"""Translation bandwidth-demand analysis of timing runs.

Summarizes the machine's measured distribution of simultaneous
translation requests per cycle — the empirical version of the paper's
opening claim that multiple-issue processors place "increasing bandwidth
demands on the address translation mechanism".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.machine import SimulationResult


@dataclass
class DemandProfile:
    """Distribution of simultaneous translation requests per cycle."""

    name: str
    #: requests-per-cycle -> number of cycles (cycles with 0 excluded).
    histogram: dict
    cycles: int
    requests: int

    @property
    def active_cycles(self) -> int:
        """Cycles with at least one translation request."""
        return sum(self.histogram.values())

    @property
    def mean_per_active_cycle(self) -> float:
        """Average simultaneous requests, over request-carrying cycles."""
        if not self.active_cycles:
            return 0.0
        return (
            sum(k * v for k, v in self.histogram.items()) / self.active_cycles
        )

    def fraction_needing_ports(self, ports: int) -> float:
        """Fraction of active cycles demanding more than ``ports``."""
        if not self.active_cycles:
            return 0.0
        over = sum(v for k, v in self.histogram.items() if k > ports)
        return over / self.active_cycles

    def render(self) -> str:
        """Human-readable summary."""
        lines = [f"translation demand — {self.name}"]
        total = self.active_cycles or 1
        for k in sorted(self.histogram):
            frac = self.histogram[k] / total
            bar = "#" * round(40 * frac)
            lines.append(f"  {k} req/cycle: {frac:6.1%} {bar}")
        lines.append(
            f"  mean {self.mean_per_active_cycle:.2f} req per active cycle; "
            f">{1} port needed in {self.fraction_needing_ports(1):.1%}, "
            f">{2} in {self.fraction_needing_ports(2):.1%} of active cycles"
        )
        return "\n".join(lines)


def demand_profile(result: SimulationResult) -> DemandProfile:
    """Extract the demand profile from a finished timing run."""
    stats = result.stats
    return DemandProfile(
        name=result.name,
        histogram=dict(stats.translation_demand),
        cycles=stats.cycles,
        requests=stats.translation.requests,
    )
