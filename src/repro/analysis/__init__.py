"""Workload and mechanism analysis tools.

These support (and extend) the paper's evaluation:

``reusedist``
    Mattson stack-distance analysis of the page reference stream: exact
    LRU miss rates for *every* TLB size in one pass — the one-pass
    generalization of Figure 6's LRU points.
``spatial``
    Page-footprint and same-page-burst profiling: quantifies the spatial
    locality in simultaneous requests that piggyback ports exploit, and
    the base-register reuse that pretranslation exploits.
``demand``
    Translation bandwidth-demand summaries from timing runs (the
    measured distribution of simultaneous requests per cycle).
``profile``
    One-pass workload profiles for the analytical model: per-page-size
    reference-stream statistics (miss curves, duplicate fractions,
    shield hit rates) plus the demand histogram, cacheable as artifacts.
``atmodel``
    The analytical translation-cost model itself: a vectorized
    predictor of per-design translation stalls and CPI, calibrated per
    workload against a handful of cycle-simulated anchor runs.  Feeds
    :mod:`repro.eval.screen`, which turns design-space sweeps into
    Pareto search.
"""

from repro.analysis.atmodel import (
    Calibration,
    DesignSpace,
    Prediction,
    calibrate,
    mnemonic_space,
    predict,
    stall_components,
)
from repro.analysis.demand import demand_profile, DemandProfile
from repro.analysis.profile import AnalysisProfile, ProfileParams, build_profile
from repro.analysis.reusedist import StackDistanceAnalyzer, lru_miss_curve
from repro.analysis.spatial import SpatialProfile, profile_workload

__all__ = [
    "AnalysisProfile",
    "Calibration",
    "DemandProfile",
    "DesignSpace",
    "Prediction",
    "ProfileParams",
    "SpatialProfile",
    "StackDistanceAnalyzer",
    "build_profile",
    "calibrate",
    "demand_profile",
    "lru_miss_curve",
    "mnemonic_space",
    "predict",
    "profile_workload",
    "stall_components",
]
