"""Workload and mechanism analysis tools.

These support (and extend) the paper's evaluation:

``reusedist``
    Mattson stack-distance analysis of the page reference stream: exact
    LRU miss rates for *every* TLB size in one pass — the one-pass
    generalization of Figure 6's LRU points.
``spatial``
    Page-footprint and same-page-burst profiling: quantifies the spatial
    locality in simultaneous requests that piggyback ports exploit, and
    the base-register reuse that pretranslation exploits.
``demand``
    Translation bandwidth-demand summaries from timing runs (the
    measured distribution of simultaneous requests per cycle).
"""

from repro.analysis.demand import demand_profile, DemandProfile
from repro.analysis.reusedist import StackDistanceAnalyzer, lru_miss_curve
from repro.analysis.spatial import SpatialProfile, profile_workload

__all__ = [
    "DemandProfile",
    "SpatialProfile",
    "StackDistanceAnalyzer",
    "demand_profile",
    "lru_miss_curve",
    "profile_workload",
]
