"""Mattson stack-distance (reuse-distance) analysis.

For an LRU-managed fully-associative TLB, a reference hits in a TLB of
``k`` entries exactly when its *stack distance* — the number of distinct
pages referenced since the last touch of this page — is less than ``k``.
One pass over the reference stream therefore yields the exact LRU miss
rate at every capacity simultaneously (Mattson et al., 1970), which is
how we cross-check Figure 6's LRU points and how users can explore
arbitrary L1-TLB sizes without re-simulating.

The implementation keeps the LRU stack as an order-statistics list over
a balanced structure; for the modest distinct-page counts of these
workloads a simple list with ``index()`` would be O(n) per reference, so
we use a Fenwick tree over reference timestamps — the standard
O(log n)-per-reference algorithm.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class _Fenwick:
    """Binary indexed tree over reference timestamps."""

    __slots__ = ("size", "tree")

    def __init__(self, size: int):
        self.size = size
        self.tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        i = index + 1
        while i <= self.size:
            self.tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries at positions <= index."""
        i = index + 1
        total = 0
        while i > 0:
            total += self.tree[i]
            i -= i & (-i)
        return total


class StackDistanceAnalyzer:
    """Streaming stack-distance histogram for a page reference stream."""

    def __init__(self, expected_references: int = 1 << 20):
        self._fenwick = _Fenwick(expected_references)
        self._last_use: dict[int, int] = {}
        self._time = 0
        #: Histogram: stack distance -> count.  Cold (first-touch)
        #: references are counted separately in :attr:`cold`.
        self.histogram: dict[int, int] = {}
        self.cold = 0
        self.references = 0

    def touch(self, page: int) -> int | None:
        """Record a reference; returns its stack distance (None = cold)."""
        if self._time >= self._fenwick.size:
            raise OverflowError("analyzer capacity exceeded; size it larger")
        self.references += 1
        last = self._last_use.get(page)
        distance: int | None = None
        if last is None:
            self.cold += 1
        else:
            # Each *live* timestamp in (last, now) is some page's most
            # recent use, so their count is exactly the number of
            # distinct pages touched since this page's last use.
            distance = self._fenwick.prefix_sum(self._time - 1) - self._fenwick.prefix_sum(
                last
            )
            self.histogram[distance] = self.histogram.get(distance, 0) + 1
            self._fenwick.add(last, -1)
        self._fenwick.add(self._time, +1)
        self._last_use[page] = self._time
        self._time += 1
        return distance

    def miss_rate(self, capacity: int) -> float:
        """Exact LRU miss rate for a ``capacity``-entry TLB."""
        if self.references == 0:
            return 0.0
        hits = sum(
            count for dist, count in self.histogram.items() if dist < capacity
        )
        return 1.0 - hits / self.references

    def miss_curve(self, capacities: Sequence[int]) -> dict[int, float]:
        """Exact LRU miss rates at each capacity."""
        return {c: self.miss_rate(c) for c in capacities}

    def distinct_pages(self) -> int:
        """Number of distinct pages referenced."""
        return len(self._last_use)


def lru_miss_curve(
    pages: Iterable[int], capacities: Sequence[int] = (4, 8, 16, 32, 64, 128)
) -> dict[int, float]:
    """Convenience: exact LRU miss rates of a page stream."""
    analyzer = StackDistanceAnalyzer()
    for page in pages:
        analyzer.touch(page)
    return analyzer.miss_curve(capacities)
