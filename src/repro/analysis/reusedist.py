"""Mattson stack-distance (reuse-distance) analysis.

For an LRU-managed fully-associative TLB, a reference hits in a TLB of
``k`` entries exactly when its *stack distance* — the number of distinct
pages referenced since the last touch of this page — is less than ``k``.
One pass over the reference stream therefore yields the exact LRU miss
rate at every capacity simultaneously (Mattson et al., 1970), which is
how we cross-check Figure 6's LRU points, how the screening model
(:mod:`repro.analysis.atmodel`) prices every candidate TLB size, and how
users can explore arbitrary L1-TLB sizes without re-simulating.

Two implementations, same exact histogram:

* the streaming :class:`StackDistanceAnalyzer` keeps the LRU stack as a
  Fenwick tree over reference timestamps — the standard
  O(log n)-per-reference algorithm, pure stdlib, grows on demand;
* :func:`compute_stack_distances` processes a whole stream at once.
  With numpy available it runs a vectorized offline algorithm
  (previous-occurrence array via a stable argsort, then the nested-reuse
  correction as a bottom-up merge count); without numpy — or with
  ``REPRO_NO_NUMPY=1``, mirroring :mod:`repro.kernel.encode` — it falls
  back to the streaming analyzer.  The two paths are byte-identical:
  distances are exact integers either way.

The vectorized identity: with ``prev[i]`` the index of the previous
reference to ``page[i]`` (undefined on first touch), the stack distance
is the number of distinct pages in the window ``(prev[i], i)``.  Every
reference in that window whose own previous occurrence also falls inside
the window repeats a page already counted, so

``distance[i] = (i - prev[i] - 1) - #{k < i : prev[k] defined and prev[k] > prev[i]}``

(the constraint ``prev[k] > prev[i]`` already confines ``k`` to the
window, since ``prev[k] < k``).  The correction term is a per-element
"how many earlier entries are greater" count over the sequence of
``prev`` values, which a bottom-up merge computes with nothing but
reshapes, per-block sorts, and one flat ``searchsorted`` per level.
"""

from __future__ import annotations

from repro.env import env_bool
from typing import Iterable, Sequence


def _numpy():
    """numpy, or ``None`` when absent or disabled via REPRO_NO_NUMPY."""
    if env_bool("REPRO_NO_NUMPY"):
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is normally present
        return None
    return numpy


class _Fenwick:
    """Binary indexed tree over reference timestamps."""

    __slots__ = ("size", "tree")

    def __init__(self, size: int):
        self.size = size
        self.tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        i = index + 1
        while i <= self.size:
            self.tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries at positions <= index."""
        i = index + 1
        total = 0
        while i > 0:
            total += self.tree[i]
            i -= i & (-i)
        return total


class StackDistanceAnalyzer:
    """Streaming stack-distance histogram for a page reference stream."""

    def __init__(self, expected_references: int = 1 << 20):
        self._fenwick = _Fenwick(max(int(expected_references), 1))
        self._last_use: dict[int, int] = {}
        self._time = 0
        #: Histogram: stack distance -> count.  Cold (first-touch)
        #: references are counted separately in :attr:`cold`.
        self.histogram: dict[int, int] = {}
        self.cold = 0
        self.references = 0

    def _grow(self) -> None:
        """Double the timestamp capacity, carrying the live stack over.

        Only the most recent timestamp of each distinct page is live in
        the tree, so rebuilding costs O(pages log n) — streams longer
        than ``expected_references`` degrade gracefully instead of
        raising.
        """
        grown = _Fenwick(max(self._fenwick.size * 2, 1024))
        for timestamp in self._last_use.values():
            grown.add(timestamp, +1)
        self._fenwick = grown

    def touch(self, page: int) -> int | None:
        """Record a reference; returns its stack distance (None = cold)."""
        if self._time >= self._fenwick.size:
            self._grow()
        self.references += 1
        last = self._last_use.get(page)
        distance: int | None = None
        if last is None:
            self.cold += 1
        else:
            # Each *live* timestamp in (last, now) is some page's most
            # recent use, so their count is exactly the number of
            # distinct pages touched since this page's last use.
            distance = self._fenwick.prefix_sum(self._time - 1) - self._fenwick.prefix_sum(
                last
            )
            self.histogram[distance] = self.histogram.get(distance, 0) + 1
            self._fenwick.add(last, -1)
        self._fenwick.add(self._time, +1)
        self._last_use[page] = self._time
        self._time += 1
        return distance

    @classmethod
    def from_pages(cls, pages: Sequence[int]) -> "StackDistanceAnalyzer":
        """Bulk-build an analyzer over a whole stream at once.

        Uses the vectorized :func:`compute_stack_distances` when numpy
        is available; the result — histogram, cold count, and the live
        LRU state for further :meth:`touch` calls — is identical to
        streaming the pages one at a time.
        """
        pages = list(pages)
        analyzer = cls(expected_references=max(len(pages), 1))
        np = _numpy()
        if np is None:
            for page in pages:
                analyzer.touch(page)
            return analyzer
        distances = _distances_numpy(np, pages)
        warm = distances[distances >= 0]
        values, counts = np.unique(warm, return_counts=True)
        analyzer.histogram = {int(v): int(c) for v, c in zip(values, counts)}
        analyzer.references = len(pages)
        analyzer.cold = len(pages) - int(warm.size)
        # Later duplicates win in dict(zip(...)), yielding last-use times.
        analyzer._last_use = dict(zip(pages, range(len(pages))))
        analyzer._time = len(pages)
        for timestamp in analyzer._last_use.values():
            analyzer._fenwick.add(timestamp, +1)
        return analyzer

    def miss_rate(self, capacity: int) -> float:
        """Exact LRU miss rate for a ``capacity``-entry TLB.

        Defined for every stream: an empty stream has miss rate 0.0 and
        a cold-only stream (no finite distances) has miss rate 1.0.
        """
        if self.references == 0:
            return 0.0
        hits = sum(
            count for dist, count in self.histogram.items() if dist < capacity
        )
        return 1.0 - hits / self.references

    def miss_curve(self, capacities: Sequence[int]) -> dict[int, float]:
        """Exact LRU miss rates at each capacity."""
        return {c: self.miss_rate(c) for c in capacities}

    def distinct_pages(self) -> int:
        """Number of distinct pages referenced."""
        return len(self._last_use)


def _count_prev_greater(np, values):
    """For each element, how many *earlier* elements are strictly greater.

    ``values`` must be pairwise distinct (previous-occurrence indices
    are).  Bottom-up merge count: at each level, blocks of width ``2h``
    split into a sorted left half and an in-order right half; a single
    flat ``searchsorted`` (left halves offset into disjoint per-row
    value ranges) counts, for every right element, the left elements
    less-or-equal — the complement is its earlier-and-greater
    contribution from that level.  O(n log^2 n), all vectorized.
    """
    m = int(values.size)
    if m <= 1:
        return np.zeros(m, dtype=np.int64)
    padded = 1 << (m - 1).bit_length()
    lo = int(values.min())
    hi = int(values.max())
    # Tail sentinels below every real value: as left-half elements they
    # are never "greater", and their own counts are discarded.
    x = np.concatenate(
        [
            values.astype(np.int64),
            np.full(padded - m, lo - 1, dtype=np.int64),
        ]
    )
    counts = np.zeros(padded, dtype=np.int64)
    positions = np.arange(padded, dtype=np.int64)
    span = hi - lo + 3  # row value ranges stay disjoint after offsetting
    half = 1
    while half < padded:
        width = 2 * half
        blocks = x.reshape(-1, width)
        pos = positions.reshape(-1, width)
        rows = blocks.shape[0]
        left_sorted = np.sort(blocks[:, :half], axis=1)
        right = blocks[:, half:]
        row_offset = np.arange(rows, dtype=np.int64)[:, None] * span
        flat_left = (left_sorted + row_offset).ravel()
        flat_right = (right + row_offset).ravel()
        rank = np.searchsorted(flat_left, flat_right, side="right")
        less_equal = rank - np.repeat(
            np.arange(rows, dtype=np.int64) * half, half
        )
        counts[pos[:, half:].ravel()] += half - less_equal
        half = width
    return counts[:m]


def _distances_numpy(np, pages):
    """Exact stack distances for a whole stream; -1 marks cold touches."""
    a = np.asarray(pages, dtype=np.int64)
    n = int(a.size)
    out = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return out
    order = np.argsort(a, kind="stable")
    sorted_pages = a[order]
    same = sorted_pages[1:] == sorted_pages[:-1]
    prev = np.full(n, -1, dtype=np.int64)
    prev[order[1:][same]] = order[:-1][same]
    query = np.nonzero(prev >= 0)[0]
    if query.size == 0:
        return out
    prev_values = prev[query]
    nested = _count_prev_greater(np, prev_values)
    out[query] = (query - prev_values - 1) - nested
    return out


def compute_stack_distances(pages: Sequence[int]) -> list:
    """Stack distance of every reference; ``-1`` marks cold touches.

    Vectorized under numpy, streamed through the Fenwick analyzer
    otherwise (``REPRO_NO_NUMPY=1`` forces the fallback); the two paths
    produce identical integers.
    """
    pages = list(pages)
    np = _numpy()
    if np is not None:
        return [int(d) for d in _distances_numpy(np, pages)]
    analyzer = StackDistanceAnalyzer(expected_references=max(len(pages), 1))
    return [
        distance if (distance := analyzer.touch(page)) is not None else -1
        for page in pages
    ]


def lru_miss_curve(
    pages: Iterable[int], capacities: Sequence[int] = (4, 8, 16, 32, 64, 128)
) -> dict[int, float]:
    """Convenience: exact LRU miss rates of a page stream."""
    return StackDistanceAnalyzer.from_pages(list(pages)).miss_curve(capacities)
