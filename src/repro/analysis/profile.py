"""Per-workload analysis profiles: everything the screening model needs.

An :class:`AnalysisProfile` condenses one workload's dynamic trace into
the design-independent statistics the analytical translation-cost model
(:mod:`repro.analysis.atmodel`) consumes:

* the exact LRU stack-distance histogram of the page stream, per page
  size — miss rates for *every* candidate TLB capacity at once
  (:mod:`repro.analysis.reusedist`);
* same-page clustering within small reference windows — the locality
  piggyback ports and interleaved banks turn into combining or
  serialization;
* the cross-page bank-collision probability of each candidate bank
  select function — how often adjacent references to *different* pages
  still land in the same bank, the statistic that separates a banked
  TLB that pipelines page runs across banks from one that serializes
  like a single port;
* a pretranslation-cache proxy hit rate per candidate cache size — an
  LRU cache of ``(base register, load-displacement tag) -> vpn``
  attachments replayed over the reference stream, the model's stand-in
  for the real mechanism's shielding (which adds propagation and
  coherence flushes; per-workload calibration absorbs the difference);
* a per-dispatch-group reference-count histogram, the trace-level proxy
  for the machine's measured per-cycle translation demand.

Profiles are a pure function of the trace and the profiling parameters,
so they serialize into the build container's ``PROF`` section
(:mod:`repro.func.tracefile`) and hydrate through ``ArtifactStore``
exactly like the kernel's ``KERN`` arrays: wrong version or parameter
mismatch reads as a clean miss and the profile is rebuilt.

Every statistic is defined for degenerate streams — empty traces,
single references, and cold-only page streams yield zeros, not division
errors.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.reusedist import StackDistanceAnalyzer, _numpy

#: Bump when the payload layout changes; old sections read as misses.
PROFILE_VERSION = 2

#: Page sizes the default profile covers (4 KB, 8 KB, 16 KB).
DEFAULT_PAGE_SHIFTS = (12, 13, 14)
#: Reference-window sizes for same-page clustering statistics.
DEFAULT_WINDOWS = (2, 4, 8)
#: Bank counts whose select functions the profile measures.
DEFAULT_BANKS = (2, 4, 8, 16)
#: XOR folding width in bit groups (matches repro.tlb.bankselect).
XOR_FOLD_GROUPS = 3
#: Candidate pretranslation-cache sizes the proxy replays.
DEFAULT_PRET_SIZES = (2, 4, 8, 16, 32)
#: Matches repro.tlb.pretranslation's paper-default tag field.
PRET_OFFSET_TAG_SHIFT = 12
PRET_OFFSET_TAG_BITS = 4
#: Instructions per dispatch group for the demand proxy (issue width).
DEMAND_GROUP = 8


@dataclass(frozen=True)
class ProfileParams:
    """Profiling knobs; part of the cache key (mismatch = rebuild)."""

    page_shifts: tuple = DEFAULT_PAGE_SHIFTS
    windows: tuple = DEFAULT_WINDOWS
    pret_sizes: tuple = DEFAULT_PRET_SIZES
    banks: tuple = DEFAULT_BANKS
    demand_group: int = DEMAND_GROUP

    def to_payload(self) -> dict:
        return {
            "page_shifts": list(self.page_shifts),
            "windows": list(self.windows),
            "pret_sizes": list(self.pret_sizes),
            "banks": list(self.banks),
            "demand_group": self.demand_group,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ProfileParams":
        return cls(
            page_shifts=tuple(payload["page_shifts"]),
            windows=tuple(payload["windows"]),
            pret_sizes=tuple(payload["pret_sizes"]),
            banks=tuple(payload["banks"]),
            demand_group=int(payload["demand_group"]),
        )


@dataclass
class PageStreamStats:
    """Statistics of one workload's page stream at one page size."""

    page_shift: int
    references: int = 0
    distinct_pages: int = 0
    cold: int = 0
    #: Sorted stack-distance values and their reference counts.
    distance_values: tuple = ()
    distance_counts: tuple = ()
    #: window size -> fraction of references sharing their page with at
    #: least one other reference in the same window.
    dup_within: dict = field(default_factory=dict)
    #: pretranslation-cache entries -> proxy shield fraction.
    pretranslation_hit: dict = field(default_factory=dict)
    #: "<banks>:<select>" -> P(same bank | adjacent refs on different
    #: pages); same-page neighbors trivially collide and are excluded.
    bank_collision: dict = field(default_factory=dict)
    #: Fraction of base-register dereferences on the register's previous page.
    base_register_page_reuse: float = 0.0

    def miss_rate(self, capacity: float) -> float:
        """Exact LRU miss rate at ``capacity`` entries (0 references -> 0)."""
        if not self.references:
            return 0.0
        hits = 0
        for value, count in zip(self.distance_values, self.distance_counts):
            if value >= capacity:
                break
            hits += count
        return 1.0 - hits / self.references

    def miss_rates(self, capacities):
        """Vectorized :meth:`miss_rate` over a numpy array of capacities."""
        np = _numpy()
        if np is None:  # pragma: no cover - screening requires numpy
            raise RuntimeError("vectorized miss rates require numpy")
        capacities = np.asarray(capacities)
        if not self.references:
            return np.zeros(capacities.shape, dtype=np.float64)
        values = np.asarray(self.distance_values, dtype=np.int64)
        cumulative = np.concatenate(
            [[0], np.cumsum(np.asarray(self.distance_counts, dtype=np.int64))]
        )
        hits = cumulative[np.searchsorted(values, capacities, side="left")]
        return 1.0 - hits / self.references

    def to_payload(self) -> dict:
        return {
            "page_shift": self.page_shift,
            "references": self.references,
            "distinct_pages": self.distinct_pages,
            "cold": self.cold,
            "distance_values": list(self.distance_values),
            "distance_counts": list(self.distance_counts),
            "dup_within": {str(k): v for k, v in self.dup_within.items()},
            "pretranslation_hit": {
                str(k): v for k, v in self.pretranslation_hit.items()
            },
            "bank_collision": dict(self.bank_collision),
            "base_register_page_reuse": self.base_register_page_reuse,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "PageStreamStats":
        return cls(
            page_shift=int(payload["page_shift"]),
            references=int(payload["references"]),
            distinct_pages=int(payload["distinct_pages"]),
            cold=int(payload["cold"]),
            distance_values=tuple(payload["distance_values"]),
            distance_counts=tuple(payload["distance_counts"]),
            dup_within={int(k): float(v) for k, v in payload["dup_within"].items()},
            pretranslation_hit={
                int(k): float(v) for k, v in payload["pretranslation_hit"].items()
            },
            bank_collision={
                str(k): float(v) for k, v in payload["bank_collision"].items()
            },
            base_register_page_reuse=float(payload["base_register_page_reuse"]),
        )


@dataclass
class AnalysisProfile:
    """The complete screening-model input for one workload."""

    workload: str
    params: ProfileParams
    instructions: int = 0
    references: int = 0
    #: references-per-dispatch-group -> group count (0-ref groups excluded).
    group_histogram: dict = field(default_factory=dict)
    #: page shift -> per-page-size stream statistics.
    streams: dict = field(default_factory=dict)

    @property
    def refs_per_instruction(self) -> float:
        if not self.instructions:
            return 0.0
        return self.references / self.instructions

    def stream(self, page_shift: int) -> PageStreamStats:
        """The stats at ``page_shift`` (KeyError if not profiled)."""
        return self.streams[page_shift]

    def to_payload(self) -> dict:
        return {
            "version": PROFILE_VERSION,
            "workload": self.workload,
            "params": self.params.to_payload(),
            "instructions": self.instructions,
            "references": self.references,
            "group_histogram": {
                str(k): v for k, v in sorted(self.group_histogram.items())
            },
            "streams": {
                str(shift): stats.to_payload()
                for shift, stats in sorted(self.streams.items())
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "AnalysisProfile":
        if payload.get("version") != PROFILE_VERSION:
            raise ValueError(f"unsupported profile version: {payload.get('version')}")
        return cls(
            workload=payload["workload"],
            params=ProfileParams.from_payload(payload["params"]),
            instructions=int(payload["instructions"]),
            references=int(payload["references"]),
            group_histogram={
                int(k): int(v) for k, v in payload["group_histogram"].items()
            },
            streams={
                int(shift): PageStreamStats.from_payload(stats)
                for shift, stats in payload["streams"].items()
            },
        )


# -- construction -------------------------------------------------------------


def _dup_within(pages: Sequence[int], window: int) -> float:
    """Fraction of references sharing a page with another in-window ref.

    Windows are consecutive, non-overlapping groups of ``window``
    references (the trailing partial window is dropped, matching
    :mod:`repro.analysis.spatial`'s group accounting).
    """
    usable = (len(pages) // window) * window
    if not usable:
        return 0.0
    np = _numpy()
    if np is not None:
        grid = np.sort(
            np.asarray(pages[:usable], dtype=np.int64).reshape(-1, window), axis=1
        )
        edges = grid[:, 1:] == grid[:, :-1]
        sharer = np.zeros(grid.shape, dtype=bool)
        sharer[:, 1:] |= edges
        sharer[:, :-1] |= edges
        return float(sharer.sum() / usable)
    shared_refs = 0
    for start in range(0, usable, window):
        group = pages[start : start + window]
        counts: dict[int, int] = {}
        for page in group:
            counts[page] = counts.get(page, 0) + 1
        shared_refs += sum(c for c in counts.values() if c > 1)
    return shared_refs / usable


def build_profile(
    trace: Sequence,
    workload: str,
    params: ProfileParams = ProfileParams(),
) -> AnalysisProfile:
    """Profile a dynamic instruction trace (a list of ``DynInst``)."""
    profile = AnalysisProfile(workload=workload, params=params)
    profile.instructions = len(trace)

    eas: list[int] = []
    bases: list[int] = []  # -1 = no base register
    tags: list[int] = []  # packed (base_reg << bits) | offset_tag; -1 = none
    group_counts: dict[int, int] = {}
    group = -1
    in_group = 0
    mask = (1 << PRET_OFFSET_TAG_BITS) - 1
    for index, dyn in enumerate(trace):
        this_group = index // params.demand_group
        if this_group != group:
            if in_group:
                group_counts[in_group] = group_counts.get(in_group, 0) + 1
            group = this_group
            in_group = 0
        if dyn.ea is None:
            continue
        in_group += 1
        eas.append(dyn.ea)
        decoded = dyn.decoded
        base = decoded.base_reg
        if base is None:
            bases.append(-1)
            tags.append(-1)
        else:
            bases.append(base)
            offset_tag = (
                (decoded.offset >> PRET_OFFSET_TAG_SHIFT) & mask
                if decoded.is_load
                else 0
            )
            tags.append((base << PRET_OFFSET_TAG_BITS) | offset_tag)
    if in_group:
        group_counts[in_group] = group_counts.get(in_group, 0) + 1
    profile.references = len(eas)
    profile.group_histogram = group_counts

    for shift in params.page_shifts:
        pages = [ea >> shift for ea in eas]
        stats = PageStreamStats(page_shift=shift, references=len(pages))
        analyzer = StackDistanceAnalyzer.from_pages(pages)
        stats.distinct_pages = analyzer.distinct_pages()
        stats.cold = analyzer.cold
        ordered = sorted(analyzer.histogram.items())
        stats.distance_values = tuple(v for v, _ in ordered)
        stats.distance_counts = tuple(c for _, c in ordered)
        stats.dup_within = {
            w: _dup_within(pages, w) for w in params.windows
        }
        stats.pretranslation_hit = {
            size: _pretranslation_proxy(pages, tags, size)
            for size in params.pret_sizes
        }
        stats.bank_collision = {
            f"{banks}:{select}": _bank_collision(pages, banks, select)
            for banks in params.banks
            for select in ("bit", "xor")
        }
        stats.base_register_page_reuse = _base_reuse(pages, bases)
        profile.streams[shift] = stats
    return profile


def _select_banks(pages, banks: int, select: str):
    """Vectorized bank index of each page (mirrors repro.tlb.bankselect)."""
    mask = banks - 1
    if select == "bit":
        return pages & mask
    width = banks.bit_length() - 1
    folded = pages & mask
    for g in range(1, XOR_FOLD_GROUPS):
        folded = folded ^ ((pages >> (g * width)) & mask)
    return folded


def _bank_collision(pages: Sequence[int], banks: int, select: str) -> float:
    """P(adjacent refs share a bank | they reference different pages).

    This is the statistic that decides whether an interleaved TLB
    pipelines a page-run workload across its banks (low collision) or
    degrades toward a single shared port (high collision).  Same-page
    neighbors are excluded — they collide by construction and the model
    accounts for them through ``dup_within``.  A stream with no page
    changes reports 0.0 (no evidence of cross-page conflict).
    """
    if banks <= 1:
        return 1.0
    if len(pages) < 2:
        return 0.0
    np = _numpy()
    if np is not None:
        arr = np.asarray(pages, dtype=np.int64)
        changed = arr[1:] != arr[:-1]
        total = int(changed.sum())
        if not total:
            return 0.0
        bank = _select_banks(arr, banks, select)
        collide = int(((bank[1:] == bank[:-1]) & changed).sum())
        return collide / total
    total = collide = 0
    for prev, page in zip(pages, pages[1:]):
        if page == prev:
            continue
        total += 1
        if _select_banks(page, banks, select) == _select_banks(prev, banks, select):
            collide += 1
    return collide / total if total else 0.0


def _base_reuse(pages: Sequence[int], bases: Sequence[int]) -> float:
    """Fraction of based references hitting the base's previous page."""
    last: dict[int, int] = {}
    hits = total = 0
    for page, base in zip(pages, bases):
        if base < 0:
            continue
        total += 1
        if last.get(base) == page:
            hits += 1
        last[base] = page
    return hits / total if total else 0.0


def _pretranslation_proxy(
    pages: Sequence[int], tags: Sequence[int], entries: int
) -> float:
    """Shield fraction of an ``entries``-deep LRU attachment cache.

    Replays the reference stream against ``tag -> vpn`` attachments the
    way :class:`repro.tlb.pretranslation.PretranslationCache` would,
    minus register propagation and coherence flushes — the calibration
    step scales for those.
    """
    if not pages:
        return 0.0
    cache: dict[int, int] = {}
    hits = 0
    for page, tag in zip(pages, tags):
        if tag < 0:
            continue
        attached = cache.get(tag)
        if attached is not None:
            del cache[tag]
            if attached == page:
                hits += 1
        elif len(cache) >= entries:
            del cache[next(iter(cache))]
        cache[tag] = page
    return hits / len(pages)


# -- codec --------------------------------------------------------------------


def encode_profile_section(profile: AnalysisProfile) -> bytes:
    """Serialize a profile for the tracefile ``PROF`` section."""
    return json.dumps(
        profile.to_payload(), sort_keys=True, separators=(",", ":")
    ).encode()


def decode_profile_section(payload: bytes) -> AnalysisProfile:
    """Inverse of :func:`encode_profile_section` (ValueError on mismatch)."""
    return AnalysisProfile.from_payload(json.loads(payload.decode()))
