"""Architected register files.

The machine has 32 integer and 32 floating-point registers (the paper's
baseline), or 8/8 in the "fewer registers" experiment of Figure 9.  To keep
the functional simulator fast, registers are represented as small integers
in a single flat namespace:

* integer registers ``r0``..``r31`` map to indices ``0``..``31``;
* floating-point registers ``f0``..``f31`` map to ``32``..``63``.

``r0`` always reads as zero (writes are discarded), as in MIPS.  ``r29`` is
reserved as the stack pointer by the program builder and register
allocator; it is an ordinary register to the hardware.
"""

from __future__ import annotations

import enum

NUM_INT_REGS = 32
NUM_FP_REGS = 32

#: Index of the first floating-point register in the flat namespace.
FP_REG_BASE = NUM_INT_REGS

#: Total number of architected registers in the flat namespace.
NUM_REGS = NUM_INT_REGS + NUM_FP_REGS

#: The hardwired-zero integer register.
REG_ZERO = 0

#: Stack pointer (software convention used by the builder/allocator).
REG_SP = 29

#: Global pointer (software convention; global data is addressed off it).
REG_GP = 28


class RegClass(enum.Enum):
    """Architectural class of a register."""

    INT = "int"
    FP = "fp"


def int_reg(index: int) -> int:
    """Return the flat register number of integer register ``r<index>``."""
    if not 0 <= index < NUM_INT_REGS:
        raise ValueError(f"integer register index out of range: {index}")
    return index


def fp_reg(index: int) -> int:
    """Return the flat register number of FP register ``f<index>``."""
    if not 0 <= index < NUM_FP_REGS:
        raise ValueError(f"fp register index out of range: {index}")
    return FP_REG_BASE + index


def reg_class(reg: int) -> RegClass:
    """Return the :class:`RegClass` of a flat register number."""
    if not 0 <= reg < NUM_REGS:
        raise ValueError(f"register number out of range: {reg}")
    return RegClass.INT if reg < FP_REG_BASE else RegClass.FP


def reg_index(reg: int) -> int:
    """Return the within-class index of a flat register number."""
    if not 0 <= reg < NUM_REGS:
        raise ValueError(f"register number out of range: {reg}")
    return reg if reg < FP_REG_BASE else reg - FP_REG_BASE


def reg_name(reg: int) -> str:
    """Return the assembly name (``r7`` / ``f3``) of a flat register number."""
    if reg_class(reg) is RegClass.INT:
        return f"r{reg}"
    return f"f{reg - FP_REG_BASE}"


def parse_reg(name: str) -> int:
    """Parse an assembly register name (``r7`` / ``f3``) to its flat number.

    Raises :class:`ValueError` for malformed names or out-of-range indices.
    """
    name = name.strip().lower()
    if len(name) < 2 or name[0] not in ("r", "f"):
        raise ValueError(f"malformed register name: {name!r}")
    try:
        index = int(name[1:])
    except ValueError as exc:
        raise ValueError(f"malformed register name: {name!r}") from exc
    if name[0] == "r":
        return int_reg(index)
    return fp_reg(index)
