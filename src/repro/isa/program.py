"""Executable programs: instruction sequences with resolved branch targets.

A :class:`Program` is an immutable list of :class:`~repro.isa.instructions.
Instruction` objects whose control-transfer ``target`` fields are
instruction *indices*.  Programs are placed in the simulated address space
at a code base address; the program counter is a byte address and each
instruction occupies four bytes, so ``pc = code_base + 4 * index``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.isa.instructions import Instruction
from repro.isa.opcodes import CONTROL_OPS, Op

#: Default virtual address where program code is placed.
DEFAULT_CODE_BASE = 0x0040_0000

#: Size of one encoded instruction in bytes.
INSTRUCTION_BYTES = 4


class ProgramError(ValueError):
    """Raised for malformed programs (e.g. undefined labels)."""


class Program:
    """A resolved instruction sequence.

    Parameters
    ----------
    instructions:
        The instruction list.  Control-transfer ``target`` fields may be
        label names; they are resolved against ``labels``.
    labels:
        Mapping from label name to instruction index.
    name:
        Human-readable program name (used in reports).
    code_base:
        Virtual address of instruction index 0.
    """

    def __init__(
        self,
        instructions: Iterable[Instruction],
        labels: Mapping[str, int] | None = None,
        name: str = "program",
        code_base: int = DEFAULT_CODE_BASE,
    ):
        self.instructions: list[Instruction] = list(instructions)
        self.labels: dict[str, int] = dict(labels or {})
        self.name = name
        self.code_base = code_base
        self._resolve()

    def _resolve(self) -> None:
        """Resolve label targets to instruction indices and validate."""
        n = len(self.instructions)
        for label, index in self.labels.items():
            if not 0 <= index <= n:
                raise ProgramError(f"label {label!r} points outside program: {index}")
        for i, inst in enumerate(self.instructions):
            if inst.op not in CONTROL_OPS or inst.op is Op.JR:
                continue
            target = inst.target
            if isinstance(target, str):
                if target not in self.labels:
                    raise ProgramError(f"undefined label {target!r} at instruction {i}")
                inst.target = self.labels[target]
            elif isinstance(target, int):
                if not 0 <= target < n:
                    raise ProgramError(
                        f"branch target out of range at instruction {i}: {target}"
                    )
            else:
                raise ProgramError(f"missing branch target at instruction {i}")

    # -- address arithmetic --------------------------------------------------

    def pc_of(self, index: int) -> int:
        """Virtual address of the instruction at ``index``."""
        return self.code_base + INSTRUCTION_BYTES * index

    def index_of(self, pc: int) -> int:
        """Instruction index of the virtual address ``pc``."""
        offset = pc - self.code_base
        if offset % INSTRUCTION_BYTES:
            raise ProgramError(f"misaligned pc: {pc:#x}")
        return offset // INSTRUCTION_BYTES

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def listing(self) -> str:
        """Return a human-readable disassembly listing."""
        index_to_labels: dict[int, list[str]] = {}
        for label, index in self.labels.items():
            index_to_labels.setdefault(index, []).append(label)
        lines = []
        for i, inst in enumerate(self.instructions):
            for label in sorted(index_to_labels.get(i, [])):
                lines.append(f"{label}:")
            lines.append(f"  {i:6d}  {inst}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Program {self.name!r}: {len(self.instructions)} instructions>"
