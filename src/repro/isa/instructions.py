"""Instruction records and memory addressing modes.

Instructions are plain records (no bit-level encoding): the simulators in
this project are architectural, so a structured representation is both
faster and clearer than packed 32-bit words.

Operand conventions (MIPS-flavoured):

* three-operand ALU ops: ``rd <- rs1 OP rs2`` (or ``imm`` for the
  immediate forms);
* loads: ``rd <- MEM[ea]`` with the base register in ``rs1``;
* stores: ``MEM[ea] <- rs2`` with the base register in ``rs1``;
* branches compare ``rs1`` with ``rs2`` (or with zero) and jump to
  ``target`` (an instruction index after :class:`~repro.isa.program.Program`
  resolution, or a label name before);
* ``JAL`` writes the return address into ``rd``; ``JR`` jumps to ``rs1``.

The paper's ISA extends MIPS-I with ``register+register`` and
post-increment/decrement addressing modes; those are the
:class:`AddrMode` values ``BASE_REG``, ``POST_INC`` and ``POST_DEC``.
A post-increment/decrement access also *writes* the base register, which
matters to the register-dependence tracking in the timing engine and to
pretranslation propagation (the updated pointer keeps its attached
translation — it is an arithmetic manipulation of the pointer value).
"""

from __future__ import annotations

import enum

from repro.isa.opcodes import (
    BRANCH_OPS,
    LOAD_OPS,
    MEM_OPS,
    STORE_OPS,
    Op,
)
from repro.isa.registers import REG_ZERO, reg_name


class AddrMode(enum.Enum):
    """Memory addressing modes for loads and stores."""

    #: ``ea = rs1 + imm`` (classic MIPS displacement mode).
    BASE_IMM = "base+imm"
    #: ``ea = rs1 + rs2`` (paper extension).
    BASE_REG = "base+reg"
    #: ``ea = rs1``; afterwards ``rs1 += imm`` (paper extension).
    POST_INC = "post-inc"
    #: ``ea = rs1``; afterwards ``rs1 -= imm`` (paper extension).
    POST_DEC = "post-dec"


class Instruction:
    """A single machine instruction.

    Attributes mirror the operand conventions documented in the module
    docstring.  ``target`` holds a label name (``str``) in unresolved
    programs and an instruction index (``int``) after resolution.
    """

    __slots__ = ("op", "rd", "rs1", "rs2", "imm", "mode", "target")

    def __init__(
        self,
        op: Op,
        rd: int | None = None,
        rs1: int | None = None,
        rs2: int | None = None,
        imm: int = 0,
        mode: AddrMode = AddrMode.BASE_IMM,
        target: "int | str | None" = None,
    ):
        self.op = op
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.mode = mode
        self.target = target

    # -- dependence queries -------------------------------------------------

    def sources(self) -> tuple[int, ...]:
        """Registers read by this instruction (``r0`` excluded)."""
        op = self.op
        srcs: list[int] = []
        if op in MEM_OPS:
            if self.rs1 is not None:
                srcs.append(self.rs1)
            if self.mode is AddrMode.BASE_REG and self.rs2 is not None:
                srcs.append(self.rs2)
            if op in STORE_OPS and self.rs2 is not None and self.mode is not AddrMode.BASE_REG:
                srcs.append(self.rs2)
        else:
            if self.rs1 is not None:
                srcs.append(self.rs1)
            if self.rs2 is not None:
                srcs.append(self.rs2)
        return tuple(s for s in srcs if s != REG_ZERO)

    def dests(self) -> tuple[int, ...]:
        """Registers written by this instruction (``r0`` excluded)."""
        dests: list[int] = []
        if self.rd is not None:
            dests.append(self.rd)
        if self.op in MEM_OPS and self.mode in (AddrMode.POST_INC, AddrMode.POST_DEC):
            # Post-increment/decrement updates the base register.
            if self.rs1 is not None:
                dests.append(self.rs1)
        return tuple(d for d in dests if d != REG_ZERO)

    def base_register(self) -> int | None:
        """The base (pointer) register of a memory access, else ``None``."""
        if self.op in MEM_OPS:
            return self.rs1
        return None

    def is_load(self) -> bool:
        return self.op in LOAD_OPS

    def is_store(self) -> bool:
        return self.op in STORE_OPS

    def is_mem(self) -> bool:
        return self.op in MEM_OPS

    def is_branch(self) -> bool:
        return self.op in BRANCH_OPS

    # -- formatting ---------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Instruction {self}>"

    def __str__(self) -> str:
        op = self.op
        name = op.name.lower()

        def rname(reg: "int | None") -> str:
            # Tolerate malformed operands: the verifier formats broken
            # instructions into its findings.
            return "?" if reg is None else reg_name(reg)

        if op in MEM_OPS:
            data_reg = self.rd if op in LOAD_OPS else self.rs2
            base = rname(self.rs1)
            if self.mode is AddrMode.BASE_IMM:
                ea = f"{self.imm}({base})"
            elif self.mode is AddrMode.BASE_REG:
                ea = f"({base}+{rname(self.rs2)})"
            elif self.mode is AddrMode.POST_INC:
                ea = f"({base})+{self.imm}"
            else:
                ea = f"({base})-{self.imm}"
            return f"{name} {rname(data_reg)}, {ea}"
        if op in BRANCH_OPS:
            regs = [reg_name(r) for r in (self.rs1, self.rs2) if r is not None]
            return f"{name} {', '.join(regs + [str(self.target)])}"
        if op in (Op.J, Op.JAL):
            return f"{name} {self.target}"
        if op is Op.JR:
            return f"{name} {reg_name(self.rs1)}"
        if op in (Op.NOP, Op.HALT):
            return name
        parts = []
        if self.rd is not None:
            parts.append(reg_name(self.rd))
        if self.rs1 is not None:
            parts.append(reg_name(self.rs1))
        if self.rs2 is not None:
            parts.append(reg_name(self.rs2))
        elif op in (Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLTI, Op.SLLI, Op.SRLI, Op.LUI):
            parts.append(str(self.imm))
        return f"{name} {', '.join(parts)}"
