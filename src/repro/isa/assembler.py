"""Text assembler for the mini ISA.

Handy for tests and for users who want to write small programs without
the builder API.  The syntax is classic MIPS-flavoured, one instruction
per line, ``#`` or ``;`` comments, ``label:`` definitions::

    # sum r1 = 1 + 2 + ... (never taken backward here, just syntax demo)
    start:
        addi r1, r0, 0
        addi r2, r0, 10
    loop:
        add  r1, r1, r2
        addi r2, r2, -1
        bne  r2, r0, loop
        sw   r1, 0(r29)
        lw   r3, (r29+r0)     # register+register addressing
        lw   r4, (r29)+4      # post-increment addressing
        halt

Branch/jump targets may be label names or absolute instruction indices.
"""

from __future__ import annotations

import re

from repro.isa.instructions import AddrMode, Instruction
from repro.isa.opcodes import LOAD_OPS, Op, STORE_OPS
from repro.isa.program import Program
from repro.isa.registers import parse_reg

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):$")
_MEM_BASE_IMM_RE = re.compile(r"^(-?(?:0[xX][0-9a-fA-F]+|\d+))?\(([rf]\d+)\)$")
_MEM_BASE_REG_RE = re.compile(r"^\(([rf]\d+)\+([rf]\d+)\)$")
_MEM_POST_RE = re.compile(r"^\(([rf]\d+)\)([+-])((?:0[xX][0-9a-fA-F]+|\d+))$")

#: Opcodes taking ``rd, rs1, rs2``.
_R3_OPS = {
    "add": Op.ADD,
    "sub": Op.SUB,
    "and": Op.AND,
    "or": Op.OR,
    "xor": Op.XOR,
    "nor": Op.NOR,
    "sll": Op.SLL,
    "srl": Op.SRL,
    "sra": Op.SRA,
    "slt": Op.SLT,
    "mul": Op.MUL,
    "div": Op.DIV,
    "rem": Op.REM,
    "fadd": Op.FADD,
    "fsub": Op.FSUB,
    "fmul": Op.FMUL,
    "fdiv": Op.FDIV,
    "flt": Op.FLT,
}

#: Opcodes taking ``rd, rs1, imm``.
_I_OPS = {
    "addi": Op.ADDI,
    "andi": Op.ANDI,
    "ori": Op.ORI,
    "xori": Op.XORI,
    "slti": Op.SLTI,
    "slli": Op.SLLI,
    "srli": Op.SRLI,
}

#: Opcodes taking ``rd, rs1``.
_R2_OPS = {
    "fmov": Op.FMOV,
    "fneg": Op.FNEG,
    "cvtif": Op.CVTIF,
    "cvtfi": Op.CVTFI,
}

_MEM_OPS = {
    "lw": Op.LW,
    "lb": Op.LB,
    "lfw": Op.LFW,
    "sw": Op.SW,
    "sb": Op.SB,
    "sfw": Op.SFW,
}

_BRANCH2_OPS = {"beq": Op.BEQ, "bne": Op.BNE, "blt": Op.BLT, "bge": Op.BGE}
_BRANCH1_OPS = {"bltz": Op.BLTZ, "bgez": Op.BGEZ}


class AssemblerError(ValueError):
    """Raised on malformed assembly, with a line number."""

    def __init__(self, line_no: int, message: str):
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


def _parse_int(token: str, line_no: int) -> int:
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblerError(line_no, f"bad integer {token!r}") from exc


def _parse_target(token: str) -> "int | str":
    try:
        return int(token, 0)
    except ValueError:
        return token


def _parse_mem_operand(token: str, line_no: int) -> tuple[int, "int | None", int, AddrMode]:
    """Parse a memory operand; returns (base, index, imm, mode)."""
    m = _MEM_BASE_IMM_RE.match(token)
    if m:
        imm = _parse_int(m.group(1), line_no) if m.group(1) else 0
        return parse_reg(m.group(2)), None, imm, AddrMode.BASE_IMM
    m = _MEM_BASE_REG_RE.match(token)
    if m:
        return parse_reg(m.group(1)), parse_reg(m.group(2)), 0, AddrMode.BASE_REG
    m = _MEM_POST_RE.match(token)
    if m:
        imm = _parse_int(m.group(3), line_no)
        mode = AddrMode.POST_INC if m.group(2) == "+" else AddrMode.POST_DEC
        return parse_reg(m.group(1)), None, imm, mode
    raise AssemblerError(line_no, f"bad memory operand {token!r}")


def assemble(source: str, name: str = "asm") -> Program:
    """Assemble ``source`` text into a resolved :class:`Program`."""
    instructions: list[Instruction] = []
    labels: dict[str, int] = {}
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].split(";", 1)[0].strip()
        if not line:
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            label = label_match.group(1)
            if label in labels:
                raise AssemblerError(line_no, f"duplicate label {label!r}")
            labels[label] = len(instructions)
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = [op.strip() for op in parts[1].split(",")] if len(parts) > 1 else []
        instructions.append(_parse_instruction(mnemonic, operands, line_no))
    try:
        return Program(instructions, labels, name=name)
    except ValueError as exc:
        raise AssemblerError(0, str(exc)) from exc


def _parse_instruction(mnemonic: str, ops: list[str], line_no: int) -> Instruction:
    def need(count: int) -> None:
        if len(ops) != count:
            raise AssemblerError(
                line_no, f"{mnemonic} expects {count} operands, got {len(ops)}"
            )

    if mnemonic in _R3_OPS:
        need(3)
        return Instruction(
            _R3_OPS[mnemonic],
            rd=parse_reg(ops[0]),
            rs1=parse_reg(ops[1]),
            rs2=parse_reg(ops[2]),
        )
    if mnemonic in _I_OPS:
        need(3)
        return Instruction(
            _I_OPS[mnemonic],
            rd=parse_reg(ops[0]),
            rs1=parse_reg(ops[1]),
            imm=_parse_int(ops[2], line_no),
        )
    if mnemonic in _R2_OPS:
        need(2)
        return Instruction(
            _R2_OPS[mnemonic], rd=parse_reg(ops[0]), rs1=parse_reg(ops[1])
        )
    if mnemonic == "lui":
        need(2)
        return Instruction(Op.LUI, rd=parse_reg(ops[0]), imm=_parse_int(ops[1], line_no))
    if mnemonic in _MEM_OPS:
        need(2)
        op = _MEM_OPS[mnemonic]
        data = parse_reg(ops[0])
        base, index, imm, mode = _parse_mem_operand(ops[1], line_no)
        if op in LOAD_OPS:
            return Instruction(op, rd=data, rs1=base, rs2=index, imm=imm, mode=mode)
        if mode is AddrMode.BASE_REG:
            raise AssemblerError(line_no, "stores do not support (base+reg) addressing")
        assert op in STORE_OPS
        return Instruction(op, rs1=base, rs2=data, imm=imm, mode=mode)
    if mnemonic in _BRANCH2_OPS:
        need(3)
        return Instruction(
            _BRANCH2_OPS[mnemonic],
            rs1=parse_reg(ops[0]),
            rs2=parse_reg(ops[1]),
            target=_parse_target(ops[2]),
        )
    if mnemonic in _BRANCH1_OPS:
        need(2)
        return Instruction(
            _BRANCH1_OPS[mnemonic], rs1=parse_reg(ops[0]), target=_parse_target(ops[1])
        )
    if mnemonic == "j":
        need(1)
        return Instruction(Op.J, target=_parse_target(ops[0]))
    if mnemonic == "jal":
        need(2)
        return Instruction(Op.JAL, rd=parse_reg(ops[0]), target=_parse_target(ops[1]))
    if mnemonic == "jr":
        need(1)
        return Instruction(Op.JR, rs1=parse_reg(ops[0]))
    if mnemonic == "nop":
        need(0)
        return Instruction(Op.NOP)
    if mnemonic == "halt":
        need(0)
        return Instruction(Op.HALT)
    raise AssemblerError(line_no, f"unknown mnemonic {mnemonic!r}")
