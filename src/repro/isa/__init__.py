"""Mini MIPS-like instruction set used by the reproduction.

The paper runs its benchmarks on "an extended (virtual) MIPS-like
architecture ... a superset of the MIPS-I instruction set" with
register+register and post-increment/decrement addressing modes and no
architected delay slots.  This package defines that ISA:

``registers``
    Architected register files and naming (``r0``..``r31``, ``f0``..``f31``).
``opcodes``
    The opcode set with per-opcode static classification (ALU / FP /
    load / store / branch ...), used both by the functional simulator and
    by the timing engine's functional-unit mapping.
``instructions``
    The :class:`Instruction` record and memory addressing modes.
``program``
    :class:`Program` — a resolved, executable instruction sequence.
``builder``
    A structured program builder over *virtual* registers.
``regalloc``
    Lowers builder output to architected registers, spilling to the
    stack when the architected budget (32 int/32 fp or 8 int/8 fp) is
    exceeded.  This is the substrate for the paper's Figure 9 experiment.
``assembler``
    A small text assembler/disassembler for writing programs by hand.
``verify``
    Static lint for programs (register classes, operand shapes).
"""

from repro.isa.instructions import AddrMode, Instruction
from repro.isa.opcodes import Op, OpClass, op_class
from repro.isa.program import Program
from repro.isa.verify import Finding, verify_program
from repro.isa.registers import (
    FP_REG_BASE,
    NUM_FP_REGS,
    NUM_INT_REGS,
    REG_SP,
    REG_ZERO,
    RegClass,
    fp_reg,
    int_reg,
    reg_class,
    reg_index,
    reg_name,
)

__all__ = [
    "AddrMode",
    "Instruction",
    "Op",
    "OpClass",
    "op_class",
    "Program",
    "Finding",
    "verify_program",
    "RegClass",
    "FP_REG_BASE",
    "NUM_FP_REGS",
    "NUM_INT_REGS",
    "REG_SP",
    "REG_ZERO",
    "fp_reg",
    "int_reg",
    "reg_class",
    "reg_index",
    "reg_name",
]
