"""Opcode set and static opcode classification.

The opcode set is a compact superset of MIPS-I sufficient for the
synthetic workloads: integer ALU ops, integer multiply/divide, FP
arithmetic, loads/stores (word and byte, integer and FP), conditional
branches, and unconditional jumps.  The classification in
:class:`OpClass` is what the timing engine uses to map instructions onto
functional units (Table 1 of the paper).
"""

from __future__ import annotations

import enum


class Op(enum.IntEnum):
    """Machine opcodes."""

    # Integer ALU.
    ADD = enum.auto()
    ADDI = enum.auto()
    SUB = enum.auto()
    AND = enum.auto()
    ANDI = enum.auto()
    OR = enum.auto()
    ORI = enum.auto()
    XOR = enum.auto()
    XORI = enum.auto()
    NOR = enum.auto()
    SLL = enum.auto()
    SLLI = enum.auto()
    SRL = enum.auto()
    SRLI = enum.auto()
    SRA = enum.auto()
    SLT = enum.auto()
    SLTI = enum.auto()
    LUI = enum.auto()
    # Integer multiply / divide.
    MUL = enum.auto()
    DIV = enum.auto()
    REM = enum.auto()
    # Floating point.
    FADD = enum.auto()
    FSUB = enum.auto()
    FMUL = enum.auto()
    FDIV = enum.auto()
    FMOV = enum.auto()
    FNEG = enum.auto()
    CVTIF = enum.auto()  # int -> fp
    CVTFI = enum.auto()  # fp -> int (truncating)
    FLT = enum.auto()  # fp compare <, integer 0/1 result register
    # Memory.
    LW = enum.auto()
    LB = enum.auto()
    SW = enum.auto()
    SB = enum.auto()
    LFW = enum.auto()  # load FP word
    SFW = enum.auto()  # store FP word
    # Control.
    BEQ = enum.auto()
    BNE = enum.auto()
    BLT = enum.auto()
    BGE = enum.auto()
    BLTZ = enum.auto()
    BGEZ = enum.auto()
    J = enum.auto()
    JAL = enum.auto()
    JR = enum.auto()
    # Misc.
    NOP = enum.auto()
    HALT = enum.auto()


class OpClass(enum.Enum):
    """Functional classification used for functional-unit scheduling."""

    IALU = "ialu"
    IMULT = "imult"
    IDIV = "idiv"
    FPADD = "fpadd"
    FPMULT = "fpmult"
    FPDIV = "fpdiv"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    NOP = "nop"
    HALT = "halt"


_IALU_OPS = frozenset(
    {
        Op.ADD,
        Op.ADDI,
        Op.SUB,
        Op.AND,
        Op.ANDI,
        Op.OR,
        Op.ORI,
        Op.XOR,
        Op.XORI,
        Op.NOR,
        Op.SLL,
        Op.SLLI,
        Op.SRL,
        Op.SRLI,
        Op.SRA,
        Op.SLT,
        Op.SLTI,
        Op.LUI,
    }
)

_FPADD_OPS = frozenset({Op.FADD, Op.FSUB, Op.FMOV, Op.FNEG, Op.CVTIF, Op.CVTFI, Op.FLT})

_CLASS_OF: dict[Op, OpClass] = {}
for _op in _IALU_OPS:
    _CLASS_OF[_op] = OpClass.IALU
for _op in _FPADD_OPS:
    _CLASS_OF[_op] = OpClass.FPADD
_CLASS_OF.update(
    {
        Op.MUL: OpClass.IMULT,
        Op.DIV: OpClass.IDIV,
        Op.REM: OpClass.IDIV,
        Op.FMUL: OpClass.FPMULT,
        Op.FDIV: OpClass.FPDIV,
        Op.LW: OpClass.LOAD,
        Op.LB: OpClass.LOAD,
        Op.LFW: OpClass.LOAD,
        Op.SW: OpClass.STORE,
        Op.SB: OpClass.STORE,
        Op.SFW: OpClass.STORE,
        Op.BEQ: OpClass.BRANCH,
        Op.BNE: OpClass.BRANCH,
        Op.BLT: OpClass.BRANCH,
        Op.BGE: OpClass.BRANCH,
        Op.BLTZ: OpClass.BRANCH,
        Op.BGEZ: OpClass.BRANCH,
        Op.J: OpClass.JUMP,
        Op.JAL: OpClass.JUMP,
        Op.JR: OpClass.JUMP,
        Op.NOP: OpClass.NOP,
        Op.HALT: OpClass.HALT,
    }
)

#: Opcodes that read memory.
LOAD_OPS = frozenset({Op.LW, Op.LB, Op.LFW})

#: Opcodes that write memory.
STORE_OPS = frozenset({Op.SW, Op.SB, Op.SFW})

#: Opcodes that access memory (loads and stores).
MEM_OPS = LOAD_OPS | STORE_OPS

#: Conditional-branch opcodes.
BRANCH_OPS = frozenset(
    {Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTZ, Op.BGEZ}
)

#: Unconditional control transfers.
JUMP_OPS = frozenset({Op.J, Op.JAL, Op.JR})

#: All control-transfer opcodes.
CONTROL_OPS = BRANCH_OPS | JUMP_OPS


def op_class(op: Op) -> OpClass:
    """Return the :class:`OpClass` of ``op``."""
    return _CLASS_OF[op]


def is_load(op: Op) -> bool:
    """True if ``op`` reads data memory."""
    return op in LOAD_OPS


def is_store(op: Op) -> bool:
    """True if ``op`` writes data memory."""
    return op in STORE_OPS


def is_mem(op: Op) -> bool:
    """True if ``op`` accesses data memory."""
    return op in MEM_OPS


def is_control(op: Op) -> bool:
    """True if ``op`` may redirect the PC."""
    return op in CONTROL_OPS
