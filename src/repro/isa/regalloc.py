"""Register allocation: lowering virtual registers to an architected budget.

The allocator implements a simple, provably-correct *home-based* scheme:

1. Every virtual register is ranked by loop-depth-weighted static use
   count (uses inside deeper loops weigh exponentially more).
2. The hottest virtual registers receive a dedicated architected register
   ("register home") for the whole program.
3. The rest receive a stack slot ("memory home").  Each use reloads the
   slot into a reserved scratch register immediately before the
   instruction; each definition writes through to the slot immediately
   after.

Because every virtual register has exactly one home for its entire
lifetime, the transformation is correct across arbitrary control flow —
no dataflow analysis is required at joins.

This deliberately mirrors what a simple compiler does when it runs out of
registers, and it generates exactly the extra memory traffic the paper's
Figure 9 experiment studies: with an 8 int/8 fp budget most virtual
registers live on the stack, producing many spill loads/stores with high
spatial and temporal locality ("most of these references are directed to
the stack ... with a high degree of spatial and temporal locality").

Reserved registers (taken out of the budget, as a real compiler would):

* ``r0`` — hardwired zero;
* the highest available integer register — stack pointer for spill slots;
* the next two integer registers — integer scratch;
* the two highest FP registers — FP scratch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.builder import ProgramBuilder, VReg
from repro.isa.instructions import AddrMode, Instruction
from repro.isa.opcodes import CONTROL_OPS, Op
from repro.isa.program import Program
from repro.isa.registers import (
    FP_REG_BASE,
    NUM_FP_REGS,
    NUM_INT_REGS,
    REG_ZERO,
    RegClass,
)

#: Base virtual address of the spill area (top of the stack region).
SPILL_AREA_BASE = 0x7FF0_0000

#: Cap on the loop-depth weighting exponent.
_MAX_DEPTH_WEIGHT = 4


class AllocationError(ValueError):
    """Raised when a program cannot be lowered to the given budget."""


@dataclass
class AllocationInfo:
    """Summary of an allocation, attached to the returned program."""

    int_budget: int
    fp_budget: int
    register_homes: dict[str, str] = field(default_factory=dict)
    spilled: list[str] = field(default_factory=list)
    spill_slots: int = 0
    reload_count: int = 0
    writeback_count: int = 0


def _operand_fields(inst: Instruction) -> tuple[str, ...]:
    return ("rd", "rs1", "rs2")


def _vregs_of(regs: tuple) -> list[VReg]:
    seen: list[VReg] = []
    for r in regs:
        if isinstance(r, VReg) and r not in seen:
            seen.append(r)
    return seen


def _collect_usage(builder: ProgramBuilder) -> dict[VReg, float]:
    """Loop-depth-weighted static use counts per virtual register."""
    weights: dict[VReg, float] = {}
    for inst, depth in zip(builder.instructions, builder.depths):
        w = 10 ** min(depth, _MAX_DEPTH_WEIGHT)
        for fieldname in _operand_fields(inst):
            r = getattr(inst, fieldname)
            if isinstance(r, VReg):
                weights[r] = weights.get(r, 0.0) + w
    return weights


def _used_physical(builder: ProgramBuilder) -> set[int]:
    used: set[int] = set()
    for inst in builder.instructions:
        for fieldname in _operand_fields(inst):
            r = getattr(inst, fieldname)
            if isinstance(r, int):
                used.add(r)
    return used


def allocate_registers(
    builder: ProgramBuilder, int_regs: int = 32, fp_regs: int = 32
) -> Program:
    """Lower ``builder``'s program to ``int_regs``/``fp_regs`` architected
    registers, inserting spill code as needed.

    Returns a resolved :class:`Program` with an ``alloc_info`` attribute
    describing the allocation.
    """
    if not 4 <= int_regs <= NUM_INT_REGS:
        raise AllocationError(f"integer budget must be in [4, {NUM_INT_REGS}]: {int_regs}")
    if not 3 <= fp_regs <= NUM_FP_REGS:
        raise AllocationError(f"fp budget must be in [3, {NUM_FP_REGS}]: {fp_regs}")

    used_phys = _used_physical(builder)

    # Reserved integer registers: sp and two scratch, highest available first.
    int_pool = [r for r in range(int_regs - 1, 0, -1) if r not in used_phys]
    if len(int_pool) < 3:
        raise AllocationError("not enough free integer registers for sp + scratch")
    sp, int_scratch0, int_scratch1 = int_pool[0], int_pool[1], int_pool[2]
    int_homes = sorted(int_pool[3:])

    fp_pool = [
        FP_REG_BASE + r for r in range(fp_regs - 1, -1, -1)
        if FP_REG_BASE + r not in used_phys
    ]
    if len(fp_pool) < 2:
        raise AllocationError("not enough free fp registers for scratch")
    fp_scratch0, fp_scratch1 = fp_pool[0], fp_pool[1]
    fp_homes = sorted(fp_pool[2:])

    # Rank virtual registers and hand out homes.
    weights = _collect_usage(builder)
    by_hotness = sorted(weights, key=lambda v: (-weights[v], v.id))
    home: dict[VReg, int] = {}
    slot: dict[VReg, int] = {}
    info = AllocationInfo(int_budget=int_regs, fp_budget=fp_regs)
    next_slot = 0
    avail = {RegClass.INT: list(int_homes), RegClass.FP: list(fp_homes)}
    for v in by_hotness:
        pool = avail[v.cls]
        if pool:
            home[v] = pool.pop(0)
            info.register_homes[v.name] = f"phys{home[v]}"
        else:
            slot[v] = next_slot
            next_slot += 1
            info.spilled.append(v.name)
    info.spill_slots = next_slot

    scratch = {
        RegClass.INT: (int_scratch0, int_scratch1),
        RegClass.FP: (fp_scratch0, fp_scratch1),
    }

    def reload_inst(phys: int, slot_index: int) -> Instruction:
        op = Op.LW if phys < FP_REG_BASE else Op.LFW
        return Instruction(op, rd=phys, rs1=sp, imm=4 * slot_index)

    def writeback_inst(phys: int, slot_index: int) -> Instruction:
        op = Op.SW if phys < FP_REG_BASE else Op.SFW
        return Instruction(op, rs1=sp, rs2=phys, imm=4 * slot_index)

    output: list[Instruction] = []
    index_map: dict[int, int] = {}

    # Prologue: establish the spill-area stack pointer.
    upper, lower = SPILL_AREA_BASE >> 16, SPILL_AREA_BASE & 0xFFFF
    output.append(Instruction(Op.LUI, rd=sp, imm=upper))
    if lower:
        output.append(Instruction(Op.ORI, rd=sp, rs1=sp, imm=lower))

    for i, inst in enumerate(builder.instructions):
        index_map[i] = len(output)
        mapping: dict[VReg, int] = {}
        reloads: list[Instruction] = []
        writebacks: list[Instruction] = []
        free = {RegClass.INT: list(scratch[RegClass.INT]), RegClass.FP: list(scratch[RegClass.FP])}

        srcs = _vregs_of(inst.sources())
        dsts = _vregs_of(inst.dests())

        for v in srcs:
            if v in home:
                mapping[v] = home[v]
            else:
                phys = free[v.cls].pop(0)
                mapping[v] = phys
                reloads.append(reload_inst(phys, slot[v]))
                info.reload_count += 1

        for v in dsts:
            if v in mapping:
                pass  # already has a scratch or home
            elif v in home:
                mapping[v] = home[v]
            else:
                pool = free[v.cls]
                if pool:
                    mapping[v] = pool.pop(0)
                else:
                    # Reuse the scratch of a pure source: the rewritten
                    # instruction reads all sources before writing dests,
                    # so clobbering a source scratch is safe.
                    donor = next(
                        (s for s in srcs if s not in dsts and s.cls is v.cls and s in mapping),
                        None,
                    )
                    if donor is None:
                        raise AllocationError(
                            f"instruction needs too many scratch registers: {inst}"
                        )
                    mapping[v] = mapping[donor]
            if v in slot:
                writebacks.append(writeback_inst(mapping[v], slot[v]))
                info.writeback_count += 1

        new = Instruction(
            inst.op,
            rd=_rewrite(inst.rd, mapping, home),
            rs1=_rewrite(inst.rs1, mapping, home),
            rs2=_rewrite(inst.rs2, mapping, home),
            imm=inst.imm,
            mode=inst.mode,
            target=inst.target,
        )
        output.extend(reloads)
        output.append(new)
        output.extend(writebacks)
    index_map[len(builder.instructions)] = len(output)

    # Remap integer branch targets and labels through the expansion.
    for inst in output:
        if inst.op in CONTROL_OPS and isinstance(inst.target, int):
            inst.target = index_map[inst.target]
    labels = {name: index_map[idx] for name, idx in builder.labels.items()}

    program = Program(output, labels, name=builder.name, code_base=builder.code_base)
    program.alloc_info = info
    return program


def _rewrite(reg, mapping: dict[VReg, int], home: dict[VReg, int]):
    if isinstance(reg, VReg):
        if reg in mapping:
            return mapping[reg]
        if reg in home:
            return home[reg]
        raise AllocationError(f"virtual register {reg!r} has no mapping")
    return reg
