"""Structured program builder over virtual registers.

Workloads are written against an unlimited supply of *virtual* registers
using this builder; :mod:`repro.isa.regalloc` then lowers the result to a
given architected register budget, inserting stack spills when the budget
is exceeded.  This mirrors the paper's methodology, where the benchmarks
were recompiled with 32 int/32 fp and again with 8 int/8 fp registers for
the Figure 9 experiment.

The builder tracks loop nesting depth at each emitted instruction so the
allocator can prioritize hot virtual registers (a crude stand-in for a
compiler's loop-aware spill heuristic).

Example
-------
>>> from repro.isa.builder import ProgramBuilder
>>> b = ProgramBuilder("count")
>>> i = b.vint("i")
>>> b.li(i, 0)
>>> with b.loop_until(i, 10):
...     b.addi(i, i, 1)
>>> b.halt()
>>> prog = b.build()
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.isa.instructions import AddrMode, Instruction
from repro.isa.opcodes import Op
from repro.isa.program import DEFAULT_CODE_BASE, Program
from repro.isa.registers import RegClass


class VReg:
    """A virtual register, later assigned a physical home by regalloc."""

    __slots__ = ("cls", "id", "name")

    def __init__(self, cls: RegClass, vid: int, name: str | None = None):
        self.cls = cls
        self.id = vid
        self.name = name or f"v{vid}"

    def __repr__(self) -> str:
        prefix = "vi" if self.cls is RegClass.INT else "vf"
        return f"{prefix}{self.id}({self.name})"


#: Operand type accepted by builder helpers: virtual or architected register.
Operand = "VReg | int"


class BuilderError(ValueError):
    """Raised on builder misuse (e.g. unbalanced loops, duplicate labels)."""


class ProgramBuilder:
    """Accumulates instructions, labels, and loop-depth annotations."""

    def __init__(self, name: str = "program", code_base: int = DEFAULT_CODE_BASE):
        self.name = name
        self.code_base = code_base
        self.instructions: list[Instruction] = []
        self.labels: dict[str, int] = {}
        #: Loop nesting depth of each emitted instruction (parallel list).
        self.depths: list[int] = []
        self._next_vreg = 0
        self._next_label = 0
        self._loop_depth = 0

    # -- virtual registers ---------------------------------------------------

    def vint(self, name: str | None = None) -> VReg:
        """Allocate a fresh virtual integer register."""
        self._next_vreg += 1
        return VReg(RegClass.INT, self._next_vreg, name)

    def vfp(self, name: str | None = None) -> VReg:
        """Allocate a fresh virtual floating-point register."""
        self._next_vreg += 1
        return VReg(RegClass.FP, self._next_vreg, name)

    # -- labels and raw emission ----------------------------------------------

    def label(self, name: str | None = None) -> str:
        """Bind (and return) a label at the current position."""
        if name is None:
            self._next_label += 1
            name = f".L{self._next_label}"
        if name in self.labels:
            raise BuilderError(f"duplicate label {name!r}")
        self.labels[name] = len(self.instructions)
        return name

    def fresh_label(self) -> str:
        """Reserve a label name without binding it yet."""
        self._next_label += 1
        return f".L{self._next_label}"

    def bind(self, name: str) -> None:
        """Bind a previously reserved label at the current position."""
        if name in self.labels:
            raise BuilderError(f"duplicate label {name!r}")
        self.labels[name] = len(self.instructions)

    def emit(self, inst: Instruction) -> Instruction:
        """Append a raw instruction (operands may be VRegs)."""
        self.instructions.append(inst)
        self.depths.append(self._loop_depth)
        return inst

    # -- ALU helpers -----------------------------------------------------------

    def _alu3(self, op: Op, rd, rs1, rs2) -> Instruction:
        return self.emit(Instruction(op, rd=rd, rs1=rs1, rs2=rs2))

    def _alui(self, op: Op, rd, rs1, imm: int) -> Instruction:
        return self.emit(Instruction(op, rd=rd, rs1=rs1, imm=imm))

    def add(self, rd, rs1, rs2):
        return self._alu3(Op.ADD, rd, rs1, rs2)

    def sub(self, rd, rs1, rs2):
        return self._alu3(Op.SUB, rd, rs1, rs2)

    def and_(self, rd, rs1, rs2):
        return self._alu3(Op.AND, rd, rs1, rs2)

    def or_(self, rd, rs1, rs2):
        return self._alu3(Op.OR, rd, rs1, rs2)

    def xor(self, rd, rs1, rs2):
        return self._alu3(Op.XOR, rd, rs1, rs2)

    def nor(self, rd, rs1, rs2):
        return self._alu3(Op.NOR, rd, rs1, rs2)

    def sll(self, rd, rs1, rs2):
        return self._alu3(Op.SLL, rd, rs1, rs2)

    def srl(self, rd, rs1, rs2):
        return self._alu3(Op.SRL, rd, rs1, rs2)

    def sra(self, rd, rs1, rs2):
        return self._alu3(Op.SRA, rd, rs1, rs2)

    def slt(self, rd, rs1, rs2):
        return self._alu3(Op.SLT, rd, rs1, rs2)

    def mul(self, rd, rs1, rs2):
        return self._alu3(Op.MUL, rd, rs1, rs2)

    def div(self, rd, rs1, rs2):
        return self._alu3(Op.DIV, rd, rs1, rs2)

    def rem(self, rd, rs1, rs2):
        return self._alu3(Op.REM, rd, rs1, rs2)

    def addi(self, rd, rs1, imm: int):
        return self._alui(Op.ADDI, rd, rs1, imm)

    def andi(self, rd, rs1, imm: int):
        return self._alui(Op.ANDI, rd, rs1, imm)

    def ori(self, rd, rs1, imm: int):
        return self._alui(Op.ORI, rd, rs1, imm)

    def xori(self, rd, rs1, imm: int):
        return self._alui(Op.XORI, rd, rs1, imm)

    def slti(self, rd, rs1, imm: int):
        return self._alui(Op.SLTI, rd, rs1, imm)

    def slli(self, rd, rs1, imm: int):
        return self._alui(Op.SLLI, rd, rs1, imm)

    def srli(self, rd, rs1, imm: int):
        return self._alui(Op.SRLI, rd, rs1, imm)

    def lui(self, rd, imm: int):
        return self.emit(Instruction(Op.LUI, rd=rd, imm=imm))

    def mov(self, rd, rs1):
        """Register copy (``or rd, rs1, r0``-style, via ADDI 0)."""
        return self.addi(rd, rs1, 0)

    def li(self, rd, value: int):
        """Load a 32-bit constant, splitting into LUI/ORI when needed."""
        value &= 0xFFFF_FFFF
        if value < 0x8000:
            return self._alui(Op.ADDI, rd, None, value)
        upper, lower = value >> 16, value & 0xFFFF
        self.lui(rd, upper)
        if lower:
            return self.ori(rd, rd, lower)
        return self.instructions[-1]

    # -- FP helpers --------------------------------------------------------------

    def fadd(self, rd, rs1, rs2):
        return self._alu3(Op.FADD, rd, rs1, rs2)

    def fsub(self, rd, rs1, rs2):
        return self._alu3(Op.FSUB, rd, rs1, rs2)

    def fmul(self, rd, rs1, rs2):
        return self._alu3(Op.FMUL, rd, rs1, rs2)

    def fdiv(self, rd, rs1, rs2):
        return self._alu3(Op.FDIV, rd, rs1, rs2)

    def fmov(self, rd, rs1):
        return self.emit(Instruction(Op.FMOV, rd=rd, rs1=rs1))

    def fneg(self, rd, rs1):
        return self.emit(Instruction(Op.FNEG, rd=rd, rs1=rs1))

    def cvtif(self, rd, rs1):
        """Convert integer ``rs1`` to FP ``rd``."""
        return self.emit(Instruction(Op.CVTIF, rd=rd, rs1=rs1))

    def cvtfi(self, rd, rs1):
        """Convert FP ``rs1`` to integer ``rd`` (truncating)."""
        return self.emit(Instruction(Op.CVTFI, rd=rd, rs1=rs1))

    def flt(self, rd, rs1, rs2):
        """Integer ``rd`` = 1 if FP ``rs1 < rs2`` else 0."""
        return self._alu3(Op.FLT, rd, rs1, rs2)

    # -- memory helpers ------------------------------------------------------------

    def _mem(self, op: Op, data, base, imm: int, mode: AddrMode, index=None) -> Instruction:
        if op in (Op.LW, Op.LB, Op.LFW):
            inst = Instruction(op, rd=data, rs1=base, imm=imm, mode=mode, rs2=index)
        else:
            if mode is AddrMode.BASE_REG:
                raise BuilderError(
                    "base+reg stores are unsupported (rs2 holds the store value)"
                )
            inst = Instruction(op, rs1=base, rs2=data, imm=imm, mode=mode)
        return self.emit(inst)

    def lw(self, rd, base, imm: int = 0, mode: AddrMode = AddrMode.BASE_IMM, index=None):
        return self._mem(Op.LW, rd, base, imm, mode, index)

    def lb(self, rd, base, imm: int = 0, mode: AddrMode = AddrMode.BASE_IMM, index=None):
        return self._mem(Op.LB, rd, base, imm, mode, index)

    def lfw(self, rd, base, imm: int = 0, mode: AddrMode = AddrMode.BASE_IMM, index=None):
        return self._mem(Op.LFW, rd, base, imm, mode, index)

    def sw(self, value, base, imm: int = 0, mode: AddrMode = AddrMode.BASE_IMM):
        return self._mem(Op.SW, value, base, imm, mode)

    def sb(self, value, base, imm: int = 0, mode: AddrMode = AddrMode.BASE_IMM):
        return self._mem(Op.SB, value, base, imm, mode)

    def sfw(self, value, base, imm: int = 0, mode: AddrMode = AddrMode.BASE_IMM):
        return self._mem(Op.SFW, value, base, imm, mode)

    # -- control helpers ---------------------------------------------------------------

    def beq(self, rs1, rs2, target: str):
        return self.emit(Instruction(Op.BEQ, rs1=rs1, rs2=rs2, target=target))

    def bne(self, rs1, rs2, target: str):
        return self.emit(Instruction(Op.BNE, rs1=rs1, rs2=rs2, target=target))

    def blt(self, rs1, rs2, target: str):
        return self.emit(Instruction(Op.BLT, rs1=rs1, rs2=rs2, target=target))

    def bge(self, rs1, rs2, target: str):
        return self.emit(Instruction(Op.BGE, rs1=rs1, rs2=rs2, target=target))

    def bltz(self, rs1, target: str):
        return self.emit(Instruction(Op.BLTZ, rs1=rs1, target=target))

    def bgez(self, rs1, target: str):
        return self.emit(Instruction(Op.BGEZ, rs1=rs1, target=target))

    def j(self, target: str):
        return self.emit(Instruction(Op.J, target=target))

    def jal(self, rd, target: str):
        return self.emit(Instruction(Op.JAL, rd=rd, target=target))

    def jr(self, rs1):
        return self.emit(Instruction(Op.JR, rs1=rs1))

    def nop(self):
        return self.emit(Instruction(Op.NOP))

    def halt(self):
        return self.emit(Instruction(Op.HALT))

    # -- structured loops --------------------------------------------------------------

    @contextlib.contextmanager
    def loop_until(self, counter: "VReg | int", bound: "VReg | int | None" = None) -> Iterator[None]:
        """Loop while ``counter < bound``.

        The body must advance ``counter``; the bound may be a register or
        (when ``bound`` is an ``int``) is materialized into a fresh
        virtual register before the loop.
        """
        if isinstance(bound, int):
            limit = self.vint("loop_bound")
            self.li(limit, bound)
        elif bound is None:
            raise BuilderError("loop_until requires a bound")
        else:
            limit = bound
        head = self.label()
        exit_label = self.fresh_label()
        self.bge(counter, limit, exit_label)
        self._loop_depth += 1
        try:
            yield
        finally:
            self._loop_depth -= 1
            self.j(head)
            self.bind(exit_label)

    @contextlib.contextmanager
    def repeat(self, times: int) -> Iterator["VReg"]:
        """Loop a fixed number of times; yields the induction register."""
        counter = self.vint("rep_i")
        self.li(counter, 0)
        with self.loop_until(counter, times):
            yield counter
            self.addi(counter, counter, 1)

    # -- finalization --------------------------------------------------------------------

    def build(self, int_regs: int = 32, fp_regs: int = 32) -> Program:
        """Lower virtual registers and return an executable program.

        ``int_regs``/``fp_regs`` give the architected budget (the paper
        uses 32/32 as baseline and 8/8 for Figure 9).
        """
        from repro.isa.regalloc import allocate_registers

        return allocate_registers(self, int_regs=int_regs, fp_regs=fp_regs)
