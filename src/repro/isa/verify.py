"""Static program verification.

Catches the mistakes workload authors actually make before they turn
into confusing functional-simulator errors mid-run:

* register-class mismatches (integer opcode reading an FP register,
  FP arithmetic on integer registers, FP base addresses);
* malformed operand shapes (missing fields for an opcode);
* writes to ``r0`` (legal but almost always a bug in generated code);
* unreachable trailing code / missing ``HALT``.

The checks are heuristic lint, not a type system: ``repro`` programs are
architectural models, so the verifier warns rather than blocking when a
pattern is legal-but-suspicious.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import AddrMode, Instruction
from repro.isa.opcodes import (
    BRANCH_OPS,
    JUMP_OPS,
    LOAD_OPS,
    MEM_OPS,
    Op,
    OpClass,
    STORE_OPS,
    op_class,
)
from repro.isa.program import Program
from repro.isa.registers import FP_REG_BASE, REG_ZERO, reg_name

#: Opcodes whose rd is an integer register even though sources are FP.
_FP_TO_INT_DEST = frozenset({Op.CVTFI, Op.FLT})
#: Opcodes whose rd is FP with an integer source.
_INT_TO_FP_DEST = frozenset({Op.CVTIF})
#: FP-register opcodes (operands in the FP file unless noted above).
_FP_OPS = frozenset({Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV, Op.FMOV, Op.FNEG})


def _is_fp(reg: int | None) -> bool:
    return reg is not None and reg >= FP_REG_BASE


@dataclass
class Finding:
    """One verifier finding."""

    index: int
    severity: str  # "error" or "warning"
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] #{self.index}: {self.message}"


def verify_program(program: Program) -> list[Finding]:
    """Lint ``program``; returns findings (empty = clean)."""
    findings: list[Finding] = []

    def err(index: int, message: str) -> None:
        findings.append(Finding(index, "error", message))

    def warn(index: int, message: str) -> None:
        findings.append(Finding(index, "warning", message))

    saw_halt = False
    for i, inst in enumerate(program):
        op = inst.op
        cls = op_class(op)
        if op is Op.HALT:
            saw_halt = True
        _check_shape(inst, i, err)
        _check_classes(inst, i, err)
        if inst.rd == REG_ZERO and op not in (Op.NOP, Op.HALT):
            warn(i, f"writes r0 (discarded): {inst}")
        if op in MEM_OPS and inst.mode in (AddrMode.POST_INC, AddrMode.POST_DEC):
            if inst.imm == 0:
                warn(i, f"post-update by 0 has no effect: {inst}")
        if cls is OpClass.IDIV and inst.rs2 == REG_ZERO:
            err(i, f"divides by the hardwired zero register: {inst}")
    if not saw_halt:
        warn(len(program) - 1 if len(program) else 0, "program has no HALT")
    return findings


def _check_shape(inst: Instruction, i: int, err) -> None:
    op = inst.op
    if op in MEM_OPS and inst.rs1 is None:
        err(i, f"memory access without a base register: {inst}")
    if op in LOAD_OPS and inst.rd is None:
        err(i, f"load without a destination: {inst}")
    if op in STORE_OPS and inst.rs2 is None:
        err(i, f"store without a value register: {inst}")
    if op in BRANCH_OPS and inst.rs1 is None:
        err(i, f"branch without a comparison register: {inst}")
    if op in (JUMP_OPS - {Op.JR}) and inst.target is None:
        err(i, f"jump without a target: {inst}")
    if op is Op.JR and inst.rs1 is None:
        err(i, f"jr without a register: {inst}")


def _check_classes(inst: Instruction, i: int, err) -> None:
    op = inst.op
    if op in MEM_OPS:
        if _is_fp(inst.rs1):
            err(i, f"FP register used as base address: {inst}")
        data = inst.rd if op in LOAD_OPS else inst.rs2
        wants_fp = op in (Op.LFW, Op.SFW)
        if data is not None and _is_fp(data) != wants_fp:
            kind = "FP" if wants_fp else "integer"
            err(i, f"{op.name.lower()} needs an {kind} data register: {inst}")
        if inst.mode is AddrMode.BASE_REG and _is_fp(inst.rs2):
            err(i, f"FP register used as index: {inst}")
        return
    if op in _FP_OPS:
        for reg in (inst.rd, inst.rs1, inst.rs2):
            if reg is not None and not _is_fp(reg):
                err(i, f"{op.name.lower()} on integer register {reg_name(reg)}: {inst}")
        return
    if op in _FP_TO_INT_DEST:
        if inst.rd is not None and _is_fp(inst.rd):
            err(i, f"{op.name.lower()} writes an integer result: {inst}")
        if inst.rs1 is not None and not _is_fp(inst.rs1):
            err(i, f"{op.name.lower()} reads the FP file: {inst}")
        if op is Op.FLT and inst.rs2 is not None and not _is_fp(inst.rs2):
            err(i, f"flt compares FP registers: {inst}")
        return
    if op in _INT_TO_FP_DEST:
        if inst.rd is not None and not _is_fp(inst.rd):
            err(i, f"cvtif writes the FP file: {inst}")
        if inst.rs1 is not None and _is_fp(inst.rs1):
            err(i, f"cvtif reads the integer file: {inst}")
        return
    if op in BRANCH_OPS or op_class(op) is OpClass.IALU or op in (Op.MUL, Op.DIV, Op.REM):
        for reg in (inst.rd, inst.rs1, inst.rs2):
            if reg is not None and _is_fp(reg):
                err(i, f"integer op on FP register {reg_name(reg)}: {inst}")
