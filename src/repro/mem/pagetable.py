"""Page table: the structure the TLB designs cache.

Physical frames are assigned to virtual pages on first touch (demand
allocation), which is all an architectural study needs — the interesting
state is the *mapping identity* plus the per-page reference and dirty
bits, because the multi-level/pretranslation designs must write status
changes through to the base TLB (paper §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Default page size used by the paper's baseline (4 KB); Figure 8 uses 8 KB.
DEFAULT_PAGE_SIZE = 4096


@dataclass
class PageTableEntry:
    """One virtual-page mapping with status bits."""

    vpn: int
    ppn: int
    referenced: bool = False
    dirty: bool = False


class PageTable:
    """Demand-allocated single-level page table.

    Parameters
    ----------
    page_size:
        Bytes per page; must be a power of two.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE):
        if page_size <= 0 or page_size & (page_size - 1):
            raise ValueError(f"page size must be a positive power of two: {page_size}")
        self.page_size = page_size
        self.page_shift = page_size.bit_length() - 1
        self._entries: dict[int, PageTableEntry] = {}
        self._next_frame = 0

    def vpn_of(self, vaddr: int) -> int:
        """Virtual page number of a virtual address."""
        return vaddr >> self.page_shift

    def offset_of(self, vaddr: int) -> int:
        """Page offset of a virtual address."""
        return vaddr & (self.page_size - 1)

    def walk(self, vpn: int) -> PageTableEntry:
        """Return the entry for ``vpn``, allocating a frame on first touch.

        This is what the (hardware or software) TLB miss handler invokes;
        the 30-cycle miss penalty is charged by the timing engine, not
        here.
        """
        entry = self._entries.get(vpn)
        if entry is None:
            entry = PageTableEntry(vpn=vpn, ppn=self._next_frame)
            self._next_frame += 1
            self._entries[vpn] = entry
        return entry

    def translate(self, vaddr: int, *, write: bool = False) -> int:
        """Translate a virtual address, updating status bits."""
        entry = self.walk(self.vpn_of(vaddr))
        entry.referenced = True
        if write:
            entry.dirty = True
        return (entry.ppn << self.page_shift) | self.offset_of(vaddr)

    def mapped_pages(self) -> int:
        """Number of virtual pages touched so far."""
        return len(self._entries)

    def entries(self) -> list[PageTableEntry]:
        """All mappings, in vpn order."""
        return [self._entries[vpn] for vpn in sorted(self._entries)]
