"""Standard address-space layout and region allocation for workloads.

The synthetic workloads place their data in conventional UNIX-style
regions so their reference streams have the same *structure* the paper's
benchmarks do: globals in a low data segment, dynamic structures in a
heap that grows upward, and stack data (including the register
allocator's spill area) near the top of the address space.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Start of the program code segment.
CODE_BASE = 0x0040_0000

#: Start of the global (static data) segment.
GLOBAL_BASE = 0x1000_0000

#: Start of the heap segment.
HEAP_BASE = 0x2000_0000

#: Top of the downward-growing workload stack region.
STACK_TOP = 0x7FE0_0000

#: Base of the register-allocator spill area (kept clear of STACK_TOP).
SPILL_BASE = 0x7FF0_0000


@dataclass
class Region:
    """A named, bump-allocated region of the address space."""

    name: str
    base: int
    limit: int
    cursor: int = field(default=-1)

    def __post_init__(self):
        if self.cursor < 0:
            self.cursor = self.base

    def allocate(self, size: int, align: int = 8) -> int:
        """Reserve ``size`` bytes; returns the base address."""
        if size < 0:
            raise ValueError(f"negative allocation: {size}")
        if align <= 0 or align & (align - 1):
            raise ValueError(f"alignment must be a power of two: {align}")
        addr = (self.cursor + align - 1) & ~(align - 1)
        if addr + size > self.limit:
            raise MemoryError(
                f"region {self.name!r} exhausted: need {size} bytes at {addr:#x}"
            )
        self.cursor = addr + size
        return addr

    @property
    def used(self) -> int:
        """Bytes allocated so far."""
        return self.cursor - self.base


class AddressSpaceLayout:
    """The conventional region set used by all workloads."""

    def __init__(self):
        self.globals = Region("globals", GLOBAL_BASE, HEAP_BASE)
        self.heap = Region("heap", HEAP_BASE, 0x6000_0000)
        self.stack = Region("stack", 0x7000_0000, STACK_TOP)

    def alloc_global(self, size: int, align: int = 8) -> int:
        """Allocate in the global segment."""
        return self.globals.allocate(size, align)

    def alloc_heap(self, size: int, align: int = 8) -> int:
        """Allocate on the heap."""
        return self.heap.allocate(size, align)

    def alloc_stack(self, size: int, align: int = 8) -> int:
        """Allocate in the stack region."""
        return self.stack.allocate(size, align)
