"""Virtual-memory substrate.

``memory``
    :class:`SparseMemory` — word-granularity sparse backing store for the
    functional simulator (virtual-addressed).
``pagetable``
    :class:`PageTable` — virtual-page to physical-frame mapping with
    reference/dirty status bits; the structure the TLBs cache.
``layout``
    Standard address-space layout (code/global/heap/stack regions) and a
    bump allocator used by the workload generators.
"""

from repro.mem.layout import AddressSpaceLayout, Region
from repro.mem.memory import SparseMemory
from repro.mem.pagetable import PageTable, PageTableEntry

__all__ = [
    "AddressSpaceLayout",
    "Region",
    "SparseMemory",
    "PageTable",
    "PageTableEntry",
]
