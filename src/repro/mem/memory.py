"""Sparse data memory for the functional simulator.

The store is word-granular (4-byte words) and virtually addressed: the
functional simulator operates on virtual addresses, while the page table
(:mod:`repro.mem.pagetable`) supplies physical frame numbers to the TLB
and cache models on the timing side.

Words hold either a 32-bit integer or a Python float (for the FP
registers' ``LFW``/``SFW`` traffic).  Byte accesses (``LB``/``SB``) are
supported on integer-valued words; reading a byte out of a float-valued
word is an error, as it would be in a real program that type-puns without
a defined representation here.
"""

from __future__ import annotations


class MemoryError_(Exception):
    """Raised on invalid memory accesses (misalignment, type puns)."""


class SparseMemory:
    """Word-granularity sparse memory, default-zero."""

    __slots__ = ("_words",)

    def __init__(self):
        self._words: dict[int, int | float] = {}

    def load_word(self, vaddr: int) -> int | float:
        """Read the aligned word at ``vaddr`` (must be 4-byte aligned)."""
        if vaddr & 3:
            raise MemoryError_(f"misaligned word load at {vaddr:#x}")
        return self._words.get(vaddr, 0)

    def store_word(self, vaddr: int, value: int | float) -> None:
        """Write the aligned word at ``vaddr``."""
        if vaddr & 3:
            raise MemoryError_(f"misaligned word store at {vaddr:#x}")
        if isinstance(value, int):
            value &= 0xFFFF_FFFF
        self._words[vaddr] = value

    def load_byte(self, vaddr: int) -> int:
        """Read the byte at ``vaddr`` (zero-extended)."""
        word = self._words.get(vaddr & ~3, 0)
        if not isinstance(word, int):
            raise MemoryError_(f"byte load from float-valued word at {vaddr:#x}")
        shift = 8 * (vaddr & 3)
        return (word >> shift) & 0xFF

    def store_byte(self, vaddr: int, value: int) -> None:
        """Write the byte at ``vaddr``."""
        aligned = vaddr & ~3
        word = self._words.get(aligned, 0)
        if not isinstance(word, int):
            raise MemoryError_(f"byte store into float-valued word at {vaddr:#x}")
        shift = 8 * (vaddr & 3)
        word = (word & ~(0xFF << shift)) | ((value & 0xFF) << shift)
        self._words[aligned] = word

    def store_words(self, vaddr: int, values) -> None:
        """Bulk-initialize consecutive words starting at ``vaddr``."""
        if vaddr & 3:
            raise MemoryError_(f"misaligned bulk store at {vaddr:#x}")
        for i, value in enumerate(values):
            self.store_word(vaddr + 4 * i, value)

    def clone(self) -> "SparseMemory":
        """Cheap copy for reusing one initialized image across many runs.

        Timing sweeps run the same workload under many translation
        designs; cloning the initialized image is far cheaper than
        regenerating it.
        """
        copy = SparseMemory()
        copy._words = dict(self._words)
        return copy

    def footprint_words(self) -> int:
        """Number of distinct words ever written."""
        return len(self._words)

    def __contains__(self, vaddr: int) -> bool:
        return (vaddr & ~3) in self._words
