"""Evaluation harness: regenerates every table and figure of Section 4.

* :mod:`repro.eval.runner` — the canonical :class:`RunRequest` /
  :class:`RunResult` pair and single-run execution with build caching;
* :mod:`repro.eval.parallel` — :func:`run_many`: grids scheduled at
  request granularity across worker processes, longest runs first;
* :mod:`repro.eval.resultstore` — content-addressed on-disk memoization
  of finished runs (request hash + code fingerprint);
* :mod:`repro.eval.artifacts` — content-addressed on-disk cache of the
  design-independent build products (program, trace, fetch plan) that
  worker processes hydrate instead of rebuilding;
* :mod:`repro.eval.weighting` — run-time-weighted averaging (the paper's
  aggregation: IPCs weighted by each benchmark's T4 run time, normalized
  to T4);
* :mod:`repro.eval.experiments` — Table 3 and Figures 5/7/8/9 drivers;
* :mod:`repro.eval.missrates` — Figure 6 (trace-driven TLB miss rates);
* :mod:`repro.eval.sensitivity` — ablation sweeps of the design knobs;
* :mod:`repro.eval.export` — CSV/JSON serialization of results;
* :mod:`repro.eval.report` — ASCII tables matching the paper's layout.

Run ``python -m repro.eval <experiment> [--jobs N] [--no-cache]`` to
regenerate one experiment (``table3``, ``figure5`` ... ``figure9``), or
``python -m repro.eval scorecard`` to evaluate every encoded paper claim
(:mod:`repro.eval.claims`) against fresh simulations.
"""

from repro.eval.experiments import (
    ExperimentSpec,
    EXPERIMENTS,
    run_experiment,
    run_figure,
    run_table3,
)
from repro.eval.artifacts import ArtifactStore
from repro.eval.missrates import run_figure6
from repro.eval.parallel import run_many
from repro.eval.resultstore import ResultStore, code_fingerprint
from repro.eval.runner import RunRequest, RunResult, run_one, simulate
from repro.eval.weighting import normalized_rtw_average

__all__ = [
    "ArtifactStore",
    "EXPERIMENTS",
    "ExperimentSpec",
    "ResultStore",
    "RunRequest",
    "RunResult",
    "code_fingerprint",
    "normalized_rtw_average",
    "run_experiment",
    "run_figure",
    "run_figure6",
    "run_many",
    "run_one",
    "run_table3",
    "simulate",
]
