"""Evaluation harness: regenerates every table and figure of Section 4.

This package's ``__init__`` is the **stable facade**: everything an
experiment script needs is importable from ``repro.eval`` directly, and
``__all__`` below is the compatibility surface — the submodule layout
may shift underneath it.

* :mod:`repro.eval.runner` — the canonical :class:`RunRequest` /
  :class:`RunResult` pair and single-run execution with build caching;
* :mod:`repro.eval.parallel` — :func:`run_many`: grids scheduled at
  request granularity across worker processes, longest runs first;
* :mod:`repro.eval.options` — :class:`EvalOptions`, the parameter
  object every grid API takes, and the shared CLI flags
  (:func:`add_eval_args`);
* :mod:`repro.eval.resultstore` — content-addressed on-disk memoization
  of finished runs (request hash + code fingerprint);
* :mod:`repro.eval.artifacts` — content-addressed on-disk cache of the
  design-independent build products (program, trace, fetch plan) that
  worker processes hydrate instead of rebuilding;
* :mod:`repro.eval.weighting` — run-time-weighted averaging (the paper's
  aggregation: IPCs weighted by each benchmark's T4 run time, normalized
  to T4);
* :mod:`repro.eval.experiments` — Table 3 and Figures 5/7/8/9 drivers;
* :mod:`repro.eval.missrates` — Figure 6 (trace-driven TLB miss rates);
* :mod:`repro.eval.sensitivity` — ablation sweeps of the design knobs;
* :mod:`repro.eval.export` — CSV/JSON serialization of results;
* :mod:`repro.eval.report` — ASCII tables matching the paper's layout.

The evaluation *service* (:mod:`repro.serve`) plugs in here too:
``ServeClient``, ``run_remote``, ``server_info`` and
``shutdown_server`` are re-exported lazily, and
``run_many(requests, EvalOptions(server=addr))`` transparently submits
the grid to a running ``python -m repro.serve`` daemon.

Run ``python -m repro.eval <experiment> [--jobs N] [--no-cache]
[--server [ADDR]]`` to regenerate one experiment (``table3``,
``figure5`` ... ``figure9``), or ``python -m repro.eval scorecard`` to
evaluate every encoded paper claim (:mod:`repro.eval.claims`) against
fresh simulations.
"""

from repro.eval.experiments import (
    ExperimentSpec,
    EXPERIMENTS,
    run_experiment,
    run_figure,
    run_table3,
)
from repro.eval.artifacts import ArtifactStore
from repro.eval.missrates import run_figure6
from repro.eval.options import EvalOptions, add_eval_args, default_server_address
from repro.eval.parallel import ProgressError, run_many
from repro.eval.resultstore import ResultStore, code_fingerprint
from repro.eval.runner import RunRequest, RunResult, run_one, simulate
from repro.eval.weighting import normalized_rtw_average

#: The serve-side names re-exported lazily (importing them eagerly
#: would pull asyncio machinery into every worker process).
_SERVE_EXPORTS = ("ServeClient", "run_remote", "server_info", "shutdown_server")

__all__ = [
    "ArtifactStore",
    "EXPERIMENTS",
    "EvalOptions",
    "ExperimentSpec",
    "ProgressError",
    "ResultStore",
    "RunRequest",
    "RunResult",
    "ServeClient",
    "add_eval_args",
    "code_fingerprint",
    "default_server_address",
    "normalized_rtw_average",
    "run_experiment",
    "run_figure",
    "run_figure6",
    "run_many",
    "run_one",
    "run_remote",
    "run_table3",
    "server_info",
    "shutdown_server",
    "simulate",
]


def __getattr__(name: str):
    if name in _SERVE_EXPORTS:
        import repro.serve.client as _client

        return getattr(_client, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
