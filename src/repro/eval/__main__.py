"""CLI: regenerate one of the paper's experiments.

Usage::

    python -m repro.eval table3 [--insts N] [--jobs N] [--no-cache]
    python -m repro.eval figure5 [--insts N] [--designs T4,T1,M8] [--jobs 4]
    python -m repro.eval figure6 [--insts N]
    python -m repro.eval figure7|figure8|figure9 ...
    python -m repro.eval scorecard [--jobs 4]
    python -m repro.eval --screen [--workloads ...] [--simulate N]
    python -m repro.eval figure5 --server            # use a running daemon

Timing grids fan out across ``--jobs`` worker processes (scheduled at
request granularity, longest runs first) and memoize every run in the
on-disk result store, so regenerating an unchanged figure is pure cache
hits — rerun with ``--no-cache`` to force fresh simulations.  The store
honors ``$REPRO_RESULT_STORE`` and ``--store DIR``; its hit/miss/stored
counts are reported on stderr after each experiment.  ``--artifacts
[DIR]`` additionally caches the design-independent build products
(program, trace, fetch plan) on disk so worker processes — and later
invocations — hydrate them instead of re-running the functional
simulator (honors ``$REPRO_ARTIFACT_STORE``).

``--server [ADDR]`` submits the grid to a running ``python -m
repro.serve`` daemon instead of simulating locally: the daemon owns the
stores and worker pool, dedupes identical in-flight requests across
every connected client, and streams results back (bit-identical to a
local run).  The shared engine flags live in
:mod:`repro.eval.options`.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.eval.experiments import EXPERIMENTS, run_figure, run_table3
from repro.eval.missrates import run_figure6
from repro.eval.options import EvalOptions, add_eval_args
from repro.eval.report import render_figure, render_figure6, render_table3
from repro.ingest.build import add_trace_args, trace_workload_from_args


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Regenerate a table/figure from Austin & Sohi (ISCA '96).",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=[
            "table3",
            "figure5",
            "figure6",
            "figure7",
            "figure8",
            "figure9",
            "scorecard",
        ],
    )
    parser.add_argument(
        "--screen",
        action="store_true",
        help="screen the design space with the analytical model and "
        "simulate only the Pareto frontier (instead of an experiment)",
    )
    parser.add_argument(
        "--simulate",
        type=int,
        default=8,
        help="with --screen: frontier designs to confirm by simulation "
        "(default 8)",
    )
    parser.add_argument(
        "--insts",
        type=int,
        default=60_000,
        help="dynamic instruction budget per run (default 60000)",
    )
    parser.add_argument(
        "--designs",
        default=None,
        help="comma-separated design subset (default: all of Table 2)",
    )
    parser.add_argument(
        "--workloads",
        default=None,
        help="comma-separated workload subset (default: all ten)",
    )
    add_eval_args(parser, jobs=True, cache=True, artifacts=True, server=True)
    add_trace_args(parser)
    parser.add_argument("--quiet", action="store_true", help="suppress progress lines")
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a host-side per-phase profile of the grid (forces "
        "serial execution and fresh simulations)",
    )
    args = parser.parse_args(argv)
    if args.screen and args.experiment:
        parser.error("--screen replaces the experiment argument")
    if not args.screen and not args.experiment:
        parser.error("an experiment name (or --screen) is required")

    workloads = args.workloads.split(",") if args.workloads else None
    if args.trace is not None:
        # An ingested trace replays as the (single) workload: the minted
        # token is an ordinary workload name to everything downstream.
        if args.experiment == "figure6":
            parser.error("figure6 re-runs the functional simulator; an "
                         "ingested trace has none (--trace does not apply)")
        if workloads:
            parser.error("--trace and --workloads are mutually exclusive")
        workloads = [trace_workload_from_args(args)]
    progress = None if args.quiet else lambda msg: print(f"  .. {msg}", file=sys.stderr)
    if args.experiment == "figure6":
        # Figure 6 is trace-driven: the engine knobs do not apply.
        opts = EvalOptions()
    else:
        opts = EvalOptions.from_args(args).replace(progress=progress)
    if args.profile:
        if args.experiment in ("figure6", "scorecard"):
            print(f"[--profile is not supported for {args.experiment}; ignoring]",
                  file=sys.stderr)
        elif opts.server is not None:
            print("[--profile cannot cross --server; ignoring]", file=sys.stderr)
        else:
            from repro.perf import SimProfiler

            opts = opts.replace(profiler=SimProfiler())

    started = time.time()
    if args.screen:
        from repro.eval.screen import ScreenResult, ScreenSpec, screen

        spec = ScreenSpec(
            workloads=tuple(workloads or ()),
            max_instructions=args.insts,
            simulate=args.simulate,
        )
        if opts.server is not None:
            from repro.serve.client import screen_remote

            result = ScreenResult.from_payload(
                screen_remote(spec.to_dict(), address=opts.server)
            )
        else:
            result = screen(spec, opts)
        print(result.render())
    elif args.experiment == "scorecard":
        from repro.eval.claims import run_scorecard

        result = run_scorecard(
            max_instructions=args.insts,
            workloads=workloads,
            options=opts,
        )
        print(result.render())
    elif args.experiment == "table3":
        print(render_table3(run_table3(
            workloads=workloads, max_instructions=args.insts, options=opts
        )))
    elif args.experiment == "figure6":
        print(
            render_figure6(
                run_figure6(workloads=workloads, max_instructions=max(args.insts, 120_000))
            )
        )
    else:
        designs = args.designs.split(",") if args.designs else None
        kwargs = dict(
            workloads=workloads,
            max_instructions=args.insts,
            options=opts,
        )
        if designs is not None:
            kwargs["designs"] = designs
        result = run_figure(args.experiment, **kwargs)
        print(render_figure(result))
    if opts.profiler is not None:
        print(f"\n{opts.profiler.render()}", file=sys.stderr)
    what = args.experiment or "screen"
    print(f"\n[{what} regenerated in {time.time() - started:.1f}s]", file=sys.stderr)
    if opts.server is not None:
        print(f"[evaluated by server: {opts.server}]", file=sys.stderr)
    if opts.store is not None:
        print(f"[result store: {opts.store.stats.render()} | {opts.store.root}]", file=sys.stderr)
    if opts.artifacts is not None:
        print(
            f"[artifact cache: {len(opts.artifacts)} entries | {opts.artifacts.root}]",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
