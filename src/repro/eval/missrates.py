"""Figure 6: TLB miss rates versus TLB size.

The paper measures, per benchmark, the miss rate of fully-associative
TLBs from 4 to 128 entries over the data reference stream: the 4/8/16
entry points use LRU replacement (as the L1 TLBs do) and the 32/64/128
entry points use random replacement (as the base TLBs do).  The "RTW
Avg" line is the run-time weighted average over all benchmarks.

This is a trace-driven study — no timing machinery — so it is fast even
at large instruction budgets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.func.executor import Executor
from repro.tlb.storage import FullyAssocTLB
from repro.workloads import iter_workload_names, make_workload

#: The paper's TLB size sweep and the policy used at each point.
SIZES: tuple[int, ...] = (4, 8, 16, 32, 64, 128)


def policy_for(size: int) -> str:
    """LRU below 32 entries (L1-style), random at and above (base-style)."""
    return "lru" if size < 32 else "random"


@dataclass
class MissRateRow:
    """Miss rates of one program across the size sweep."""

    program: str
    references: int
    #: miss_rate[size] for each size in SIZES.
    miss_rate: dict[int, float]


def measure_miss_rates(
    workload: str,
    sizes: Sequence[int] = SIZES,
    max_instructions: int = 120_000,
    page_size: int = 4096,
    int_regs: int = 32,
    fp_regs: int = 32,
    scale: float = 1.0,
) -> MissRateRow:
    """Drive one workload's reference stream through the size sweep."""
    build = make_workload(workload).build(int_regs=int_regs, fp_regs=fp_regs, scale=scale)
    page_shift = page_size.bit_length() - 1
    tlbs = [FullyAssocTLB(size, replacement=policy_for(size)) for size in sizes]
    executor = Executor(build.program, build.memory)
    references = 0
    for dyn in executor.run(max_instructions=max_instructions):
        if dyn.ea is None:
            continue
        references += 1
        vpn = dyn.ea >> page_shift
        for tlb in tlbs:
            if not tlb.probe(vpn):
                tlb.insert(vpn)
    rates = {size: tlb.miss_rate for size, tlb in zip(sizes, tlbs)}
    return MissRateRow(program=workload, references=references, miss_rate=rates)


@dataclass
class Figure6Result:
    """The full Figure 6 data set."""

    sizes: tuple[int, ...]
    rows: list[MissRateRow]
    rtw_average: dict[int, float]


def run_figure6(
    workloads: Iterable[str] | None = None,
    sizes: Sequence[int] = SIZES,
    max_instructions: int = 120_000,
    page_size: int = 4096,
    scale: float = 1.0,
) -> Figure6Result:
    """Measure the Figure 6 sweep for every workload plus the average.

    The average is weighted by each program's reference count (the
    run-time weighting of the paper, with references standing in for
    cycles since this study runs no timing model).
    """
    names = list(workloads) if workloads is not None else list(iter_workload_names())
    rows = [
        measure_miss_rates(
            name,
            sizes=sizes,
            max_instructions=max_instructions,
            page_size=page_size,
            scale=scale,
        )
        for name in names
    ]
    total_refs = sum(row.references for row in rows)
    rtw = {
        size: (
            sum(row.miss_rate[size] * row.references for row in rows) / total_refs
            if total_refs
            else 0.0
        )
        for size in sizes
    }
    return Figure6Result(sizes=tuple(sizes), rows=rows, rtw_average=rtw)
