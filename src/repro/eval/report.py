"""ASCII rendering of experiment results, matching the paper's layout."""

from __future__ import annotations

from repro.eval.experiments import FigureResult, Table3Row
from repro.eval.missrates import Figure6Result

_BAR_WIDTH = 46


def _workload_label(name: str) -> str:
    """Column label: trace tokens shorten to their ``stem@digest`` display."""
    from repro.ingest.build import is_trace_workload, parse_workload

    if is_trace_workload(name):
        try:
            return parse_workload(name).display
        except ValueError:
            pass
    return name


def render_figure(result: FigureResult) -> str:
    """Render a relative-performance figure as a labeled bar chart."""
    lines = [result.spec.title, "(RTW-average IPC normalized to T4)", ""]
    for design in result.designs:
        rel = result.relative_ipc[design]
        bar = "#" * max(1, round(rel * _BAR_WIDTH))
        lines.append(f"  {design:6s} {rel:6.3f}  {bar}")
    lines.append("")
    lines.append("Per-workload relative IPC:")
    header = "  design " + " ".join(
        f"{_workload_label(w)[:7]:>8s}" for w in result.workloads
    )
    lines.append(header)
    for design in result.designs:
        per = result.per_workload_relative(design)
        row = " ".join(f"{per[w]:8.3f}" for w in result.workloads)
        lines.append(f"  {design:6s} {row}")
    return "\n".join(lines)


def render_table3(rows: list[Table3Row]) -> str:
    """Render the Table 3 analogue (baseline program characterization)."""
    lines = [
        "Program execution performance (baseline 8-way OOO, T4)",
        "",
        f"  {'Program':12s} {'Insts':>8s} {'Loads':>8s} {'Stores':>8s} "
        f"{'I/C(iss)':>9s} {'I/C(com)':>9s} {'Refs/Cyc':>9s} {'BrPred%':>8s}",
    ]
    for r in rows:
        lines.append(
            f"  {r.program:12s} {r.instructions:8d} {r.loads:8d} {r.stores:8d} "
            f"{r.issue_ipc:9.2f} {r.commit_ipc:9.2f} {r.refs_per_cycle:9.2f} "
            f"{100 * r.branch_prediction_rate:8.1f}"
        )
    return "\n".join(lines)


def render_figure6(result: Figure6Result) -> str:
    """Render the TLB miss-rate sweep."""
    sizes = result.sizes
    lines = [
        "TLB miss rates (fully-associative; LRU < 32 entries, random >= 32)",
        "",
        "  " + f"{'Program':12s}" + " ".join(f"{s:>8d}" for s in sizes),
    ]
    for row in result.rows:
        rates = " ".join(f"{100 * row.miss_rate[s]:8.2f}" for s in sizes)
        lines.append(f"  {row.program:12s}{rates}")
    rtw = " ".join(f"{100 * result.rtw_average[s]:8.2f}" for s in sizes)
    lines.append(f"  {'RTW Avg':12s}{rtw}")
    lines.append("")
    lines.append("  (values are percent of data references missing the TLB)")
    return "\n".join(lines)
