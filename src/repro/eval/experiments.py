"""Experiment drivers for Table 3 and Figures 5, 7, 8, 9.

Each figure is a (processor model, page size, register budget) point
evaluated over all thirteen Table 2 designs and all ten workloads; the
result is the paper's bar chart data — per-design run-time-weighted
average IPC normalized to T4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.eval.options import EvalOptions
from repro.eval.parallel import run_many
from repro.eval.runner import RunRequest, RunResult
from repro.eval.weighting import normalized_rtw_average
from repro.tlb.factory import DESIGN_MNEMONICS
from repro.workloads import iter_workload_names


@dataclass
class ExperimentSpec:
    """One figure's machine configuration."""

    key: str
    title: str
    issue_model: str = "ooo"
    page_size: int = 4096
    int_regs: int = 32
    fp_regs: int = 32

    def request(
        self, workload: str, design: str, max_instructions: int, scale: float
    ) -> RunRequest:
        return RunRequest(
            workload=workload,
            design=design,
            issue_model=self.issue_model,
            page_size=self.page_size,
            int_regs=self.int_regs,
            fp_regs=self.fp_regs,
            scale=scale,
            max_instructions=max_instructions,
        )


EXPERIMENTS: dict[str, ExperimentSpec] = {
    "figure5": ExperimentSpec(
        "figure5", "Relative performance on baseline simulator (OOO, 4K pages, 32 regs)"
    ),
    "figure7": ExperimentSpec(
        "figure7", "Relative performance with in-order issue", issue_model="inorder"
    ),
    "figure8": ExperimentSpec(
        "figure8", "Relative performance with 8K pages", page_size=8192
    ),
    "figure9": ExperimentSpec(
        "figure9",
        "Relative performance with fewer registers (8 int / 8 fp)",
        int_regs=8,
        fp_regs=8,
    ),
}


@dataclass
class FigureResult:
    """All data behind one relative-performance figure."""

    spec: ExperimentSpec
    designs: tuple[str, ...]
    workloads: tuple[str, ...]
    #: results[design][workload] -> RunResult
    results: dict[str, dict[str, RunResult]]
    #: Per-design RTW-average IPC normalized to T4.
    relative_ipc: dict[str, float]

    def per_workload_relative(self, design: str) -> dict[str, float]:
        """Per-workload IPC of ``design`` relative to T4 (same workload)."""
        out = {}
        for w in self.workloads:
            t4 = self.results["T4"][w].ipc
            out[w] = self.results[design][w].ipc / t4 if t4 else 0.0
        return out


def run_figure(
    key: str,
    designs: Iterable[str] = DESIGN_MNEMONICS,
    workloads: Iterable[str] | None = None,
    max_instructions: int = 60_000,
    scale: float = 1.0,
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
    store=None,
    profiler=None,
    artifacts=None,
    options: "EvalOptions | None" = None,
) -> FigureResult:
    """Run one relative-performance figure's full design x workload grid.

    ``T4`` is always included (it is the normalization reference).  The
    grid is evaluated through :func:`repro.eval.parallel.run_many`,
    configured either by an :class:`~repro.eval.options.EvalOptions`
    (``options`` — which wins outright when given, and may point the
    grid at a running evaluation server) or by the individual
    ``jobs``/``store``/``profiler``/``artifacts`` knobs.
    """
    spec = EXPERIMENTS[key]
    design_list = list(dict.fromkeys(["T4", *designs]))
    workload_list = list(workloads) if workloads is not None else list(iter_workload_names())
    requests = [
        spec.request(workload, design, max_instructions, scale)
        for workload in workload_list
        for design in design_list
    ]
    if options is None:
        options = EvalOptions(
            jobs=jobs, store=store, progress=progress,
            profiler=profiler, artifacts=artifacts,
        )
    grid = run_many(requests, options)
    results: dict[str, dict[str, RunResult]] = {d: {} for d in design_list}
    for req, res in zip(requests, grid):
        results[req.design][req.workload] = res
    t4_cycles = {w: float(results["T4"][w].cycles) for w in workload_list}
    ipc_by_design = {
        d: {w: results[d][w].ipc for w in workload_list} for d in design_list
    }
    relative = normalized_rtw_average(ipc_by_design, t4_cycles)
    return FigureResult(
        spec=spec,
        designs=tuple(design_list),
        workloads=tuple(workload_list),
        results=results,
        relative_ipc=relative,
    )


@dataclass
class Table3Row:
    """One benchmark's baseline characterization (paper Table 3)."""

    program: str
    instructions: int
    loads: int
    stores: int
    issue_ipc: float
    commit_ipc: float
    refs_per_cycle: float
    branch_prediction_rate: float


def run_table3(
    workloads: Iterable[str] | None = None,
    max_instructions: int = 60_000,
    scale: float = 1.0,
    jobs: int = 1,
    store=None,
    profiler=None,
    artifacts=None,
    options: "EvalOptions | None" = None,
) -> list[Table3Row]:
    """Baseline (OOO, T4) per-program execution statistics."""
    spec = EXPERIMENTS["figure5"]
    names = list(workloads) if workloads is not None else list(iter_workload_names())
    requests = [spec.request(w, "T4", max_instructions, scale) for w in names]
    if options is None:
        options = EvalOptions(
            jobs=jobs, store=store, profiler=profiler, artifacts=artifacts
        )
    rows = []
    for res in run_many(requests, options):
        s = res.stats
        rows.append(
            Table3Row(
                program=res.request.workload,
                instructions=s.committed,
                loads=s.loads,
                stores=s.stores,
                issue_ipc=s.issue_ipc,
                commit_ipc=s.commit_ipc,
                refs_per_cycle=s.mem_refs_per_cycle,
                branch_prediction_rate=s.branch_prediction_rate,
            )
        )
    return rows


def run_experiment(key: str, **kwargs):
    """Dispatch an experiment by name (CLI entry point helper)."""
    if key == "table3":
        return run_table3(**kwargs)
    if key == "figure6":
        from repro.eval.missrates import run_figure6

        # Figure 6 is trace-driven (no timing runs): nothing to shard
        # or memoize, so the engine knobs do not apply.
        kwargs.pop("jobs", None)
        kwargs.pop("store", None)
        kwargs.pop("artifacts", None)
        kwargs.pop("options", None)
        return run_figure6(**kwargs)
    if key in EXPERIMENTS:
        return run_figure(key, **kwargs)
    known = ["table3", "figure6", *EXPERIMENTS]
    raise ValueError(f"unknown experiment {key!r}; known: {known}")
