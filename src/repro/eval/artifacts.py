"""Content-addressed on-disk cache of workload *build* artifacts.

The result store (:mod:`repro.eval.resultstore`) memoizes finished
runs; this module memoizes the expensive *design-independent* half of a
run so it can be captured once and replayed by any number of worker
processes — the trace capture/replay pattern of simulation-acceleration
work.  Two artifact kinds are stored, as version-2
:mod:`repro.func.tracefile` containers:

* **build** — the generated :class:`~repro.isa.program.Program` plus its
  dynamic instruction trace, keyed on the build axes
  ``(workload, int_regs, fp_regs, scale, max_instructions)``;
* **plan** — a per-frontend-configuration
  :class:`~repro.engine.frontend.FetchPlan`, keyed on the build axes
  plus :func:`~repro.engine.frontend.fetch_config_key`.

Keys follow the result store's invalidation rule: the content hash
mixes in the :func:`~repro.eval.resultstore.code_fingerprint`, so *any*
source change invalidates every artifact (stale entries are simply
never looked up again; prune with :meth:`ArtifactStore.clear`).

Layout (one container per artifact, two-hex-char shard directories)::

    <root>/ab/abcdef....rpta

``<root>`` defaults to ``$REPRO_ARTIFACT_STORE`` or
``~/.cache/repro/artifacts``.  Writes are atomic (temp file + rename)
so concurrent build workers and concurrent invocations can share a
store; corrupt or wrong-version entries read as misses and are rebuilt.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.profile import (
    AnalysisProfile,
    ProfileParams,
    decode_profile_section,
    encode_profile_section,
)
from repro.engine.frontend import FetchPlan, decode_fetch_plan, encode_fetch_plan
from repro.eval.resultstore import code_fingerprint
from repro.func.dyninst import DynInst
from repro.func.tracefile import (
    SECTION_EXTERN,
    SECTION_KERNEL,
    SECTION_PLAN,
    SECTION_PROFILE,
    SECTION_PROGRAM,
    SECTION_TRACE,
    TraceFileError,
    decode_extern_meta,
    decode_program,
    decode_trace,
    encode_extern_meta,
    encode_program,
    encode_trace,
    read_container,
    write_container,
)
from repro.isa.program import Program
from repro.kernel.encode import (
    EncodedTrace,
    decode_kernel_section,
    encode_kernel_section,
)

#: Build axes: (workload, int_regs, fp_regs, scale, max_instructions).
BuildAxes = tuple


@dataclass
class ArtifactStats:
    """Per-process counters of artifact traffic (the re-build audit)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0

    def render(self) -> str:
        return f"{self.hits} hits, {self.misses} misses, {self.puts} stored"


class ArtifactStore:
    """Persistent, content-addressed cache of builds and fetch plans."""

    def __init__(self, root: "str | Path | None" = None, fingerprint: str | None = None):
        if root is None or root == "":
            root = os.environ.get("REPRO_ARTIFACT_STORE") or (
                Path.home() / ".cache" / "repro" / "artifacts"
            )
        self.root = Path(root)
        self.fingerprint = fingerprint or code_fingerprint()
        self.stats = ArtifactStats()

    # -- keys -----------------------------------------------------------------

    def _key(self, kind: str, axes: BuildAxes, fetch_key: tuple | None = None) -> str:
        payload = {"kind": kind, "axes": list(axes), "code": self.fingerprint}
        if fetch_key is not None:
            payload["fetch"] = list(fetch_key)
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.rpta"

    def build_path(self, axes: BuildAxes) -> Path:
        return self._path(self._key("build", axes))

    def plan_path(self, axes: BuildAxes, fetch_key: tuple) -> Path:
        return self._path(self._key("plan", axes, fetch_key))

    def has_build(self, axes: BuildAxes) -> bool:
        return self.build_path(axes).exists()

    def has_plan(self, axes: BuildAxes, fetch_key: tuple) -> bool:
        return self.plan_path(axes, fetch_key).exists()

    # -- build artifacts ------------------------------------------------------

    def load_build(self, axes: BuildAxes) -> "tuple[Program, list[DynInst]] | None":
        """Hydrate (program, trace) for ``axes``, or None on a miss."""
        path = self.build_path(axes)
        try:
            sections = read_container(path)
            program = decode_program(sections[SECTION_PROGRAM])
            trace = decode_trace(sections[SECTION_TRACE], program)
        except (OSError, KeyError, TraceFileError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return program, trace

    def save_build(self, axes: BuildAxes, program: Program, trace: list) -> Path:
        """Persist a build artifact atomically; returns the entry's path."""
        return self._write(
            self.build_path(axes),
            {
                SECTION_PROGRAM: encode_program(program),
                SECTION_TRACE: encode_trace(trace, len(program)),
            },
        )

    # -- ingested-trace builds ------------------------------------------------

    def load_ingested(
        self, axes: BuildAxes, digest_prefix: str, window_payload: dict
    ) -> "tuple[Program, list[DynInst], dict] | None":
        """Hydrate an ingested external-trace build, or None on a miss.

        Same container family as :meth:`load_build` plus the ``EXTR``
        provenance section, which is *verified* against the requesting
        workload token: a missing/corrupt section, a different source
        digest, or a different window policy all read as clean misses
        (the caller recompiles from the portable trace and overwrites).
        The key already folds the token in via ``axes``, so a verified
        mismatch means the file on disk is damaged or foreign, never
        that two workloads collided.
        """
        path = self.build_path(axes)
        try:
            sections = read_container(path)
            meta = decode_extern_meta(sections[SECTION_EXTERN])
            program = decode_program(sections[SECTION_PROGRAM])
            trace = decode_trace(sections[SECTION_TRACE], program)
        except (OSError, KeyError, TraceFileError):
            self.stats.misses += 1
            return None
        if (
            not str(meta.get("source_digest", "")).startswith(digest_prefix)
            or not digest_prefix
            or meta.get("window") != window_payload
        ):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return program, trace, meta

    def save_ingested(
        self, axes: BuildAxes, program: Program, trace: list, meta: dict
    ) -> Path:
        """Persist an ingested build (program + trace + provenance)."""
        return self._write(
            self.build_path(axes),
            {
                SECTION_PROGRAM: encode_program(program),
                SECTION_TRACE: encode_trace(trace, len(program)),
                SECTION_EXTERN: encode_extern_meta(meta),
            },
        )

    # -- kernel artifacts -----------------------------------------------------

    def load_kernel(self, axes: BuildAxes, trace_len: int) -> "EncodedTrace | None":
        """Hydrate the encoded kernel arrays for ``axes``, or None on a miss.

        The ``KERN`` section rides in the build container (the encoding
        is design-independent, a pure function of the trace), so a build
        saved before the kernel existed simply misses here and the
        caller re-encodes.  A count mismatch against ``trace_len`` also
        reads as a miss — it means the section belongs to a different
        trace truncation than the one in hand.
        """
        path = self.build_path(axes)
        try:
            sections = read_container(path)
            encoded = decode_kernel_section(sections[SECTION_KERNEL])
        except (OSError, KeyError, TraceFileError):
            self.stats.misses += 1
            return None
        if encoded.n != trace_len:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return encoded

    def save_kernel(self, axes: BuildAxes, encoded: EncodedTrace) -> "Path | None":
        """Merge the encoded kernel arrays into the build container.

        Reads the existing container (to preserve its program/trace —
        and any sections this build doesn't know about), sets ``KERN``,
        and rewrites atomically.  If no build container exists yet there
        is nothing to attach to; returns None and the caller's in-memory
        encoding is simply not persisted.
        """
        path = self.build_path(axes)
        try:
            sections = read_container(path)
        except (OSError, TraceFileError):
            return None
        sections[SECTION_KERNEL] = encode_kernel_section(encoded)
        return self._write(path, sections)

    # -- analysis-profile artifacts -------------------------------------------

    def load_profile(
        self, axes: BuildAxes, params: ProfileParams
    ) -> "AnalysisProfile | None":
        """Hydrate the analysis profile for ``axes``, or None on a miss.

        Mirrors the ``KERN`` contract: the ``PROF`` section rides in the
        build container (a profile is a pure function of the trace plus
        ``params``), and a corrupt section, wrong payload version, or
        ``params`` mismatch all read as clean misses — the caller
        re-profiles and :meth:`save_profile` overwrites the section.
        """
        path = self.build_path(axes)
        try:
            sections = read_container(path)
            profile = decode_profile_section(sections[SECTION_PROFILE])
        except (OSError, KeyError, ValueError, TraceFileError):
            self.stats.misses += 1
            return None
        if profile.params != params:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return profile

    def save_profile(self, axes: BuildAxes, profile: AnalysisProfile) -> "Path | None":
        """Merge the analysis profile into the build container.

        Preserves every other section and rewrites atomically, exactly
        like :meth:`save_kernel`; returns None when no build container
        exists yet (nothing to attach to).
        """
        path = self.build_path(axes)
        try:
            sections = read_container(path)
        except (OSError, TraceFileError):
            return None
        sections[SECTION_PROFILE] = encode_profile_section(profile)
        return self._write(path, sections)

    # -- fetch-plan artifacts -------------------------------------------------

    def load_plan(
        self, axes: BuildAxes, fetch_key: tuple, trace: list
    ) -> "FetchPlan | None":
        """Hydrate the fetch plan for ``axes`` + ``fetch_key`` over ``trace``."""
        path = self.plan_path(axes, fetch_key)
        try:
            sections = read_container(path)
            plan = decode_fetch_plan(sections[SECTION_PLAN], trace)
        except (OSError, KeyError, TraceFileError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return plan

    def save_plan(self, axes: BuildAxes, fetch_key: tuple, plan: FetchPlan) -> Path:
        """Persist a fetch-plan artifact atomically."""
        trace_length = sum(
            len(event[0].insts) for event in plan.events if event.__class__ is not int
        )
        return self._write(
            self.plan_path(axes, fetch_key),
            {SECTION_PLAN: encode_fetch_plan(plan, trace_length)},
        )

    # -- shared plumbing ------------------------------------------------------

    def _write(self, path: Path, sections: dict[bytes, bytes]) -> Path:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{path.stem}.{os.getpid()}.tmp"
        write_container(tmp, sections)
        os.replace(tmp, path)
        self.stats.puts += 1
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.rpta")) if self.root.exists() else 0

    def clear(self) -> int:
        """Delete every stored artifact; returns the number removed."""
        removed = 0
        if self.root.exists():
            for path in self.root.glob("??/*.rpta"):
                path.unlink()
                removed += 1
        return removed
