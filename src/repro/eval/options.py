"""Shared evaluation knobs: one definition of the store/parallelism CLI.

Every entry point that evaluates :class:`~repro.eval.runner.RunRequest`
grids — ``python -m repro``, ``python -m repro.eval``, and the
``python -m repro.serve`` daemon — takes the same knobs: worker count,
result store, artifact store, and (for clients) a running evaluation
server.  This module defines them exactly once:

* :func:`add_eval_args` installs the shared argparse flags
  (``--jobs``, ``--no-cache``, ``--store``, ``--artifacts``,
  ``--server``) on any parser;
* :class:`EvalOptions` is the resolved parameter object — the argument
  :func:`repro.eval.parallel.run_many` and the experiment drivers
  accept in place of the old keyword sprawl;
* :meth:`EvalOptions.from_args` performs the resolution, with one
  precedence rule for every consumer: **explicit flag > environment
  variable > built-in default** (``$REPRO_RESULT_STORE`` /
  ``$REPRO_ARTIFACT_STORE`` / ``$REPRO_SERVE_ADDR``).
"""

from __future__ import annotations

import argparse
import os
from dataclasses import dataclass, replace
from typing import Any, Callable

from repro.env import env_bool

#: Environment variable naming the default evaluation-server address.
SERVER_ENV = "REPRO_SERVE_ADDR"

#: Built-in default address of ``python -m repro.serve`` (a unix socket
#: under the per-user cache directory, next to the default stores).
DEFAULT_SERVER_ADDRESS = "unix:~/.cache/repro/serve.sock"


def default_server_address() -> str:
    """Resolve the default server address (env var > built-in)."""
    return os.environ.get(SERVER_ENV) or DEFAULT_SERVER_ADDRESS


@dataclass
class EvalOptions:
    """Resolved evaluation knobs, shared by every grid-running API.

    Pass one of these to :func:`repro.eval.parallel.run_many` (or any
    experiment driver) instead of separate ``jobs=``/``store=``/
    ``artifacts=``/``progress=``/``profiler=`` keywords:

    >>> run_many(grid, EvalOptions(jobs=4, store=ResultStore()))

    ``server`` switches execution to a running ``repro.serve`` daemon:
    the batch is submitted over the socket and results stream back
    (``jobs``/``store``/``artifacts`` then belong to the daemon, not
    the client; a ``profiler`` cannot cross the service boundary).
    """

    #: Worker processes; ``None`` = one per CPU, ``<=1`` = inline.
    jobs: "int | None" = 1
    #: repro.eval.resultstore.ResultStore, or None to always simulate.
    store: Any = None
    #: repro.eval.artifacts.ArtifactStore (or path), or None.
    artifacts: Any = None
    #: Per-finished-request callback (one display line per call).
    progress: "Callable[[str], None] | None" = None
    #: repro.perf.SimProfiler accumulated over the batch (forces inline).
    profiler: Any = None
    #: Address of a running ``python -m repro.serve`` daemon, or None.
    server: "str | None" = None
    #: Run every request through the compiled trace kernel
    #: (``MachineConfig.kernel``); results are bit-identical, only host
    #: throughput changes.
    kernel: bool = False
    #: Run every request through the batch-vectorized kernel backend
    #: (``MachineConfig.kernel_batch``); bit-identical, ooo-only (the
    #: in-order model falls back to the base kernel).
    kernel_batch: bool = False

    def replace(self, **changes) -> "EvalOptions":
        """A copy with ``changes`` applied (dataclasses.replace)."""
        return replace(self, **changes)

    @classmethod
    def from_args(cls, args: argparse.Namespace) -> "EvalOptions":
        """Resolve parsed :func:`add_eval_args` flags into options.

        Precedence for each store root: the flag's value if given, else
        the environment variable, else the built-in default under
        ``~/.cache/repro`` (the stores themselves implement the env/
        default fallback; this method only decides *whether* a store is
        attached).  Missing attributes are treated as "flag not
        installed", so any subset of :func:`add_eval_args` works.
        """
        jobs = getattr(args, "jobs", 1)
        if jobs is not None and jobs <= 0:
            jobs = None  # 0 = one worker per CPU

        server = getattr(args, "server", None)
        if server is not None:
            server = server or default_server_address()

        store = None
        if not getattr(args, "no_cache", False) and hasattr(args, "store"):
            from repro.eval.resultstore import ResultStore

            store = ResultStore(args.store)

        artifacts = None
        if getattr(args, "artifacts", None) is not None:
            from repro.eval.artifacts import ArtifactStore

            artifacts = ArtifactStore(args.artifacts or None)

        # Flag > environment > default — and the environment side goes
        # through env_bool, so REPRO_KERNEL=0/false/no/off disables (a
        # bare truthiness test would read any non-empty value, including
        # "0", as enabled).
        kernel = bool(getattr(args, "kernel", False)) or env_bool("REPRO_KERNEL")
        kernel_batch = bool(getattr(args, "kernel_batch", False)) or env_bool(
            "REPRO_KERNEL_BATCH"
        )

        if server is not None:
            # A thin client leaves caching to the daemon.
            store = artifacts = None
        return cls(
            jobs=jobs,
            store=store,
            artifacts=artifacts,
            server=server,
            kernel=kernel,
            kernel_batch=kernel_batch,
        )


def add_eval_args(
    parser: argparse.ArgumentParser,
    *,
    jobs: bool = True,
    cache: bool = True,
    artifacts: bool = True,
    server: bool = False,
) -> argparse.ArgumentParser:
    """Install the shared evaluation flags on ``parser``.

    Each flag group is optional so single-run commands can take only
    what applies to them; :meth:`EvalOptions.from_args` copes with any
    subset.  Returns ``parser`` for chaining.
    """
    if jobs:
        parser.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="worker processes for the run grid (default 1 = serial; "
            "0 = one per CPU)",
        )
    if cache:
        parser.add_argument(
            "--no-cache",
            action="store_true",
            help="bypass the on-disk result store (always simulate)",
        )
        parser.add_argument(
            "--store",
            default=None,
            metavar="DIR",
            help="result-store directory (default: $REPRO_RESULT_STORE or "
            "~/.cache/repro/runstore)",
        )
    if artifacts:
        parser.add_argument(
            "--artifacts",
            nargs="?",
            const="",
            default=None,
            metavar="DIR",
            help="cache build artifacts (program/trace/fetch plan) in DIR so "
            "workers hydrate instead of rebuilding (no DIR: "
            "$REPRO_ARTIFACT_STORE or ~/.cache/repro/artifacts)",
        )
    parser.add_argument(
        "--kernel",
        action="store_true",
        default=False,
        help="replay through the compiled trace kernel (bit-identical "
        "results, faster host loop; also $REPRO_KERNEL=1)",
    )
    parser.add_argument(
        "--kernel-batch",
        action="store_true",
        default=False,
        help="replay through the batch-vectorized kernel backend "
        "(bit-identical results; ooo only, in-order falls back to the "
        "base kernel; also $REPRO_KERNEL_BATCH=1)",
    )
    if server:
        parser.add_argument(
            "--server",
            nargs="?",
            const="",
            default=None,
            metavar="ADDR",
            help="submit the grid to a running `python -m repro.serve` "
            "daemon instead of simulating locally (no ADDR: "
            f"$REPRO_SERVE_ADDR or {DEFAULT_SERVER_ADDRESS})",
        )
    return parser
