"""Machine-readable export of experiment results (CSV and JSON).

The report module renders for humans; this one serializes the same data
for plotting scripts and regression tracking.  Layouts:

* figures: long-form rows ``design, workload, ipc, cycles, relative``;
* table 3: one row per program;
* figure 6: one row per (program, tlb_size).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any

from repro.eval.experiments import FigureResult, Table3Row
from repro.eval.missrates import Figure6Result


def figure_rows(result: FigureResult) -> list[dict[str, Any]]:
    """Long-form records for a relative-performance figure."""
    rows = []
    for design in result.designs:
        per_rel = result.per_workload_relative(design)
        for workload in result.workloads:
            run = result.results[design][workload]
            rows.append(
                {
                    "experiment": result.spec.key,
                    "design": design,
                    "workload": workload,
                    "cycles": run.cycles,
                    "ipc": round(run.ipc, 6),
                    "relative_ipc": round(per_rel[workload], 6),
                    "shielded_fraction": round(
                        run.stats.translation.shielded_fraction, 6
                    ),
                    "port_stall_cycles": run.stats.translation.port_stall_cycles,
                    "tlb_walks": run.stats.tlb_miss_services,
                }
            )
    return rows


def table3_rows(rows: list[Table3Row]) -> list[dict[str, Any]]:
    """Records for the Table 3 analogue."""
    return [
        {
            "program": r.program,
            "instructions": r.instructions,
            "loads": r.loads,
            "stores": r.stores,
            "issue_ipc": round(r.issue_ipc, 6),
            "commit_ipc": round(r.commit_ipc, 6),
            "refs_per_cycle": round(r.refs_per_cycle, 6),
            "branch_prediction_rate": round(r.branch_prediction_rate, 6),
        }
        for r in rows
    ]


def figure6_rows(result: Figure6Result) -> list[dict[str, Any]]:
    """Records for the miss-rate sweep (plus the RTW average rows)."""
    out = []
    for row in result.rows:
        for size in result.sizes:
            out.append(
                {
                    "program": row.program,
                    "tlb_entries": size,
                    "miss_rate": round(row.miss_rate[size], 6),
                    "references": row.references,
                }
            )
    for size in result.sizes:
        out.append(
            {
                "program": "RTW_AVG",
                "tlb_entries": size,
                "miss_rate": round(result.rtw_average[size], 6),
                "references": sum(r.references for r in result.rows),
            }
        )
    return out


def to_csv(rows: list[dict[str, Any]]) -> str:
    """Serialize records as CSV text."""
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def to_json(rows: list[dict[str, Any]]) -> str:
    """Serialize records as a JSON array."""
    return json.dumps(rows, indent=2)


def export_figure(result: FigureResult, path: str) -> int:
    """Write a figure's rows to ``path`` (.csv or .json); returns rows."""
    rows = figure_rows(result)
    _write(rows, path)
    return len(rows)


def _write(rows: list[dict[str, Any]], path: str) -> None:
    text = to_json(rows) if str(path).endswith(".json") else to_csv(rows)
    with open(path, "w") as handle:
        handle.write(text)
