"""Design-space screening: sweep the analytical model, simulate the frontier.

The cycle simulator prices one (workload, design) point in seconds; the
analytical model (:mod:`repro.analysis.atmodel`) prices a design in
microseconds.  This module turns that gap into a search procedure:

1. **Enumerate** a large design space — every size, port count, bank
   count, rider count, page size the spec asks for — directly as the
   model's structure-of-arrays :class:`~repro.analysis.atmodel.DesignSpace`.
2. **Calibrate** the model per workload against a handful of
   cycle-simulated anchor runs (scheduled through the normal
   :func:`~repro.eval.parallel.run_many` machinery, so anchor results
   land in — and return from — the :class:`~repro.eval.resultstore
   .ResultStore` like any other run).  Workload profiles hydrate from
   the :class:`~repro.eval.artifacts.ArtifactStore`'s ``PROF`` section
   when one is attached.
3. **Score** every candidate with the vectorized model and **price** it
   with the first-order area model (:mod:`repro.tlb.costmodel`).
4. **Select** the Pareto frontier of (area, predicted CPI) and hand a
   spread of frontier designs back to the exact simulator for
   confirmation.

The result records predicted and simulated CPI side by side, so the
screen is self-auditing: a frontier design whose simulation disagrees
with its prediction is visible right in the output.  Screen summaries
persist in the result store's auxiliary section under kind
``"screen"``, keyed by the spec and the code fingerprint.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.analysis import atmodel
from repro.analysis.profile import AnalysisProfile, ProfileParams, build_profile
from repro.eval.options import EvalOptions
from repro.eval.runner import RunRequest, _CACHE
from repro.tlb import costmodel

#: Workload list fallback (late import keeps module load light).
def _all_workloads() -> list:
    from repro.workloads import iter_workload_names

    return list(iter_workload_names())


@dataclass(frozen=True)
class ScreenSpec:
    """One screening job: the candidate axes and the evaluation scope.

    The cross product of the per-family axes (filtered for validity:
    interleaved capacity must split evenly across banks, a multi-level
    L1 must be smaller than its L2) is the candidate space.  ``()`` for
    ``workloads`` means all ten.
    """

    workloads: tuple = ()
    max_instructions: int = 60_000
    page_shifts: tuple = (12,)
    entries: tuple = (32, 64, 128, 256)
    multi_ports: tuple = (1, 2, 4)
    piggy_ports: tuple = (1, 2)
    piggy_riders: tuple = (1, 2, 3)
    banks: tuple = (2, 4, 8)
    bank_selects: tuple = ("bit", "xor")
    bank_riders: tuple = (0, 3)
    ml_l1: tuple = (4, 8, 16, 32)
    ml_ports: tuple = (1,)
    pret_sizes: tuple = (4, 8, 16, 32)
    pret_ports: tuple = (1,)
    #: Calibration anchors (Table 2 mnemonics plus model extensions).
    anchors: tuple = atmodel.DEFAULT_ANCHORS
    #: How many frontier designs to confirm with the cycle simulator.
    simulate: int = 8

    def to_dict(self) -> dict:
        return {
            "workloads": list(self.workloads),
            "max_instructions": self.max_instructions,
            "page_shifts": list(self.page_shifts),
            "entries": list(self.entries),
            "multi_ports": list(self.multi_ports),
            "piggy_ports": list(self.piggy_ports),
            "piggy_riders": list(self.piggy_riders),
            "banks": list(self.banks),
            "bank_selects": list(self.bank_selects),
            "bank_riders": list(self.bank_riders),
            "ml_l1": list(self.ml_l1),
            "ml_ports": list(self.ml_ports),
            "pret_sizes": list(self.pret_sizes),
            "pret_ports": list(self.pret_ports),
            "anchors": list(self.anchors),
            "simulate": self.simulate,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ScreenSpec":
        kwargs = {}
        for f in (
            "workloads", "page_shifts", "entries", "multi_ports",
            "piggy_ports", "piggy_riders", "banks", "bank_selects",
            "bank_riders", "ml_l1", "ml_ports", "pret_sizes",
            "pret_ports", "anchors",
        ):
            if f in payload:
                kwargs[f] = tuple(payload[f])
        for f in ("max_instructions", "simulate"):
            if f in payload:
                kwargs[f] = int(payload[f])
        return cls(**kwargs)


# -- enumeration --------------------------------------------------------------


def enumerate_space(spec: ScreenSpec) -> "atmodel.DesignSpace":
    """The spec's cross-product candidate space, as parallel arrays.

    Built with meshgrids and concatenation — no per-design Python
    objects — so a 10^5-point space materializes in milliseconds.
    """
    np = atmodel._require_numpy()
    cols = ("family", "ports", "riders", "banks", "xor_select",
            "entries", "shield_entries", "page_shift")
    blocks: list = []

    def block(family: int, keep=None, **axes):
        """One family's cross product; ``axes`` values are 1-D arrays."""
        named = {k: np.asarray(v, dtype=np.int64) for k, v in axes.items()}
        grids = np.meshgrid(*named.values(), indexing="ij")
        flat = {k: g.ravel() for k, g in zip(named, grids)}
        n = next(iter(flat.values())).shape[0] if flat else 0
        out = {
            "family": np.full(n, family, dtype=np.int64),
            "ports": np.ones(n, dtype=np.int64),
            "riders": np.zeros(n, dtype=np.int64),
            "banks": np.zeros(n, dtype=np.int64),
            "xor_select": np.zeros(n, dtype=np.int64),
            "entries": np.full(n, 128, dtype=np.int64),
            "shield_entries": np.zeros(n, dtype=np.int64),
            "page_shift": np.full(n, 12, dtype=np.int64),
        }
        out.update(flat)
        if keep is not None:
            mask = keep(out)
            out = {k: v[mask] for k, v in out.items()}
        blocks.append(out)

    shifts = list(spec.page_shifts) or [12]
    entries = list(spec.entries) or [128]
    if spec.multi_ports:
        block(
            atmodel.FAMILY_MULTI,
            ports=spec.multi_ports, entries=entries, page_shift=shifts,
        )
    if spec.piggy_ports and spec.piggy_riders:
        block(
            atmodel.FAMILY_PIGGY,
            ports=spec.piggy_ports, riders=spec.piggy_riders,
            entries=entries, page_shift=shifts,
        )
    if spec.banks:
        selects = [int(s == "xor") for s in spec.bank_selects] or [0]
        block(
            atmodel.FAMILY_INTER,
            banks=spec.banks, xor_select=sorted(set(selects)),
            riders=spec.bank_riders or (0,),
            entries=entries, page_shift=shifts,
            keep=lambda out: out["entries"] % np.maximum(out["banks"], 1) == 0,
        )
    if spec.ml_l1:
        block(
            atmodel.FAMILY_MULTILEVEL,
            shield_entries=spec.ml_l1, ports=spec.ml_ports or (1,),
            entries=entries, page_shift=shifts,
            keep=lambda out: out["shield_entries"] < out["entries"],
        )
    if spec.pret_sizes:
        block(
            atmodel.FAMILY_PRETRANS,
            shield_entries=spec.pret_sizes, ports=spec.pret_ports or (1,),
            entries=entries, page_shift=shifts,
        )
    if not blocks:
        raise ValueError("screen spec enumerates an empty design space")
    merged = {
        k: np.concatenate([b[k] for b in blocks]) for k in cols
    }
    merged["xor_select"] = merged["xor_select"].astype(bool)
    return atmodel.DesignSpace(**merged)


def space_cost(space: "atmodel.DesignSpace"):
    """Vectorized (area, hit delay) using the costmodel's constants.

    Same first-order rules as :func:`repro.tlb.costmodel.design_cost`,
    applied per family over the whole space at once.
    """
    np = atmodel._require_numpy()
    entries = space.entries.astype(np.float64)
    ports = space.ports.astype(np.float64)
    riders = space.riders.astype(np.float64)
    banks = np.maximum(space.banks.astype(np.float64), 1.0)
    shieldn = np.maximum(space.shield_entries.astype(np.float64), 1.0)

    area = costmodel.array_area_arrays(entries, ports)
    delay = costmodel.array_delay_arrays(entries, ports)

    piggy = space.family == atmodel.FAMILY_PIGGY
    area = np.where(
        piggy, area + costmodel.PIGGYBACK_COMPARATOR_AREA * riders, area
    )

    inter = space.family == atmodel.FAMILY_INTER
    bank_entries = np.maximum(entries / banks, 1.0)
    crossbar = (
        costmodel.CROSSBAR_AREA_PER_POINT * banks * banks * costmodel.CROSSBAR_PORTS
    )
    inter_area = (
        costmodel.array_area_arrays(bank_entries, 1.0) * banks
        + crossbar
        + costmodel.PIGGYBACK_COMPARATOR_AREA * riders * banks
    )
    inter_delay = (
        costmodel.array_delay_arrays(bank_entries, 1.0) + costmodel.CROSSBAR_DELAY
    )
    area = np.where(inter, inter_area, area)
    delay = np.where(inter, inter_delay, delay)

    ml = space.family == atmodel.FAMILY_MULTILEVEL
    pret = space.family == atmodel.FAMILY_PRETRANS
    front = ml | pret
    front_area = costmodel.array_area_arrays(
        shieldn, 4.0
    ) + costmodel.array_area_arrays(entries, ports)
    area = np.where(front, front_area, area)
    delay = np.where(ml, costmodel.array_delay_arrays(shieldn, 4.0), delay)
    # Pretranslations are ready at decode (paper section 3.5): the hit
    # path sees half the small array's delay, as in design_cost("P8").
    delay = np.where(
        pret, costmodel.array_delay_arrays(shieldn, 4.0) * 0.5, delay
    )
    return area, delay


def pareto_mask(np, area, cpi):
    """Boolean mask of the (area, cpi) Pareto frontier.

    A design survives iff no design is both cheaper-or-equal and
    strictly faster: sort by (area, cpi) and keep strict running-min
    improvements.
    """
    order = np.lexsort((cpi, area))
    sorted_cpi = cpi[order]
    best = np.minimum.accumulate(sorted_cpi)
    keep = np.ones(order.size, dtype=bool)
    keep[1:] = sorted_cpi[1:] < best[:-1]
    mask = np.zeros(order.size, dtype=bool)
    mask[order[keep]] = True
    return mask


# -- the pipeline -------------------------------------------------------------


@dataclass
class ScreenResult:
    """Everything a screening run learned, serializable."""

    spec: ScreenSpec
    designs: int
    workloads: list
    #: Frontier entries, cheapest first: label/row/area/delay/predicted
    #: mean CPI, per-workload predictions, and (for the simulated
    #: subset) measured CPI.
    frontier: list
    #: Wall-clock seconds spent scoring (model only, no simulation).
    model_seconds: float
    #: (designs x workloads) scored per model second.
    scores_per_sec: float
    #: workload -> Calibration payload (anchor fit diagnostics).
    calibrations: dict = field(default_factory=dict)

    def to_payload(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "designs": self.designs,
            "workloads": list(self.workloads),
            "frontier": self.frontier,
            "model_seconds": self.model_seconds,
            "scores_per_sec": self.scores_per_sec,
            "calibrations": self.calibrations,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ScreenResult":
        return cls(
            spec=ScreenSpec.from_dict(payload["spec"]),
            designs=int(payload["designs"]),
            workloads=list(payload["workloads"]),
            frontier=list(payload["frontier"]),
            model_seconds=float(payload["model_seconds"]),
            scores_per_sec=float(payload["scores_per_sec"]),
            calibrations=dict(payload.get("calibrations", {})),
        )

    def render(self) -> str:
        lines = [
            f"screened {self.designs} designs x {len(self.workloads)} workloads "
            f"in {self.model_seconds:.2f}s model time "
            f"({self.scores_per_sec:,.0f} scores/s)",
            f"  {'design':16s} {'area':>9s} {'delay':>6s} {'pred CPI':>9s} "
            f"{'sim CPI':>9s} {'err':>7s}",
        ]
        for entry in self.frontier:
            sim = entry.get("simulated")
            if sim:
                err = (entry["predicted"] - sim) / sim
                sim_s, err_s = f"{sim:9.4f}", f"{err:+6.1%}"
            else:
                sim_s, err_s = f"{'-':>9s}", f"{'-':>7s}"
            lines.append(
                f"  {entry['label']:16s} {entry['area']:9.1f} "
                f"{entry['delay']:6.2f} {entry['predicted']:9.4f} "
                f"{sim_s} {err_s}"
            )
        return "\n".join(lines)


class ScreenPipeline:
    """The screening state machine, simulator-agnostic.

    Drives in three steps so any request runner can sit underneath —
    the in-process :func:`~repro.eval.parallel.run_many` or a serve
    daemon's scheduler:

    1. :meth:`anchor_requests` -> run them -> :meth:`calibrate`
    2. :meth:`frontier_requests` -> run them -> :meth:`finish`
    """

    def __init__(self, spec: ScreenSpec, artifacts=None):
        np = atmodel._require_numpy()
        self.np = np
        self.spec = spec
        self.artifacts = artifacts
        self.workloads = list(spec.workloads) or _all_workloads()
        self.space = enumerate_space(spec)
        self.area, self.delay = space_cost(self.space)
        self.calibrations: dict = {}
        self.predictions: dict = {}
        self.model_seconds = 0.0
        self._frontier_rows: list = []
        self._frontier_sim_idx: list = []

    # -- step 1: anchors -----------------------------------------------------

    def anchor_requests(self) -> list:
        """Anchor runs for every workload, in a fixed order."""
        reqs = []
        for workload in self.workloads:
            for mnemonic in self.spec.anchors:
                reqs.append(self._anchor_request(workload, mnemonic))
        return reqs

    def _anchor_request(self, workload: str, mnemonic: str) -> RunRequest:
        from repro.tlb.factory import DESIGN_MNEMONICS

        if mnemonic.upper() in DESIGN_MNEMONICS:
            return RunRequest.create(
                workload, mnemonic, max_instructions=self.spec.max_instructions
            )
        single = atmodel.mnemonic_space([mnemonic])
        return RunRequest.create(
            workload,
            mnemonic,
            mechanism=single.mechanism_spec(0),
            max_instructions=self.spec.max_instructions,
        )

    def _profile(self, workload: str) -> AnalysisProfile:
        """The workload's profile, hydrated from the artifact store."""
        params = ProfileParams()
        axes = (workload, 32, 32, 1.0, self.spec.max_instructions)
        if self.artifacts is not None:
            cached = self.artifacts.load_profile(axes, params)
            if cached is not None:
                return cached
        trace = _CACHE.get_trace(workload, *axes[1:])
        profile = build_profile(trace, workload, params)
        if self.artifacts is not None:
            self.artifacts.save_profile(axes, profile)
        return profile

    def calibrate(self, anchor_results: Sequence) -> None:
        """Consume anchor results (in :meth:`anchor_requests` order)."""
        per = len(self.spec.anchors)
        started = time.perf_counter()
        for w, workload in enumerate(self.workloads):
            chunk = anchor_results[w * per : (w + 1) * per]
            anchors = dict(zip(self.spec.anchors, chunk))
            profile = self._profile(workload)
            cal = atmodel.calibrate(profile, anchors)
            tick = time.perf_counter()
            pred = atmodel.predict(profile, cal, self.space)
            self.model_seconds += time.perf_counter() - tick
            self.calibrations[workload] = cal
            self.predictions[workload] = pred.cpi
        self.wall_seconds = time.perf_counter() - started
        self._select_frontier()

    def _select_frontier(self) -> None:
        np = self.np
        mean_cpi = np.mean(
            np.stack([self.predictions[w] for w in self.workloads]), axis=0
        )
        self.mean_cpi = mean_cpi
        mask = pareto_mask(np, self.area, mean_cpi)
        idx = np.nonzero(mask)[0]
        idx = idx[np.argsort(self.area[idx], kind="stable")]
        self._frontier_rows = [int(i) for i in idx]
        # Simulate a spread across the frontier: endpoints always, the
        # rest evenly spaced along the (area-sorted) frontier.
        budget = max(0, int(self.spec.simulate))
        if budget >= len(idx):
            chosen = list(range(len(idx)))
        elif budget:
            pos = np.linspace(0, len(idx) - 1, budget)
            chosen = sorted({int(round(p)) for p in pos})
        else:
            chosen = []
        self._frontier_sim_idx = [self._frontier_rows[i] for i in chosen]

    # -- step 2: frontier confirmation ---------------------------------------

    def frontier_requests(self) -> list:
        reqs = []
        for i in self._frontier_sim_idx:
            for workload in self.workloads:
                reqs.append(
                    RunRequest.create(
                        workload,
                        self.space.label(i),
                        mechanism=self.space.mechanism_spec(i),
                        page_size=1 << int(self.space.page_shift[i]),
                        max_instructions=self.spec.max_instructions,
                    )
                )
        return reqs

    def finish(self, frontier_results: Sequence) -> ScreenResult:
        """Assemble the result (frontier order = :meth:`frontier_requests`)."""
        measured: dict = {}
        k = len(self.workloads)
        for j, i in enumerate(self._frontier_sim_idx):
            chunk = frontier_results[j * k : (j + 1) * k]
            cpis = [
                r.stats.cycles / r.stats.committed
                for r in chunk
                if r is not None and r.stats.committed
            ]
            if cpis:
                measured[i] = sum(cpis) / len(cpis)
        frontier = []
        for i in self._frontier_rows:
            entry = {
                "label": self.space.label(i),
                "row": self.space.row(i),
                "area": float(self.area[i]),
                "delay": float(self.delay[i]),
                "predicted": float(self.mean_cpi[i]),
                "per_workload": {
                    w: float(self.predictions[w][i]) for w in self.workloads
                },
            }
            if i in measured:
                entry["simulated"] = measured[i]
            frontier.append(entry)
        scored = len(self.space) * len(self.workloads)
        return ScreenResult(
            spec=self.spec,
            designs=len(self.space),
            workloads=list(self.workloads),
            frontier=frontier,
            model_seconds=self.model_seconds,
            scores_per_sec=scored / self.model_seconds if self.model_seconds else 0.0,
            calibrations={
                w: c.to_payload() for w, c in self.calibrations.items()
            },
        )


# -- drivers ------------------------------------------------------------------


def screen(spec: ScreenSpec, options: "EvalOptions | None" = None) -> ScreenResult:
    """Run one screening job with the standard evaluation machinery.

    Anchor and frontier simulations go through
    :func:`~repro.eval.parallel.run_many` with ``options`` (jobs, result
    store, artifact store, progress all apply); the finished summary is
    persisted in the result store's auxiliary section.
    """
    from repro.eval.parallel import run_many

    options = options or EvalOptions()
    if options.store is not None:
        cached = options.store.get_aux("screen", spec.to_dict())
        if cached is not None:
            return ScreenResult.from_payload(cached)
    pipeline = ScreenPipeline(spec, artifacts=options.artifacts)
    anchor_results = run_many(pipeline.anchor_requests(), options)
    pipeline.calibrate(anchor_results)
    frontier_results = run_many(pipeline.frontier_requests(), options)
    result = pipeline.finish(frontier_results)
    if options.store is not None:
        options.store.put_aux("screen", spec.to_dict(), result.to_payload())
    return result


async def screen_async(
    spec: ScreenSpec,
    run_requests: Callable,
    artifacts=None,
    store=None,
    offload: "Callable | None" = None,
) -> ScreenResult:
    """Async driver for the serve daemon (or any awaitable runner).

    ``run_requests`` is an awaitable taking a list of requests and
    returning results in order.  ``offload(fn, *args)`` — awaitable —
    hosts the CPU-bound model steps (profile building, calibration,
    scoring); the daemon passes a thread-pool executor so its event
    loop stays responsive.  By default they run inline.
    """
    if offload is None:

        async def offload(fn, *fn_args):
            return fn(*fn_args)

    if store is not None:
        cached = store.get_aux("screen", spec.to_dict())
        if cached is not None:
            return ScreenResult.from_payload(cached)
    pipeline = ScreenPipeline(spec, artifacts=artifacts)
    anchor_results = await run_requests(pipeline.anchor_requests())
    await offload(pipeline.calibrate, anchor_results)
    frontier_results = await run_requests(pipeline.frontier_requests())
    result = await offload(pipeline.finish, frontier_results)
    if store is not None:
        store.put_aux("screen", spec.to_dict(), result.to_payload())
    return result
