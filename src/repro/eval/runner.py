"""Single-run driver: the canonical run description and its executor.

:class:`RunRequest` is the *only* way a timing run is described anywhere
in the library — the experiment drivers, the ablation sweeps, both CLIs
and the benchmark harness all build one and hand it to :func:`run_one`
(or in batches to :func:`repro.eval.parallel.run_many`).  A request is
frozen, hashable and serializable, so it can be sent to a worker
process, used as a dict key, and content-hashed for the on-disk result
store (:mod:`repro.eval.resultstore`).

:func:`run_one` returns a :class:`RunResult`: the full machine counters
plus the request that produced them and provenance, round-trippable
through ``to_dict``/``from_dict``.

Workload programs and their dynamic traces depend only on (workload,
register budget, scale[, budget]) — not on the translation design — so
they are cached per process in a small LRU (:class:`_BuildCache`) and
replayed under every design.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass, field, fields
from typing import Any, Mapping

from repro.caches.cache import CacheStats
from repro.engine.config import MachineConfig
from repro.engine.frontend import FetchPlan, build_fetch_plan, fetch_config_key
from repro.engine.machine import Machine
from repro.engine.stats import MachineStats
from repro.func.executor import capture_trace
from repro.ingest.build import compile_workload, is_trace_workload, parse_workload
from repro.kernel import (
    BatchKernelMachine,
    KernelMachine,
    encode_trace_arrays,
    ensure_geometry,
    geometry_params,
)
from repro.tlb.base import TranslationMechanism
from repro.tlb.factory import make_mechanism, make_mechanism_from_spec
from repro.tlb.stats import TranslationStats
from repro.workloads import make_workload
from repro.workloads.base import WorkloadBuild

#: Bumped whenever the RunResult serialization layout changes.
SCHEMA_VERSION = 2


def _normalize_pairs(value) -> tuple[tuple[str, Any], ...]:
    """Canonicalize a mapping / iterable of pairs to sorted tuples."""
    items = value.items() if isinstance(value, Mapping) else value
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class RunRequest:
    """Everything that identifies one timing run.

    Beyond the grid axes the paper's figures vary (design, issue model,
    page size, register budget), ``config`` carries arbitrary
    :class:`~repro.engine.config.MachineConfig` overrides as sorted
    ``(name, value)`` pairs, and ``mechanism`` optionally replaces the
    ``design`` mnemonic with a declarative ``(class name, kwargs)``
    mechanism spec (see :func:`repro.tlb.factory.make_mechanism_from_spec`)
    — the ablation sweeps use both.  Prefer :meth:`create`, which routes
    unknown keyword arguments into ``config`` automatically.
    """

    workload: str
    design: str
    issue_model: str = "ooo"
    page_size: int = 4096
    int_regs: int = 32
    fp_regs: int = 32
    scale: float = 1.0
    max_instructions: int = 60_000
    #: Extra MachineConfig overrides, as sorted (name, value) pairs.
    config: tuple[tuple[str, Any], ...] = ()
    #: Declarative mechanism spec (class name, sorted kwargs pairs);
    #: None means "instantiate the ``design`` mnemonic via the factory".
    mechanism: tuple[str, tuple[tuple[str, Any], ...]] | None = None

    def __post_init__(self):
        object.__setattr__(self, "config", _normalize_pairs(self.config))
        if self.mechanism is not None:
            name, kwargs = self.mechanism
            object.__setattr__(
                self, "mechanism", (str(name), _normalize_pairs(kwargs))
            )

    @classmethod
    def create(cls, workload: str, design: str, *, mechanism=None, **options):
        """Build a request, routing non-field options into ``config``."""
        known = {f.name for f in fields(cls)} - {"workload", "design", "mechanism"}
        direct = {k: options.pop(k) for k in list(options) if k in known}
        if options:
            merged = dict(_normalize_pairs(direct.get("config", ())))
            merged.update(options)
            direct["config"] = merged
        return cls(workload=workload, design=design, mechanism=mechanism, **direct)

    # -- derived objects ----------------------------------------------------

    def machine_config(self) -> MachineConfig:
        """The MachineConfig this request describes."""
        return MachineConfig(
            issue_model=self.issue_model,
            page_size=self.page_size,
            **dict(self.config),
        )

    def make_mech(self, page_shift: int) -> TranslationMechanism:
        """Instantiate the translation mechanism this request names."""
        if self.mechanism is not None:
            return make_mechanism_from_spec(self.mechanism, page_shift)
        return make_mechanism(self.design, page_shift)

    @property
    def name(self) -> str:
        """Display name, e.g. ``xlisp/M8`` (trace tokens shortened)."""
        workload = self.workload
        if is_trace_workload(workload):
            try:
                workload = parse_workload(workload).display
            except ValueError:
                pass  # malformed token: show it verbatim
        return f"{workload}/{self.design}"

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "design": self.design,
            "issue_model": self.issue_model,
            "page_size": self.page_size,
            "int_regs": self.int_regs,
            "fp_regs": self.fp_regs,
            "scale": self.scale,
            "max_instructions": self.max_instructions,
            "config": [list(pair) for pair in self.config],
            "mechanism": (
                None
                if self.mechanism is None
                else [self.mechanism[0], [list(p) for p in self.mechanism[1]]]
            ),
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "RunRequest":
        d = dict(d)
        mech = d.pop("mechanism", None)
        if mech is not None:
            mech = (mech[0], tuple((k, v) for k, v in mech[1]))
        return cls(mechanism=mech, **d)

    def key(self) -> str:
        """Stable content hash of this request (hex).

        Two requests have the same key iff every field matches; the
        result store combines this with a code-version fingerprint to
        form its on-disk key.
        """
        payload = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class RunResult:
    """Outcome of one timing run: stats + the request + provenance.

    Serializable via :meth:`to_dict`/:meth:`from_dict` (the result-store
    on-disk format).  Exposes the same ``cycles``/``ipc``/``stats``/
    ``name`` surface the old ``SimulationResult`` did, so downstream
    consumers (report, export, analysis) are drop-in.
    """

    request: RunRequest
    stats: MachineStats
    provenance: dict[str, Any] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.request.name

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def ipc(self) -> float:
        """Committed IPC."""
        return self.stats.commit_ipc

    def to_dict(self) -> dict[str, Any]:
        stats = dataclasses.asdict(self.stats)
        return {
            "schema": SCHEMA_VERSION,
            "request": self.request.to_dict(),
            "stats": stats,
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "RunResult":
        return cls(
            request=RunRequest.from_dict(d["request"]),
            stats=_stats_from_dict(d["stats"]),
            provenance=dict(d.get("provenance", {})),
        )


def _stats_from_dict(d: Mapping[str, Any]) -> MachineStats:
    """Rebuild MachineStats (and its nested stat objects) from a dict."""
    d = dict(d)
    icache = CacheStats(**d.pop("icache", {}))
    dcache = CacheStats(**d.pop("dcache", {}))
    translation = TranslationStats(**d.pop("translation", {}))
    # JSON round-trips turn the demand histogram's int keys into strings.
    demand = {int(k): v for k, v in d.pop("translation_demand", {}).items()}
    known = {f.name for f in fields(MachineStats)}
    return MachineStats(
        icache=icache,
        dcache=dcache,
        translation=translation,
        translation_demand=demand,
        **{k: v for k, v in d.items() if k in known},
    )


@dataclass
class _BuildCache:
    """Bounded per-process LRU of workload builds and dynamic traces.

    Traces dominate memory (tens of thousands of DynInst records each),
    so both maps are bounded; evicting a build also evicts the traces
    materialized from it.  Grid drivers order their runs workload-major
    (see :func:`repro.eval.parallel.run_many`), so a small bound still
    gives every design of a workload a warm trace.

    When an on-disk :class:`~repro.eval.artifacts.ArtifactStore` is
    attached (:func:`configure_artifacts`), trace and fetch-plan misses
    first try to *hydrate* from it — a cheap deserialize instead of a
    full functional re-execution — and anything built fresh is written
    back, so worker processes of a parallel grid capture each workload
    once and replay it everywhere.
    """

    max_builds: int = 8
    max_traces: int = 4
    max_plans: int = 4
    max_kernels: int = 4
    builds: OrderedDict = field(default_factory=OrderedDict)
    traces: OrderedDict = field(default_factory=OrderedDict)
    plans: OrderedDict = field(default_factory=OrderedDict)
    kernels: OrderedDict = field(default_factory=OrderedDict)
    #: Synthesized programs of ingested external traces, keyed on the
    #: full trace axes.  Separate from ``builds``: an ingested program
    #: depends on the windowed record subset (so its key includes
    #: ``max_instructions``), and there is no WorkloadBuild behind it.
    ingested: OrderedDict = field(default_factory=OrderedDict)
    #: Optional repro.eval.artifacts.ArtifactStore (duck-typed to avoid
    #: an import cycle: resultstore imports this module).
    artifacts: Any = None

    def get(self, workload: str, int_regs: int, fp_regs: int, scale: float) -> WorkloadBuild:
        key = (workload, int_regs, fp_regs, scale)
        build = self.builds.get(key)
        if build is not None:
            self.builds.move_to_end(key)
            return build
        build = make_workload(workload).build(
            int_regs=int_regs, fp_regs=fp_regs, scale=scale
        )
        self.builds[key] = build
        while len(self.builds) > self.max_builds:
            evicted, _ = self.builds.popitem(last=False)
            for tkey in [t for t in self.traces if t[:4] == evicted]:
                del self.traces[tkey]
        return build

    def get_trace(
        self,
        workload: str,
        int_regs: int,
        fp_regs: int,
        scale: float,
        max_instructions: int,
    ) -> list:
        """Materialized dynamic trace, shared across designs.

        The trace depends only on the program and its inputs — not on
        the translation design, page size, or issue model — so a figure
        grid replays one functional execution under every design.
        """
        key = (workload, int_regs, fp_regs, scale, max_instructions)
        trace = self.traces.get(key)
        if trace is not None:
            self.traces.move_to_end(key)
            return trace
        if is_trace_workload(workload):
            return self._get_ingested(key)[1]
        if self.artifacts is not None:
            hydrated = self.artifacts.load_build(key)
            if hydrated is not None:
                _, trace = hydrated
                self.traces[key] = trace
                while len(self.traces) > self.max_traces:
                    self.traces.popitem(last=False)
                return trace
        build = self.get(workload, int_regs, fp_regs, scale)
        trace = capture_trace(
            build.program, build.memory.clone(), max_instructions=max_instructions
        )
        if self.artifacts is not None:
            self.artifacts.save_build(key, build.program, trace)
        self.traces[key] = trace
        while len(self.traces) > self.max_traces:
            self.traces.popitem(last=False)
        return trace

    def _get_ingested(self, key: tuple):
        """Build (or hydrate) an ingested external-trace workload.

        ``key`` is the full trace axes with an ingested-workload token
        in the workload slot.  The token is self-describing (source
        path + content digest + window policy), so this works in any
        process that holds it — pool workers, the serve daemon — with
        no registry handshake.  Returns ``(program, trace)`` and caches
        both (the program in :attr:`ingested`, the trace in
        :attr:`traces` so designs share it like any synthetic trace).
        """
        workload, int_regs, fp_regs, _scale, max_instructions = key
        spec = parse_workload(workload)
        program = trace = None
        if self.artifacts is not None:
            hydrated = self.artifacts.load_ingested(
                key, spec.digest12, spec.window.to_payload()
            )
            if hydrated is not None:
                program, trace, _meta = hydrated
        if trace is None:
            compiled = compile_workload(
                spec,
                int_regs=int_regs,
                fp_regs=fp_regs,
                max_instructions=max_instructions,
            )
            program, trace = compiled.program, compiled.trace
            if self.artifacts is not None:
                self.artifacts.save_ingested(key, program, trace, compiled.meta)
        self.ingested[key] = program
        while len(self.ingested) > self.max_builds:
            self.ingested.popitem(last=False)
        self.traces[key] = trace
        while len(self.traces) > self.max_traces:
            self.traces.popitem(last=False)
        return program, trace

    def get_ingested_program(
        self,
        workload: str,
        int_regs: int,
        fp_regs: int,
        scale: float,
        max_instructions: int,
    ):
        """The synthesized program behind an ingested workload token."""
        key = (workload, int_regs, fp_regs, scale, max_instructions)
        program = self.ingested.get(key)
        if program is not None:
            self.ingested.move_to_end(key)
            return program
        return self._get_ingested(key)[0]

    def get_kernel(self, req: "RunRequest", trace: list, geom_params=None):
        """Encoded kernel-replay arrays, shared across designs.

        The encoding is a pure function of the trace (producer links are
        timing-invariant), so like the trace itself it is built once per
        workload and replayed under every design.  Misses hydrate the
        build container's ``KERN`` section when an artifact store is
        attached; fresh encodings are merged back into it.

        ``geom_params`` (a :func:`repro.kernel.geometry_params` triple)
        asks for the batch backend's address-geometry arrays to be
        attached before the encoding is persisted, so the serialized
        ``KERN`` section carries them; geometry cached under different
        parameters is a clean miss recomputed in place.
        """
        axes = (
            req.workload,
            req.int_regs,
            req.fp_regs,
            req.scale,
            req.max_instructions,
        )
        encoded = self.kernels.get(axes)
        if encoded is not None:
            self.kernels.move_to_end(axes)
            if geom_params is not None:
                ensure_geometry(encoded, geom_params)
            return encoded
        if self.artifacts is not None:
            encoded = self.artifacts.load_kernel(axes, len(trace))
            if encoded is not None and geom_params is not None:
                ensure_geometry(encoded, geom_params)
        if encoded is None:
            encoded = encode_trace_arrays(trace)
            if geom_params is not None:
                ensure_geometry(encoded, geom_params)
            if self.artifacts is not None:
                self.artifacts.save_kernel(axes, encoded)
        self.kernels[axes] = encoded
        while len(self.kernels) > self.max_kernels:
            self.kernels.popitem(last=False)
        return encoded

    def get_fetch_plan(
        self, req: "RunRequest", config: MachineConfig, trace: list
    ) -> FetchPlan:
        """Precomputed fetch stream, shared across designs.

        Fetch behavior is time-invariant (see
        :class:`repro.engine.frontend.FetchPlan`), so it depends only on
        the trace and the front-end slice of the machine configuration —
        the thirteen designs of a figure grid replay one plan.
        """
        axes = (
            req.workload,
            req.int_regs,
            req.fp_regs,
            req.scale,
            req.max_instructions,
        )
        fetch_key = fetch_config_key(config)
        key = axes + fetch_key
        plan = self.plans.get(key)
        if plan is not None:
            self.plans.move_to_end(key)
            return plan
        plan = None
        if self.artifacts is not None:
            plan = self.artifacts.load_plan(axes, fetch_key, trace)
        if plan is None:
            plan = build_fetch_plan(trace, config)
            if self.artifacts is not None:
                self.artifacts.save_plan(axes, fetch_key, plan)
        self.plans[key] = plan
        while len(self.plans) > self.max_plans:
            self.plans.popitem(last=False)
        return plan


_CACHE = _BuildCache()


def clear_build_cache() -> None:
    """Drop cached workload builds and traces (frees their memory)."""
    _CACHE.builds.clear()
    _CACHE.traces.clear()
    _CACHE.plans.clear()
    _CACHE.kernels.clear()
    _CACHE.ingested.clear()


def configure_artifacts(store) -> Any:
    """Attach an on-disk artifact store to this process's build cache.

    ``store`` is a :class:`repro.eval.artifacts.ArtifactStore` (or any
    object with ``load_build``/``save_build``/``load_plan``/``save_plan``),
    or ``None`` to detach.  Returns the previously attached store so
    callers can scope the attachment (``prev = configure_artifacts(s)``
    ... ``configure_artifacts(prev)``).  Worker processes of
    :func:`repro.eval.parallel.run_many` call this on startup so every
    trace/plan miss hydrates from disk before falling back to building.
    """
    previous = _CACHE.artifacts
    _CACHE.artifacts = store
    return previous


def simulate(
    req: RunRequest,
    mechanism: TranslationMechanism | None = None,
    profiler=None,
) -> RunResult:
    """Execute one timing run unconditionally (no result store).

    ``mechanism`` lets a caller supply a pre-built mechanism instance
    (the legacy callable-variant path of the ablation sweeps); such runs
    are still returned as RunResults but cannot be content-addressed.
    ``profiler`` (a :class:`repro.perf.SimProfiler`) collects host-side
    phase timings without affecting the simulated outcome.
    """
    trace = _CACHE.get_trace(
        req.workload, req.int_regs, req.fp_regs, req.scale, req.max_instructions
    )
    config = req.machine_config()
    mech = mechanism if mechanism is not None else req.make_mech(config.page_shift)
    plan = _CACHE.get_fetch_plan(req, config, trace)
    batch = config.kernel_batch and config.issue_model == "ooo"
    if (config.kernel or config.kernel_batch) and not config.sanity:
        # kernel_batch on the in-order model falls back to the base
        # kernel (only ooo has a batch backend); geometry is attached
        # before the encoding persists so the KERN artifact carries it.
        geom = geometry_params(config) if batch else None
        if profiler is not None:
            from time import perf_counter_ns

            start = perf_counter_ns()
            encoded = _CACHE.get_kernel(req, trace, geom_params=geom)
            profiler.add_phase_ns("kernel_encode", perf_counter_ns() - start)
        else:
            encoded = _CACHE.get_kernel(req, trace, geom_params=geom)
        machine_cls = BatchKernelMachine if batch else KernelMachine
        machine = machine_cls(
            config,
            mech,
            trace,
            encoded=encoded,
            name=req.name,
            profiler=profiler,
            fetch_plan=plan,
        )
    else:
        # The sanitizer hooks the interpreted machine's internals, so
        # sanity runs always take the interpreted path.
        machine = Machine(
            config, mech, trace, name=req.name, profiler=profiler, fetch_plan=plan
        )
    sim = machine.run()
    import repro

    return RunResult(
        request=req,
        stats=sim.stats,
        provenance={"schema": SCHEMA_VERSION, "version": repro.__version__},
    )


def run_one(req: RunRequest, store=None, profiler=None) -> RunResult:
    """Execute one timing run, memoized through ``store`` when given.

    ``store`` is a :class:`repro.eval.resultstore.ResultStore` (or any
    object with ``get(req)``/``put(result)``); ``None`` always simulates.
    A ``profiler`` forces a fresh simulation — a store hit would have no
    host time to measure — but the result is still stored.
    """
    if store is not None and profiler is None:
        cached = store.get(req)
        if cached is not None:
            return cached
    result = simulate(req, profiler=profiler)
    if store is not None:
        store.put(result)
    return result
