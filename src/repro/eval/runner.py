"""Single-run driver with workload-build caching.

Timing sweeps run each workload under many translation designs; the
program and initialized memory image depend only on (workload, register
budget, scale), so they are built once and the memory image is cloned
per run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.config import MachineConfig
from repro.engine.machine import Machine, SimulationResult
from repro.func.executor import Executor
from repro.tlb.factory import make_mechanism
from repro.workloads import make_workload
from repro.workloads.base import WorkloadBuild


@dataclass(frozen=True)
class RunRequest:
    """Everything that identifies one timing run."""

    workload: str
    design: str
    issue_model: str = "ooo"
    page_size: int = 4096
    int_regs: int = 32
    fp_regs: int = 32
    scale: float = 1.0
    max_instructions: int = 60_000


@dataclass
class _BuildCache:
    builds: dict[tuple, WorkloadBuild] = field(default_factory=dict)
    traces: dict[tuple, list] = field(default_factory=dict)

    def get(self, workload: str, int_regs: int, fp_regs: int, scale: float) -> WorkloadBuild:
        key = (workload, int_regs, fp_regs, scale)
        build = self.builds.get(key)
        if build is None:
            build = make_workload(workload).build(
                int_regs=int_regs, fp_regs=fp_regs, scale=scale
            )
            self.builds[key] = build
        return build

    def get_trace(
        self,
        workload: str,
        int_regs: int,
        fp_regs: int,
        scale: float,
        max_instructions: int,
    ) -> list:
        """Materialized dynamic trace, shared across designs.

        The trace depends only on the program and its inputs — not on
        the translation design, page size, or issue model — so a figure
        grid replays one functional execution under every design.
        """
        key = (workload, int_regs, fp_regs, scale, max_instructions)
        trace = self.traces.get(key)
        if trace is None:
            build = self.get(workload, int_regs, fp_regs, scale)
            executor = Executor(build.program, build.memory.clone())
            trace = list(executor.run(max_instructions=max_instructions))
            self.traces[key] = trace
        return trace


_CACHE = _BuildCache()


def clear_build_cache() -> None:
    """Drop cached workload builds and traces (frees their memory)."""
    _CACHE.builds.clear()
    _CACHE.traces.clear()


def run_one(req: RunRequest) -> SimulationResult:
    """Execute one timing run and return its result."""
    trace = _CACHE.get_trace(
        req.workload, req.int_regs, req.fp_regs, req.scale, req.max_instructions
    )
    config = MachineConfig(issue_model=req.issue_model, page_size=req.page_size)
    mechanism = make_mechanism(req.design, config.page_shift)
    machine = Machine(
        config, mechanism, iter(trace), name=f"{req.workload}/{req.design}"
    )
    return machine.run()
