"""Ablation studies of the design choices DESIGN.md calls out.

Each sweep isolates one knob of a translation mechanism (or the machine)
and reports run-time-weighted relative IPC against the same baseline
protocol the figures use.  These go beyond the paper's presented data
but answer questions its design sections raise:

* how much does LRU in the L1 TLB buy over random replacement (§3.3)?
* how many piggyback ports does a single-ported TLB need (§3.4)?
* does XOR-folding ever beat bit selection (§3.2)?
* how much do the pretranslation tag's offset bits matter (§3.5)?
* how sensitive are the conclusions to the 30-cycle miss latency?
* what does pretranslation add over the BAC/THB designs it extends?
* what would instruction-side translation have cost (§1's scoping)?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, Union

from repro.engine.config import MachineConfig
from repro.eval.parallel import run_many
from repro.eval.runner import RunRequest, RunResult, simulate
from repro.eval.weighting import rtw_average
from repro.tlb.base import TranslationMechanism
from repro.workloads import iter_workload_names

#: A variant pairs a label with a mechanism description: a factory
#: mnemonic ("M8"), a declarative (class name, kwargs) spec — both
#: serializable, so such sweeps parallelize and memoize through
#: run_many — or a legacy ``page_shift -> mechanism`` callable, which
#: still works but runs in-process and uncached.
MechDescription = Union[
    str,
    tuple[str, dict],
    Callable[[int], TranslationMechanism],
]
Variant = tuple[str, MechDescription]


@dataclass
class SweepResult:
    """Outcome of one ablation sweep."""

    title: str
    workloads: tuple[str, ...]
    #: label -> RTW-average IPC relative to the sweep's first variant.
    relative: dict[str, float]
    #: label -> {workload -> RunResult}
    results: dict[str, dict[str, RunResult]]

    def render(self) -> str:
        lines = [self.title, ""]
        for label, rel in self.relative.items():
            bar = "#" * max(1, round(rel * 44))
            lines.append(f"  {label:24s} {rel:6.3f}  {bar}")
        return "\n".join(lines)


def run_variants(
    title: str,
    variants: Sequence[Variant],
    workloads: Iterable[str] | None = None,
    max_instructions: int = 20_000,
    config_overrides: dict | None = None,
    per_variant_config: dict[str, dict] | None = None,
    jobs: int = 1,
    store=None,
    artifacts=None,
    options=None,
) -> SweepResult:
    """Run each variant over the workloads; normalize to the first.

    Declaratively-described variants go through
    :func:`repro.eval.parallel.run_many` (``jobs`` workers, optional
    result ``store``); legacy callable factories run inline.
    """
    names = list(workloads) if workloads is not None else list(iter_workload_names())
    results: dict[str, dict[str, RunResult]] = {label: {} for label, _ in variants}
    requests: list[RunRequest] = []
    owners: list[tuple[str, str]] = []
    for label, described in variants:
        overrides = dict(config_overrides or {})
        overrides.update((per_variant_config or {}).get(label, {}))
        if callable(described):
            for workload in names:
                page_shift = MachineConfig(**overrides).page_shift
                req = RunRequest.create(
                    workload, label, max_instructions=max_instructions, **overrides
                )
                results[label][workload] = simulate(
                    req, mechanism=described(page_shift)
                )
            continue
        mechanism = None if isinstance(described, str) else described
        design = described if isinstance(described, str) else label
        for workload in names:
            requests.append(
                RunRequest.create(
                    workload,
                    design,
                    mechanism=mechanism,
                    max_instructions=max_instructions,
                    **overrides,
                )
            )
            owners.append((label, workload))
    if options is None:
        from repro.eval.options import EvalOptions

        options = EvalOptions(jobs=jobs, store=store, artifacts=artifacts)
    for (label, workload), res in zip(owners, run_many(requests, options)):
        results[label][workload] = res
    reference_label = variants[0][0]
    weights = {w: float(results[reference_label][w].cycles) for w in names}
    averages = {
        label: rtw_average({w: results[label][w].ipc for w in names}, weights)
        for label in results
    }
    ref = averages[reference_label]
    relative = {label: avg / ref for label, avg in averages.items()}
    return SweepResult(
        title=title, workloads=tuple(names), relative=relative, results=results
    )


# -- the individual sweeps ----------------------------------------------------


def sweep_l1_replacement(**kw) -> SweepResult:
    """LRU vs random replacement in the M8 design's L1 TLB (§3.3)."""
    variants: list[Variant] = [
        ("M8/L1-LRU", ("MultiLevelTLB", {"l1_entries": 8, "l1_replacement": "lru"})),
        ("M8/L1-random", ("MultiLevelTLB", {"l1_entries": 8, "l1_replacement": "random"})),
    ]
    return run_variants("L1 TLB replacement policy (M8)", variants, **kw)


def sweep_l1_size(sizes: Sequence[int] = (2, 4, 8, 16, 32), **kw) -> SweepResult:
    """L1 TLB capacity sweep for the multi-level design."""
    variants: list[Variant] = [
        (f"M{size}", ("MultiLevelTLB", {"l1_entries": size}))
        for size in sorted(sizes, reverse=True)
    ]
    return run_variants("L1 TLB capacity (multi-level design)", variants, **kw)


def sweep_piggyback_ports(counts: Sequence[int] = (3, 2, 1, 0), **kw) -> SweepResult:
    """Riders per cycle on a single-ported piggybacked TLB (§3.4)."""
    variants: list[Variant] = [
        (f"PB1/{count}riders", ("PiggybackTLB", {"ports": 1, "piggyback_ports": count}))
        for count in counts
    ]
    return run_variants("Piggyback ports on a single-ported TLB", variants, **kw)


def sweep_bank_selection(**kw) -> SweepResult:
    """Bit selection vs XOR folding at 4 and 8 banks (§3.2)."""
    variants: list[Variant] = [
        ("I4/bit", ("InterleavedTLB", {"banks": 4, "select": "bit"})),
        ("I4/xor", ("InterleavedTLB", {"banks": 4, "select": "xor"})),
        ("I8/bit", ("InterleavedTLB", {"banks": 8, "select": "bit"})),
        ("I8/xor", ("InterleavedTLB", {"banks": 8, "select": "xor"})),
    ]
    return run_variants("Interleaved bank selection function", variants, **kw)


def sweep_offset_tag_bits(bits: Sequence[int] = (4, 2, 0), **kw) -> SweepResult:
    """Width of the pretranslation tag's displacement field (§3.5)."""
    variants: list[Variant] = [
        (f"P8/off{b}", ("PretranslationMechanism", {"offset_tag_bits": b}))
        for b in bits
    ]
    return run_variants("Pretranslation offset-tag width", variants, **kw)


def sweep_tlb_miss_latency(
    latencies: Sequence[int] = (30, 10, 60, 100), design: str = "M8", **kw
) -> SweepResult:
    """Sensitivity of a shielded design to the miss-handler latency."""
    variants: list[Variant] = [(f"{design}/miss{lat}", design) for lat in latencies]
    per_variant = {
        f"{design}/miss{lat}": {"tlb_miss_latency": lat} for lat in latencies
    }
    return run_variants(
        f"TLB miss latency ({design})",
        variants,
        per_variant_config=per_variant,
        **kw,
    )


def sweep_related_designs(**kw) -> SweepResult:
    """Pretranslation vs the BAC/THB designs it extends (§3.5)."""
    variants: list[Variant] = [("P8", "P8"), ("BAC32", "BAC32"), ("THB32", "THB32"), ("T1", "T1")]
    return run_variants("Pretranslation vs related work (over T1 base)", variants, **kw)


def sweep_page_size(
    sizes: Sequence[int] = (4096, 8192, 16384), design: str = "M4", **kw
) -> SweepResult:
    """Page-size trend beyond Figure 8's single 8 KB point ([TH94])."""
    variants: list[Variant] = [(f"{design}/{size // 1024}K", design) for size in sizes]
    per_variant = {
        f"{design}/{size // 1024}K": {"page_size": size} for size in sizes
    }
    return run_variants(
        f"Page size ({design})", variants, per_variant_config=per_variant, **kw
    )


def sweep_base_tlb_size(
    sizes: Sequence[int] = (256, 128, 64, 32), ports: int = 2, **kw
) -> SweepResult:
    """Base-TLB capacity at fixed port count: reach vs the paper's 128."""
    variants: list[Variant] = [
        (f"T{ports}x{size}", ("MultiPortedTLB", {"ports": ports, "entries": size}))
        for size in sizes
    ]
    return run_variants(f"Base TLB capacity ({ports} ports)", variants, **kw)


def sweep_predictor(**kw) -> SweepResult:
    """Direction-predictor choice behind the same T4 machine."""
    kinds = ("gap", "tournament", "gshare", "bimodal", "taken")
    variants: list[Variant] = [(f"T4/{kind}", "T4") for kind in kinds]
    per_variant = {f"T4/{kind}": {"predictor": kind} for kind in kinds}
    return run_variants(
        "Branch predictor choice (T4)", variants, per_variant_config=per_variant, **kw
    )


def sweep_context_switches(
    intervals: Sequence[int] = (0, 20_000, 5_000, 1_000), design: str = "M8", **kw
) -> SweepResult:
    """Multiprogramming pressure: flush all translations every N cycles.

    The paper's introduction motivates high-bandwidth translation with
    workload trends toward multitasking; this sweep quantifies how a
    shielded design degrades as context switches shorten.
    """
    def label(interval: int) -> str:
        return f"{design}/cs-never" if interval == 0 else f"{design}/cs{interval}"

    variants: list[Variant] = [(label(interval), design) for interval in intervals]
    per_variant = {
        label(interval): {"context_switch_interval": interval}
        for interval in intervals
    }
    return run_variants(
        f"Context-switch interval ({design})",
        variants,
        per_variant_config=per_variant,
        **kw,
    )


def sweep_itlb(**kw) -> SweepResult:
    """Cost of modelling instruction-side translation (§1's scoping)."""
    variants: list[Variant] = [
        ("T4/no-itlb", "T4"),
        ("T4/itlb32", "T4"),
        ("T4/itlb4", "T4"),
    ]
    per_variant = {
        "T4/itlb32": {"model_itlb": True, "itlb_entries": 32},
        "T4/itlb4": {"model_itlb": True, "itlb_entries": 4},
    }
    return run_variants(
        "Instruction-side micro-TLB", variants, per_variant_config=per_variant, **kw
    )


#: All sweeps, for the ablation benchmark.
ALL_SWEEPS: dict[str, Callable[..., SweepResult]] = {
    "l1_replacement": sweep_l1_replacement,
    "l1_size": sweep_l1_size,
    "piggyback_ports": sweep_piggyback_ports,
    "bank_selection": sweep_bank_selection,
    "offset_tag_bits": sweep_offset_tag_bits,
    "tlb_miss_latency": sweep_tlb_miss_latency,
    "related_designs": sweep_related_designs,
    "itlb": sweep_itlb,
    "predictor": sweep_predictor,
    "context_switches": sweep_context_switches,
    "page_size": sweep_page_size,
    "base_tlb_size": sweep_base_tlb_size,
}
