"""The paper's claims as executable checks: a reproduction scorecard.

Every load-bearing qualitative claim in the paper's Section 4/5 is
encoded as a predicate over a measured figure grid.  Running the
scorecard evaluates them all against fresh simulations and reports
PASS/FAIL per claim — the "does the reproduction actually reproduce"
question, answerable in one command::

    python -m repro.eval scorecard

Claims are deliberately *ordinal* (who beats whom, what moves which
way), not numeric: the substrate is a different simulator on different
workloads, so only the orderings are transportable (DESIGN.md §1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.eval.experiments import FigureResult, run_figure


@dataclass
class Claim:
    """One checkable statement from the paper."""

    key: str
    source: str  # paper section
    text: str
    #: predicate(fig5, fig7, fig9) -> bool
    check: Callable[[FigureResult, FigureResult, FigureResult], bool]


def _rel(fig: FigureResult, design: str) -> float:
    return fig.relative_ipc[design]


CLAIMS: list[Claim] = [
    Claim(
        "t4-dominates",
        "§4.3",
        "the four-ported TLB's performance is always the best (1% seed-noise"
        " tolerance: the random-replacement base TLBs see different probe"
        " streams under shielding designs)",
        lambda f5, f7, f9: all(
            _rel(f, d) <= 1.01 for f in (f5, f7, f9) for d in f.designs
        ),
    ),
    Claim(
        "ports-monotone",
        "§4.3",
        "performance falls as multi-ported TLB ports are removed (T4 > T2 > T1)",
        lambda f5, f7, f9: _rel(f5, "T4") > _rel(f5, "T2") > _rel(f5, "T1"),
    ),
    Claim(
        "t1-substantial-loss",
        "§4.3",
        "a single-ported TLB loses substantial performance on the OOO baseline",
        lambda f5, f7, f9: _rel(f5, "T1") < 0.90,
    ),
    Claim(
        "multilevel-near-t4",
        "§4.3 / abstract",
        "multi-level TLBs with small L1s come within a few percent of T4",
        lambda f5, f7, f9: _rel(f5, "M16") > 0.93 and _rel(f5, "M4") > 0.90,
    ),
    Claim(
        "interleaved-lackluster",
        "§4.3",
        "plain interleaved TLBs underperform the other alternatives (bank conflicts)",
        lambda f5, f7, f9: max(_rel(f5, d) for d in ("I8", "I4", "X4"))
        < min(_rel(f5, d) for d in ("M16", "M8", "PB2", "PB1", "I4/PB", "P8")),
    ),
    Claim(
        "pb2-near-t4",
        "§4.3 / §5",
        "a piggybacked dual-ported TLB is an adequate substitute for T4",
        lambda f5, f7, f9: _rel(f5, "PB2") > 0.98,
    ),
    Claim(
        "pb1-beats-t1",
        "§4.3",
        "piggybacking rescues a single-ported TLB",
        lambda f5, f7, f9: _rel(f5, "PB1") > _rel(f5, "T1") + 0.05,
    ),
    Claim(
        "i4pb-composes",
        "§4.3",
        "piggybacked interleaving combines both benefits (I4/PB ~ T4, >> I4)",
        lambda f5, f7, f9: _rel(f5, "I4/PB") > 0.97
        and _rel(f5, "I4/PB") > _rel(f5, "I4"),
    ),
    Claim(
        "inorder-closes-gaps",
        "§4.4",
        "with in-order issue, reduced bandwidth demand shrinks T1's loss",
        lambda f5, f7, f9: (1 - _rel(f7, "T1")) < 0.75 * (1 - _rel(f5, "T1")),
    ),
    Claim(
        "inorder-helps-interleaved",
        "§4.4",
        "the interleaved designs perform much better under in-order issue",
        lambda f5, f7, f9: _rel(f7, "I4") > _rel(f5, "I4"),
    ),
    Claim(
        "fewregs-multilevel-strong",
        "§4.6",
        "with 8 registers the multi-level designs still perform well",
        lambda f5, f7, f9: min(_rel(f9, d) for d in ("M16", "M8", "M4")) > 0.90,
    ),
    Claim(
        "fewregs-bandwidth-crunch",
        "§4.6",
        "with 8 registers the bandwidth-starved designs degrade sharply",
        lambda f5, f7, f9: _rel(f9, "T1") < _rel(f5, "T1") - 0.10
        and _rel(f9, "I4") < _rel(f5, "I4") - 0.05,
    ),
    Claim(
        "fewregs-pb1-worst-piggyback",
        "§4.6",
        "PB1 is the weakest piggybacked design under register pressure",
        lambda f5, f7, f9: _rel(f9, "PB1")
        < min(_rel(f9, "PB2"), _rel(f9, "I4/PB")),
    ),
]


@dataclass
class ScorecardResult:
    """Evaluated claims plus the grids they were checked against."""

    passed: list[Claim]
    failed: list[Claim]
    budget: int

    @property
    def score(self) -> str:
        total = len(self.passed) + len(self.failed)
        return f"{len(self.passed)}/{total}"

    def render(self) -> str:
        lines = [
            f"Reproduction scorecard ({self.score} claims hold, "
            f"{self.budget} instructions/run)",
            "",
        ]
        for claim in self.passed:
            lines.append(f"  PASS  [{claim.source:12s}] {claim.text}")
        for claim in self.failed:
            lines.append(f"  FAIL  [{claim.source:12s}] {claim.text}")
        return "\n".join(lines)


def run_scorecard(
    max_instructions: int = 20_000,
    workloads=None,
    progress=None,
    jobs: int = 1,
    store=None,
    artifacts=None,
    options=None,
) -> ScorecardResult:
    """Run the three figure grids and evaluate every claim.

    ``options`` (an :class:`~repro.eval.options.EvalOptions`) wins over
    the individual engine knobs when given.
    """
    if options is None:
        from repro.eval.options import EvalOptions

        options = EvalOptions(
            jobs=jobs, store=store, progress=progress, artifacts=artifacts
        )
    grid = dict(
        workloads=workloads,
        max_instructions=max_instructions,
        options=options,
    )
    fig5 = run_figure("figure5", **grid)
    fig7 = run_figure("figure7", **grid)
    fig9 = run_figure("figure9", **grid)
    passed, failed = [], []
    for claim in CLAIMS:
        (passed if claim.check(fig5, fig7, fig9) else failed).append(claim)
    return ScorecardResult(passed=passed, failed=failed, budget=max_instructions)
