"""Content-addressed on-disk store of finished timing runs.

Every figure and table in the paper is a grid of independent
(workload x design x config) runs; a run's outcome is fully determined
by its :class:`~repro.eval.runner.RunRequest` and the simulator source.
The store therefore keys each :class:`~repro.eval.runner.RunResult` by

    sha256(canonical-JSON(request)  +  code fingerprint)

where the fingerprint hashes every ``.py`` file under the installed
``repro`` package.  Invalidation rule: change *any* request field or
*any* source file and the key changes — stale entries are simply never
looked up again (prune them with :meth:`ResultStore.clear`).

Layout (JSON, one file per run, two-hex-char shard directories)::

    <root>/ab/abcdef....json

``<root>`` defaults to ``$REPRO_RESULT_STORE`` or
``~/.cache/repro/runstore``.  Writes are atomic (temp file + rename) so
concurrent workers and concurrent CLI invocations can share a store.

The sibling :mod:`repro.eval.artifacts` store applies the same keying
discipline (content hash + :func:`code_fingerprint`) one layer down: it
memoizes the design-independent *inputs* of a run (program, trace,
fetch plan) rather than its outcome, so even store misses skip the
functional re-execution.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.eval.runner import RunRequest, RunResult

_FINGERPRINT: str | None = None


def _iter_source_files():
    """Yield ``(key, path)`` for every source file the fingerprint covers.

    Two sweeps, deduplicated by resolved path:

    1. every file under the installed ``repro`` package root (not just
       ``*.py`` — compiled extensions or data files shipped alongside
       the sources also shape results);
    2. the resolved ``__file__`` of every imported ``repro.*`` module in
       ``sys.modules``, which catches sources loaded from *other*
       locations — editable installs, namespace-package layouts, or
       test-injected modules — that the directory sweep cannot see.

    The second sweep is empty in the standard layout (every module file
    already lives under the package root), so the fingerprint stays
    stable across processes that import different module subsets.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    seen: set[Path] = set()
    if root.is_dir():
        for path in sorted(p for p in root.rglob("*") if p.is_file()):
            if path.name.endswith((".pyc", ".pyo")) or "__pycache__" in path.parts:
                continue
            seen.add(path)
            yield str(path.relative_to(root)), path
    for name in sorted(sys.modules):
        if name != "repro" and not name.startswith("repro."):
            continue
        module = sys.modules[name]
        file = getattr(module, "__file__", None)
        if not file:
            continue
        try:
            path = Path(file).resolve()
        except OSError:
            continue
        if path in seen or not path.is_file():
            continue
        seen.add(path)
        yield f"module:{name}", path


def code_fingerprint(refresh: bool = False) -> str:
    """Hash of the repro package's source (cached per process).

    Covers names and contents of every file under the package root
    *and* of every imported ``repro.*`` module resolved via
    ``sys.modules`` — so edits picked up through editable installs or
    namespace layouts, and changes to non-``.py`` package data, also
    invalidate every stored run.  ``refresh=True`` recomputes the
    cached value (tests use it after mutating a module on disk).
    """
    global _FINGERPRINT
    if _FINGERPRINT is None or refresh:
        digest = hashlib.sha256()
        for key, path in _iter_source_files():
            digest.update(key.encode())
            digest.update(b"\0")
            try:
                digest.update(path.read_bytes())
            except OSError:
                digest.update(b"<unreadable>")
            digest.update(b"\0")
        _FINGERPRINT = digest.hexdigest()[:16]
    return _FINGERPRINT


@dataclass
class StoreStats:
    """Per-process counters of store traffic (the re-simulation audit)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0

    def render(self) -> str:
        return f"{self.hits} hits, {self.misses} misses, {self.puts} stored"


class ResultStore:
    """Persistent, content-addressed map RunRequest -> RunResult."""

    def __init__(self, root: str | Path | None = None, fingerprint: str | None = None):
        if root is None:
            root = os.environ.get("REPRO_RESULT_STORE") or (
                Path.home() / ".cache" / "repro" / "runstore"
            )
        self.root = Path(root)
        self.fingerprint = fingerprint or code_fingerprint()
        self.stats = StoreStats()

    def key(self, req: RunRequest) -> str:
        """The on-disk key: request content hash + code fingerprint."""
        payload = json.dumps(
            {"request": req.to_dict(), "code": self.fingerprint},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def path_for(self, req: RunRequest) -> Path:
        key = self.key(req)
        return self.root / key[:2] / f"{key}.json"

    def __contains__(self, req: RunRequest) -> bool:
        return self.path_for(req).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.json")) if self.root.exists() else 0

    def get(self, req: RunRequest) -> RunResult | None:
        """The stored result for ``req``, or None (counts a hit/miss)."""
        path = self.path_for(req)
        try:
            text = path.read_text()
            result = RunResult.from_dict(json.loads(text))
        except (OSError, ValueError, KeyError, TypeError):
            # Missing or corrupt entry: treat as a miss (it will be
            # recomputed and overwritten).
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, result: RunResult) -> Path:
        """Persist ``result`` atomically; returns the entry's path."""
        key = self.key(result.request)
        path = self.root / key[:2] / f"{key}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = result.to_dict()
        provenance = dict(payload.get("provenance") or {})
        provenance["code_fingerprint"] = self.fingerprint
        payload["provenance"] = provenance
        tmp = path.parent / f".{key}.{os.getpid()}.tmp"
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)
        self.stats.puts += 1
        return path

    def clear(self) -> int:
        """Delete every stored entry; returns the number removed."""
        removed = 0
        if self.root.exists():
            for path in self.root.glob("??/*.json"):
                path.unlink()
                removed += 1
            for path in self.root.glob("aux/*.json"):
                path.unlink()
                removed += 1
        return removed

    # -- auxiliary derived results -------------------------------------------

    def aux_key(self, kind: str, spec: dict) -> str:
        """Key for a derived (non-RunResult) entry, e.g. a screen summary.

        Same discipline as :meth:`key`: the canonical JSON of the
        describing ``spec`` plus the code fingerprint, so any source
        change or spec change invalidates the entry.
        """
        payload = json.dumps(
            {"kind": kind, "spec": spec, "code": self.fingerprint},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def aux_path(self, kind: str, spec: dict) -> Path:
        return self.root / "aux" / f"{self.aux_key(kind, spec)}.json"

    def get_aux(self, kind: str, spec: dict) -> "dict | None":
        """The stored derived entry for (kind, spec), or None on a miss."""
        try:
            value = json.loads(self.aux_path(kind, spec).read_text())
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    def put_aux(self, kind: str, spec: dict, value: dict) -> Path:
        """Persist a derived entry atomically (same layout rules as put)."""
        path = self.aux_path(kind, spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{path.stem}.{os.getpid()}.tmp"
        tmp.write_text(json.dumps(value, sort_keys=True))
        os.replace(tmp, path)
        self.stats.puts += 1
        return path
