"""Content-addressed on-disk store of finished timing runs.

Every figure and table in the paper is a grid of independent
(workload x design x config) runs; a run's outcome is fully determined
by its :class:`~repro.eval.runner.RunRequest` and the simulator source.
The store therefore keys each :class:`~repro.eval.runner.RunResult` by

    sha256(canonical-JSON(request)  +  code fingerprint)

where the fingerprint hashes every ``.py`` file under the installed
``repro`` package.  Invalidation rule: change *any* request field or
*any* source file and the key changes — stale entries are simply never
looked up again (prune them with :meth:`ResultStore.clear`).

Layout (JSON, one file per run, two-hex-char shard directories)::

    <root>/ab/abcdef....json

``<root>`` defaults to ``$REPRO_RESULT_STORE`` or
``~/.cache/repro/runstore``.  Writes are atomic (temp file + rename) so
concurrent workers and concurrent CLI invocations can share a store.

The sibling :mod:`repro.eval.artifacts` store applies the same keying
discipline (content hash + :func:`code_fingerprint`) one layer down: it
memoizes the design-independent *inputs* of a run (program, trace,
fetch plan) rather than its outcome, so even store misses skip the
functional re-execution.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.eval.runner import RunRequest, RunResult

_FINGERPRINT: str | None = None


def code_fingerprint() -> str:
    """Hash of the repro package's source (cached per process).

    Covers file names and contents of every ``*.py`` under the package
    root, so any change to the simulator invalidates every stored run.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _FINGERPRINT = digest.hexdigest()[:16]
    return _FINGERPRINT


@dataclass
class StoreStats:
    """Per-process counters of store traffic (the re-simulation audit)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0

    def render(self) -> str:
        return f"{self.hits} hits, {self.misses} misses, {self.puts} stored"


class ResultStore:
    """Persistent, content-addressed map RunRequest -> RunResult."""

    def __init__(self, root: str | Path | None = None, fingerprint: str | None = None):
        if root is None:
            root = os.environ.get("REPRO_RESULT_STORE") or (
                Path.home() / ".cache" / "repro" / "runstore"
            )
        self.root = Path(root)
        self.fingerprint = fingerprint or code_fingerprint()
        self.stats = StoreStats()

    def key(self, req: RunRequest) -> str:
        """The on-disk key: request content hash + code fingerprint."""
        payload = json.dumps(
            {"request": req.to_dict(), "code": self.fingerprint},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def path_for(self, req: RunRequest) -> Path:
        key = self.key(req)
        return self.root / key[:2] / f"{key}.json"

    def __contains__(self, req: RunRequest) -> bool:
        return self.path_for(req).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.json")) if self.root.exists() else 0

    def get(self, req: RunRequest) -> RunResult | None:
        """The stored result for ``req``, or None (counts a hit/miss)."""
        path = self.path_for(req)
        try:
            text = path.read_text()
            result = RunResult.from_dict(json.loads(text))
        except (OSError, ValueError, KeyError, TypeError):
            # Missing or corrupt entry: treat as a miss (it will be
            # recomputed and overwritten).
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, result: RunResult) -> Path:
        """Persist ``result`` atomically; returns the entry's path."""
        key = self.key(result.request)
        path = self.root / key[:2] / f"{key}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = result.to_dict()
        provenance = dict(payload.get("provenance") or {})
        provenance["code_fingerprint"] = self.fingerprint
        payload["provenance"] = provenance
        tmp = path.parent / f".{key}.{os.getpid()}.tmp"
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)
        self.stats.puts += 1
        return path

    def clear(self) -> int:
        """Delete every stored entry; returns the number removed."""
        removed = 0
        if self.root.exists():
            for path in self.root.glob("??/*.json"):
                path.unlink()
                removed += 1
        return removed
