"""Run-time-weighted aggregation, as in the paper.

"All the results presented in this section are run-time weighted
averages across all the benchmarks ... the run-time weighted average IPC
(weighted by the run-time of T4 in cycles) is shown for each design.
The IPCs are normalized to the IPC of the four-ported TLB design (T4)."

Concretely: for design ``d``, with per-benchmark IPCs ``ipc[d][w]`` and
T4 cycle counts ``t4_cycles[w]``::

    rtw_ipc(d) = sum_w t4_cycles[w] * ipc[d][w] / sum_w t4_cycles[w]
    relative(d) = rtw_ipc(d) / rtw_ipc(T4)
"""

from __future__ import annotations

from typing import Mapping


def rtw_average(values: Mapping[str, float], weights: Mapping[str, float]) -> float:
    """Weighted average of ``values`` keyed like ``weights``."""
    if not values:
        raise ValueError("no values to average")
    missing = set(values) - set(weights)
    if missing:
        raise ValueError(f"missing weights for: {sorted(missing)}")
    total_weight = sum(weights[k] for k in values)
    if total_weight <= 0:
        raise ValueError("weights sum to zero")
    return sum(values[k] * weights[k] for k in values) / total_weight


def normalized_rtw_average(
    ipc_by_design: Mapping[str, Mapping[str, float]],
    t4_cycles: Mapping[str, float],
    reference: str = "T4",
) -> dict[str, float]:
    """Per-design RTW-average IPC, normalized to ``reference``.

    ``ipc_by_design[design][workload]`` holds the per-run IPCs;
    ``t4_cycles[workload]`` supplies the weights.
    """
    if reference not in ipc_by_design:
        raise ValueError(f"reference design {reference!r} not in results")
    averages = {
        design: rtw_average(per_workload, t4_cycles)
        for design, per_workload in ipc_by_design.items()
    }
    ref = averages[reference]
    if ref <= 0:
        raise ValueError("reference average IPC is zero")
    return {design: avg / ref for design, avg in averages.items()}
