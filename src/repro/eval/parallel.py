"""Parallel evaluation engine: fan a run grid out across processes.

:func:`run_many` is the batch counterpart of
:func:`repro.eval.runner.run_one`.  It takes any iterable of
:class:`~repro.eval.runner.RunRequest` and returns the matching
:class:`~repro.eval.runner.RunResult` list *in input order*, after:

1. answering every request it can from the result store (if given);
2. deduplicating identical requests (one simulation, many receivers);
3. when an artifact store is given, making sure every needed build
   artifact (program + trace + fetch plan, see
   :mod:`repro.eval.artifacts`) exists on disk — missing ones are
   captured in parallel, one task per workload build;
4. dispatching the remaining requests at *request* granularity:
   longest-estimated-first, in small single-build chunks, so ``jobs=N``
   yields ~N-way occupancy even when the whole grid shares one workload
   (the paper's 13-design grids) or is heavily skewed.

Scheduling at request granularity is what the artifact cache buys:
workers hydrate the design-independent work (trace capture, fetch-plan
probing) from disk via their per-process
:class:`~repro.eval.runner._BuildCache` instead of redoing it, so
splitting a workload's designs across workers no longer multiplies the
build cost.  Without an artifact store the same scheduling applies and
each worker builds at most once per workload (chunks never mix builds).

Simulations are deterministic (every RNG in the machine is seeded), so
a parallel grid is bit-identical to a serial one — only wall-clock
changes.  Worker processes never touch the result store; the parent
persists results and reports ``progress`` per finished request as
chunks complete, which keeps store writes single-writer per invocation
while remaining safe across concurrent invocations (writes are atomic).
"""

from __future__ import annotations

import math
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Iterable

from repro.engine.frontend import fetch_config_key
from repro.eval.runner import (
    RunRequest,
    RunResult,
    configure_artifacts,
    simulate,
)

#: Largest number of requests bundled into one worker task.  Small
#: chunks keep the tail balanced and progress fine-grained; the
#: per-task cost they amortize (result pickling, queue round-trip) is
#: tiny next to a simulation.
_MAX_CHUNK = 4

#: Task oversubscription factor: aim for about this many chunks per
#: worker so early-finishing workers always find queued work.
_CHUNKS_PER_JOB = 4


def _build_key(req: RunRequest) -> tuple:
    """Requests sharing this key share a workload build, trace, and
    (per frontend config) fetch plan — the axes of the artifact cache."""
    return (req.workload, req.int_regs, req.fp_regs, req.scale, req.max_instructions)


def _estimate(req: RunRequest) -> float:
    """Relative host-cost estimate of one run (longest-first ordering).

    The dominant cost driver is the dynamic instruction budget; the
    issue model is a useful secondary signal (in-order runs drain the
    window more slowly per instruction).
    """
    weight = 1.25 if req.issue_model == "inorder" else 1.0
    return req.max_instructions * weight


def _schedule_chunks(rest: list[RunRequest], jobs: int) -> list[list[RunRequest]]:
    """Split ``rest`` into small, single-build, longest-first chunks.

    Chunks never mix workload builds (a worker hydrates/builds once per
    chunk), requests inside a build are ordered longest-estimate-first,
    and the chunk list itself is ordered by descending estimated cost so
    the pool starts the heaviest work first.  Deterministic for a given
    input order.
    """
    if not rest:
        return []
    size = max(1, min(_MAX_CHUNK, math.ceil(len(rest) / (jobs * _CHUNKS_PER_JOB))))
    groups: dict[tuple, list[RunRequest]] = {}
    for req in rest:
        groups.setdefault(_build_key(req), []).append(req)
    chunks: list[list[RunRequest]] = []
    for group in groups.values():
        ordered = sorted(group, key=_estimate, reverse=True)
        chunks.extend(ordered[i : i + size] for i in range(0, len(ordered), size))
    chunks.sort(key=lambda chunk: sum(_estimate(r) for r in chunk), reverse=True)
    return chunks


# -- worker entry points ------------------------------------------------------


def _init_worker(artifact_root: "str | None") -> None:
    """Pool initializer: attach the shared on-disk artifact store."""
    if artifact_root is not None:
        from repro.eval.artifacts import ArtifactStore

        configure_artifacts(ArtifactStore(artifact_root))


def _capture_build(reps: list[RunRequest]) -> None:
    """Capture one workload build's artifacts (trace + fetch plans).

    ``reps`` holds one representative request per distinct frontend
    configuration of a single build; materializing their traces/plans
    through the worker's artifact-attached build cache persists every
    missing artifact as a side effect.
    """
    from repro.eval.runner import _CACHE

    for req in reps:
        trace = _CACHE.get_trace(
            req.workload, req.int_regs, req.fp_regs, req.scale, req.max_instructions
        )
        _CACHE.get_fetch_plan(req, req.machine_config(), trace)


def _run_chunk(reqs: list[RunRequest]) -> list[RunResult]:
    """Worker entry point: simulate one chunk serially."""
    return [simulate(r) for r in reqs]


# -- driver -------------------------------------------------------------------


def run_many(
    requests: Iterable[RunRequest],
    jobs: int | None = 1,
    store=None,
    progress: Callable[[str], None] | None = None,
    profiler=None,
    artifacts=None,
) -> list[RunResult]:
    """Run a batch of requests, parallel and memoized; results in order.

    Parameters
    ----------
    jobs:
        Worker processes.  ``<= 1`` runs inline in this process (still
        grouped by workload for trace reuse); ``None`` means one per
        CPU.  Scheduling is per *request*, so a single-workload grid
        still fills all ``jobs`` workers.
    store:
        A :class:`repro.eval.resultstore.ResultStore` (or None).  Hits
        skip simulation entirely; fresh results are persisted.
    progress:
        Optional callback receiving one line per finished/cached run,
        emitted as workers complete each request.
    profiler:
        Optional :class:`repro.perf.SimProfiler` accumulated across the
        whole batch.  Profiling forces the batch inline (timings cannot
        cross process boundaries) and bypasses store reads (a cache hit
        has no host time to measure); results are still persisted.
    artifacts:
        A :class:`repro.eval.artifacts.ArtifactStore`, a directory path
        for one, or None.  When given, the parent first makes sure every
        needed build artifact exists (capturing missing ones in
        parallel, one task per build) and workers hydrate traces and
        fetch plans from it instead of re-running the functional
        simulator.
    """
    reqs = list(requests)
    results: list[RunResult | None] = [None] * len(reqs)
    if profiler is not None:
        jobs = 1
    art = artifacts
    if art is not None and not hasattr(art, "load_build"):
        from repro.eval.artifacts import ArtifactStore

        art = ArtifactStore(art)

    # 1. Dedup identical requests and satisfy what we can from the store.
    receivers: dict[RunRequest, list[int]] = {}
    cached: dict[RunRequest, RunResult] = {}
    for i, req in enumerate(reqs):
        if req in receivers:
            receivers[req].append(i)
            continue
        if req in cached:
            results[i] = cached[req]
            continue
        if store is not None and profiler is None:
            hit = store.get(req)
            if hit is not None:
                results[i] = cached[req] = hit
                if progress is not None:
                    progress(f"{req.name}: cached")
                continue
        receivers[req] = [i]

    def finish(req: RunRequest, result: RunResult) -> None:
        for i in receivers[req]:
            results[i] = result
        if store is not None:
            store.put(result)
        if progress is not None:
            progress(f"{req.name}: done")

    rest = list(receivers)
    if jobs is None:
        jobs = os.cpu_count() or 1

    # 2. Inline path: workload-major order keeps the build LRU warm.
    if jobs <= 1 or len(rest) <= 1:
        groups: dict[tuple, list[RunRequest]] = {}
        for req in rest:
            groups.setdefault(_build_key(req), []).append(req)
        previous = configure_artifacts(art) if art is not None else None
        try:
            for group in groups.values():
                for req in group:
                    finish(req, simulate(req, profiler=profiler))
        finally:
            if art is not None:
                configure_artifacts(previous)
        return results  # type: ignore[return-value]

    # 3. Request-level scheduling: longest-estimated-first small chunks.
    chunks = _schedule_chunks(rest, jobs)
    root = str(art.root) if art is not None else None
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(chunks)),
        initializer=_init_worker,
        initargs=(root,),
    ) as pool:
        if art is not None:
            # 3a. Make sure every build artifact exists before fanning
            # the replays out: one capture task per missing build, each
            # carrying one representative request per distinct frontend
            # configuration (a build can need several fetch plans).
            missing: dict[tuple, dict[tuple, RunRequest]] = {}
            for req in rest:
                axes = _build_key(req)
                fkey = fetch_config_key(req.machine_config())
                if not art.has_build(axes) or not art.has_plan(axes, fkey):
                    missing.setdefault(axes, {}).setdefault(fkey, req)
            if missing:
                captures = {
                    pool.submit(_capture_build, list(reps.values())): axes
                    for axes, reps in missing.items()
                }
                for future in captures:
                    future.result()
                    if progress is not None:
                        progress(f"{captures[future][0]}: artifacts captured")

        # 3b. Replay: workers hydrate from the artifact cache (or build
        # once per chunk) and the parent persists/report per request.
        pending = {pool.submit(_run_chunk, chunk): chunk for chunk in chunks}
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                chunk = pending.pop(future)
                for req, result in zip(chunk, future.result()):
                    finish(req, result)
    return results  # type: ignore[return-value]
