"""Parallel evaluation engine: fan a run grid out across processes.

:func:`run_many` is the batch counterpart of
:func:`repro.eval.runner.run_one`.  It takes any iterable of
:class:`~repro.eval.runner.RunRequest` and returns the matching
:class:`~repro.eval.runner.RunResult` list *in input order*, after:

1. answering every request it can from the result store (if given);
2. deduplicating identical requests (one simulation, many receivers);
3. grouping the rest by workload build, so each worker process builds
   and traces a workload once and replays it under every design —
   the same sharing the in-process ``_BuildCache`` gives a serial grid;
4. running the groups either inline (``jobs <= 1``) or on a
   ``ProcessPoolExecutor`` with ``jobs`` workers.

Simulations are deterministic (every RNG in the machine is seeded), so
a parallel grid is bit-identical to a serial one — only wall-clock
changes.  Worker processes never touch the store; the parent persists
results as groups complete, which keeps store writes single-writer per
invocation while remaining safe across concurrent invocations (writes
are atomic).
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Iterable

from repro.eval.runner import RunRequest, RunResult, simulate


def _build_key(req: RunRequest) -> tuple:
    """Requests sharing this key share a workload build (and trace)."""
    return (req.workload, req.int_regs, req.fp_regs, req.scale)


def _run_group(reqs: list[RunRequest]) -> list[RunResult]:
    """Worker entry point: simulate one workload's batch serially."""
    return [simulate(r) for r in reqs]


def run_many(
    requests: Iterable[RunRequest],
    jobs: int | None = 1,
    store=None,
    progress: Callable[[str], None] | None = None,
    profiler=None,
) -> list[RunResult]:
    """Run a batch of requests, parallel and memoized; results in order.

    Parameters
    ----------
    jobs:
        Worker processes.  ``<= 1`` runs inline in this process (still
        grouped by workload for trace reuse); ``None`` means one per
        CPU.  Parallelism is per workload group, so more jobs than
        distinct workloads does not help.
    store:
        A :class:`repro.eval.resultstore.ResultStore` (or None).  Hits
        skip simulation entirely; fresh results are persisted.
    progress:
        Optional callback receiving one line per finished/cached run.
    profiler:
        Optional :class:`repro.perf.SimProfiler` accumulated across the
        whole batch.  Profiling forces the batch inline (timings cannot
        cross process boundaries) and bypasses store reads (a cache hit
        has no host time to measure); results are still persisted.
    """
    reqs = list(requests)
    results: list[RunResult | None] = [None] * len(reqs)
    if profiler is not None:
        jobs = 1

    # 1. Dedup identical requests and satisfy what we can from the store.
    receivers: dict[RunRequest, list[int]] = {}
    cached: dict[RunRequest, RunResult] = {}
    for i, req in enumerate(reqs):
        if req in receivers:
            receivers[req].append(i)
            continue
        if req in cached:
            results[i] = cached[req]
            continue
        if store is not None and profiler is None:
            hit = store.get(req)
            if hit is not None:
                results[i] = cached[req] = hit
                if progress is not None:
                    progress(f"{req.name}: cached")
                continue
        receivers[req] = [i]

    def finish(req: RunRequest, result: RunResult) -> None:
        for i in receivers[req]:
            results[i] = result
        if store is not None:
            store.put(result)
        if progress is not None:
            progress(f"{req.name}: done")

    # 2. Shard the remainder into workload-build groups, in first-seen
    # order (workload-major execution keeps the build LRU warm).
    groups: dict[tuple, list[RunRequest]] = {}
    for req in receivers:
        groups.setdefault(_build_key(req), []).append(req)

    if jobs is None:
        jobs = os.cpu_count() or 1

    if jobs <= 1 or len(groups) <= 1:
        for group in groups.values():
            for req in group:
                finish(req, simulate(req, profiler=profiler))
        return results  # type: ignore[return-value]

    # 3. One task per workload group; persist/report as each completes.
    with ProcessPoolExecutor(max_workers=min(jobs, len(groups))) as pool:
        pending = {
            pool.submit(_run_group, group): group for group in groups.values()
        }
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                group = pending.pop(future)
                for req, result in zip(group, future.result()):
                    finish(req, result)
    return results  # type: ignore[return-value]
