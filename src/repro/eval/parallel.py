"""Parallel evaluation engine: fan a run grid out across processes.

:func:`run_many` is the batch counterpart of
:func:`repro.eval.runner.run_one`.  It takes any iterable of
:class:`~repro.eval.runner.RunRequest` and returns the matching
:class:`~repro.eval.runner.RunResult` list *in input order*, after:

1. answering every request it can from the result store (if given);
2. deduplicating identical requests (one simulation, many receivers);
3. when an artifact store is given, making sure every needed build
   artifact (program + trace + fetch plan, see
   :mod:`repro.eval.artifacts`) exists on disk — missing ones are
   captured in parallel, one task per workload build;
4. dispatching the remaining requests at *request* granularity:
   longest-estimated-first, in small single-build chunks, so ``jobs=N``
   yields ~N-way occupancy even when the whole grid shares one workload
   (the paper's 13-design grids) or is heavily skewed.

Scheduling at request granularity is what the artifact cache buys:
workers hydrate the design-independent work (trace capture, fetch-plan
probing) from disk via their per-process
:class:`~repro.eval.runner._BuildCache` instead of redoing it, so
splitting a workload's designs across workers no longer multiplies the
build cost.  Without an artifact store the same scheduling applies and
each worker builds at most once per workload (chunks never mix builds).

Simulations are deterministic (every RNG in the machine is seeded), so
a parallel grid is bit-identical to a serial one — only wall-clock
changes.  Worker processes never touch the result store; the parent
persists results and reports ``progress`` per finished request as
chunks complete, which keeps store writes single-writer per invocation
while remaining safe across concurrent invocations (writes are atomic).
"""

from __future__ import annotations

import dataclasses
import math
import os
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Iterable

from repro.engine.frontend import fetch_config_key
from repro.eval.options import EvalOptions
from repro.eval.runner import (
    RunRequest,
    RunResult,
    configure_artifacts,
    simulate,
)

#: Largest number of requests bundled into one worker task.  Small
#: chunks keep the tail balanced and progress fine-grained; the
#: per-task cost they amortize (result pickling, queue round-trip) is
#: tiny next to a simulation.
_MAX_CHUNK = 4

#: Task oversubscription factor: aim for about this many chunks per
#: worker so early-finishing workers always find queued work.
_CHUNKS_PER_JOB = 4


def _build_key(req: RunRequest) -> tuple:
    """Requests sharing this key share a workload build, trace, and
    (per frontend config) fetch plan — the axes of the artifact cache."""
    return (req.workload, req.int_regs, req.fp_regs, req.scale, req.max_instructions)


def _estimate(req: RunRequest) -> float:
    """Relative host-cost estimate of one run (longest-first ordering).

    The dominant cost driver is the dynamic instruction budget; the
    issue model is a useful secondary signal (in-order runs drain the
    window more slowly per instruction).
    """
    weight = 1.25 if req.issue_model == "inorder" else 1.0
    return req.max_instructions * weight


def _schedule_chunks(rest: list[RunRequest], jobs: int) -> list[list[RunRequest]]:
    """Split ``rest`` into small, single-build, longest-first chunks.

    Chunks never mix workload builds (a worker hydrates/builds once per
    chunk), requests inside a build are ordered longest-estimate-first,
    and the chunk list itself is ordered by descending estimated cost so
    the pool starts the heaviest work first.  Deterministic for a given
    input order.
    """
    if not rest:
        return []
    size = max(1, min(_MAX_CHUNK, math.ceil(len(rest) / (jobs * _CHUNKS_PER_JOB))))
    groups: dict[tuple, list[RunRequest]] = {}
    for req in rest:
        groups.setdefault(_build_key(req), []).append(req)
    chunks: list[list[RunRequest]] = []
    for group in groups.values():
        ordered = sorted(group, key=_estimate, reverse=True)
        chunks.extend(ordered[i : i + size] for i in range(0, len(ordered), size))
    chunks.sort(key=lambda chunk: sum(_estimate(r) for r in chunk), reverse=True)
    return chunks


# -- worker entry points ------------------------------------------------------


def _init_worker(artifact_root: "str | None") -> None:
    """Pool initializer: attach the shared on-disk artifact store."""
    if artifact_root is not None:
        from repro.eval.artifacts import ArtifactStore

        configure_artifacts(ArtifactStore(artifact_root))


def _capture_build(reps: list[RunRequest]) -> None:
    """Capture one workload build's artifacts (trace + fetch plans).

    ``reps`` holds one representative request per distinct frontend
    configuration of a single build; materializing their traces/plans
    through the worker's artifact-attached build cache persists every
    missing artifact as a side effect.
    """
    from repro.eval.runner import _CACHE

    for req in reps:
        trace = _CACHE.get_trace(
            req.workload, req.int_regs, req.fp_regs, req.scale, req.max_instructions
        )
        _CACHE.get_fetch_plan(req, req.machine_config(), trace)


def _run_chunk(reqs: list[RunRequest]) -> list[RunResult]:
    """Worker entry point: simulate one chunk serially."""
    return [simulate(r) for r in reqs]


# -- driver -------------------------------------------------------------------


class ProgressError(RuntimeError):
    """A client-supplied ``progress`` callback raised during a batch.

    The batch itself was *not* abandoned: every queued request still ran
    (or was answered from the store), fresh results were persisted, and
    the completed result list is attached as :attr:`results` (entries
    are ``None`` only for requests that had not finished for unrelated
    reasons).  The callback's original exception is chained as
    ``__cause__``.
    """

    def __init__(self, results: "list[RunResult | None]"):
        super().__init__(
            "progress callback raised; the batch still completed — "
            "results attached as .results"
        )
        self.results = results


class _ProgressGuard:
    """Shields the batch from a raising progress callback.

    The first exception disables further reporting and is re-raised —
    wrapped in :class:`ProgressError` with the results attached — only
    after every queued request has been driven to completion.
    """

    def __init__(self, callback: "Callable[[str], None] | None"):
        self.callback = callback
        self.error: "BaseException | None" = None

    def __call__(self, message: str) -> None:
        if self.callback is None or self.error is not None:
            return
        try:
            self.callback(message)
        except Exception as exc:
            self.error = exc

    def finish(self, results: "list[RunResult | None]") -> "list[RunResult | None]":
        if self.error is not None:
            raise ProgressError(results) from self.error
        return results


_UNSET = object()


def _resolve_options(options, jobs, store, progress, profiler, artifacts) -> EvalOptions:
    """Merge the ``options`` object with the deprecated keyword aliases."""
    legacy = {
        name: value
        for name, value in (
            ("jobs", jobs),
            ("store", store),
            ("progress", progress),
            ("profiler", profiler),
            ("artifacts", artifacts),
        )
        if value is not _UNSET
    }
    if isinstance(options, int):
        # Legacy positional call: run_many(requests, 4).
        legacy.setdefault("jobs", options)
        options = None
    if legacy:
        if options is not None:
            raise TypeError(
                "run_many() got both an EvalOptions object and legacy "
                f"keyword(s) {sorted(legacy)}; pass everything via options"
            )
        warnings.warn(
            "run_many(jobs=/store=/progress=/profiler=/artifacts=) is "
            "deprecated; pass run_many(requests, EvalOptions(...)) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return EvalOptions(**legacy)
    return options if options is not None else EvalOptions()


def run_many(
    requests: Iterable[RunRequest],
    options: EvalOptions | None = None,
    *,
    jobs=_UNSET,
    store=_UNSET,
    progress=_UNSET,
    profiler=_UNSET,
    artifacts=_UNSET,
) -> list[RunResult]:
    """Run a batch of requests, parallel and memoized; results in order.

    All knobs travel in one :class:`~repro.eval.options.EvalOptions`
    parameter object (the individual keywords remain as deprecated
    aliases for one release):

    ``options.jobs``
        Worker processes.  ``<= 1`` runs inline in this process (still
        grouped by workload for trace reuse); ``None`` means one per
        CPU.  Scheduling is per *request*, so a single-workload grid
        still fills all ``jobs`` workers.
    ``options.store``
        A :class:`repro.eval.resultstore.ResultStore` (or None).  Hits
        skip simulation entirely; fresh results are persisted.
    ``options.progress``
        Optional callback receiving one line per finished/cached run,
        emitted as workers complete each request.  A callback that
        raises cannot abandon the batch: the remaining work still runs
        (and is persisted), then :class:`ProgressError` is raised with
        the results attached.
    ``options.profiler``
        Optional :class:`repro.perf.SimProfiler` accumulated across the
        whole batch.  Profiling forces the batch inline (timings cannot
        cross process boundaries) and bypasses store reads (a cache hit
        has no host time to measure); results are still persisted.
    ``options.artifacts``
        A :class:`repro.eval.artifacts.ArtifactStore`, a directory path
        for one, or None.  When given, the parent first makes sure every
        needed build artifact exists (capturing missing ones in
        parallel, one task per build) and workers hydrate traces and
        fetch plans from it instead of re-running the functional
        simulator.
    ``options.kernel``
        Fold ``kernel=True`` into every request's config pairs, so the
        whole batch replays through the compiled trace kernel
        (:mod:`repro.kernel`).  Stats are bit-identical to the
        interpreted machine; only host throughput changes.  Applied
        before store lookup and remote submission, so cached and remote
        runs key on the kernel flag like any other config override.
    ``options.kernel_batch``
        Same, for the batch-vectorized backend
        (``MachineConfig.kernel_batch``; ooo only, in-order requests
        fall back to the base kernel inside the runner).
    ``options.server``
        Address of a running ``python -m repro.serve`` daemon.  The
        batch is submitted over the socket instead of simulated here;
        the daemon's scheduler answers what it can from its stores,
        dedupes in-flight work across all connected clients, and
        streams results back (``jobs``/``store``/``artifacts`` are then
        the daemon's, and a ``profiler`` is rejected — host timings
        cannot cross the service boundary).
    """
    opts = _resolve_options(options, jobs, store, progress, profiler, artifacts)
    reqs = list(requests)
    if opts.kernel:
        # Fold the kernel switch into each request's config pairs before
        # anything keys on the request: store lookups, dedup, and remote
        # submission all see ``kernel=True`` (result stats are identical
        # either way, but host-side metrics are not, so the cache keys
        # must differ).
        reqs = [
            dataclasses.replace(
                r, config=tuple({**dict(r.config), "kernel": True}.items())
            )
            for r in reqs
        ]
    if opts.kernel_batch:
        # Same folding for the batch backend: keyed like any other
        # config override before caching, dedup and remote submission.
        reqs = [
            dataclasses.replace(
                r, config=tuple({**dict(r.config), "kernel_batch": True}.items())
            )
            for r in reqs
        ]
    if opts.server is not None:
        if opts.profiler is not None:
            raise ValueError("a profiler cannot cross the --server boundary")
        from repro.serve.client import run_remote

        return run_remote(reqs, opts.server, progress=opts.progress)

    jobs = opts.jobs
    store = opts.store
    profiler = opts.profiler
    progress = _ProgressGuard(opts.progress)
    results: list[RunResult | None] = [None] * len(reqs)
    if profiler is not None:
        jobs = 1
    art = opts.artifacts
    if art is not None and not hasattr(art, "load_build"):
        from repro.eval.artifacts import ArtifactStore

        art = ArtifactStore(art)

    # 1. Dedup identical requests and satisfy what we can from the store.
    receivers: dict[RunRequest, list[int]] = {}
    cached: dict[RunRequest, RunResult] = {}
    for i, req in enumerate(reqs):
        if req in receivers:
            receivers[req].append(i)
            continue
        if req in cached:
            results[i] = cached[req]
            continue
        if store is not None and profiler is None:
            hit = store.get(req)
            if hit is not None:
                results[i] = cached[req] = hit
                progress(f"{req.name}: cached")
                continue
        receivers[req] = [i]

    def finish(req: RunRequest, result: RunResult) -> None:
        for i in receivers[req]:
            results[i] = result
        if store is not None:
            store.put(result)
        progress(f"{req.name}: done")

    rest = list(receivers)
    if jobs is None:
        jobs = os.cpu_count() or 1

    # 2. Inline path: workload-major order keeps the build LRU warm.
    if jobs <= 1 or len(rest) <= 1:
        groups: dict[tuple, list[RunRequest]] = {}
        for req in rest:
            groups.setdefault(_build_key(req), []).append(req)
        previous = configure_artifacts(art) if art is not None else None
        try:
            for group in groups.values():
                for req in group:
                    finish(req, simulate(req, profiler=profiler))
        finally:
            if art is not None:
                configure_artifacts(previous)
        return progress.finish(results)  # type: ignore[return-value]

    # 3. Request-level scheduling: longest-estimated-first small chunks.
    chunks = _schedule_chunks(rest, jobs)
    root = str(art.root) if art is not None else None
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(chunks)),
        initializer=_init_worker,
        initargs=(root,),
    ) as pool:
        if art is not None:
            # 3a. Make sure every build artifact exists before fanning
            # the replays out: one capture task per missing build, each
            # carrying one representative request per distinct frontend
            # configuration (a build can need several fetch plans).
            missing: dict[tuple, dict[tuple, RunRequest]] = {}
            for req in rest:
                axes = _build_key(req)
                fkey = fetch_config_key(req.machine_config())
                if not art.has_build(axes) or not art.has_plan(axes, fkey):
                    missing.setdefault(axes, {}).setdefault(fkey, req)
            if missing:
                captures = {
                    pool.submit(_capture_build, list(reps.values())): axes
                    for axes, reps in missing.items()
                }
                for future in captures:
                    future.result()
                    progress(f"{captures[future][0]}: artifacts captured")

        # 3b. Replay: workers hydrate from the artifact cache (or build
        # once per chunk) and the parent persists/report per request.
        pending = {pool.submit(_run_chunk, chunk): chunk for chunk in chunks}
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                chunk = pending.pop(future)
                for req, result in zip(chunk, future.result()):
                    finish(req, result)
    return progress.finish(results)  # type: ignore[return-value]
