"""Interpreter for the mini ISA.

:class:`Executor` runs a program to completion (or to an instruction
budget), yielding one :class:`~repro.func.dyninst.DynInst` per retired
instruction.  The register file is a flat 64-entry list (see
:mod:`repro.isa.registers`); integer results are masked to 32 bits and
interpreted as two's-complement where the ISA requires signed behaviour.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.func.dyninst import DecodedInst, DynInst
from repro.isa.instructions import AddrMode, Instruction
from repro.isa.opcodes import Op, op_class
from repro.isa.program import Program
from repro.isa.registers import NUM_REGS, REG_ZERO
from repro.mem.memory import SparseMemory

_MASK32 = 0xFFFF_FFFF
_SIGN32 = 0x8000_0000


def _s32(value: int) -> int:
    """Two's-complement interpretation of a 32-bit value."""
    value &= _MASK32
    return value - 0x1_0000_0000 if value & _SIGN32 else value


class ExecutionError(Exception):
    """Raised for architecturally invalid execution (div-by-zero, bad PC)."""


class Executor:
    """Architectural interpreter producing the dynamic instruction stream."""

    def __init__(self, program: Program, memory: SparseMemory | None = None):
        self.program = program
        self.memory = memory if memory is not None else SparseMemory()
        self.regs: list[int | float] = [0] * NUM_REGS
        self.pc_index = 0
        self.retired = 0
        self.halted = False
        self._decode_cache: list[DecodedInst] = [
            DecodedInst(i, inst, op_class(inst.op))
            for i, inst in enumerate(program.instructions)
        ]

    # -- register access ---------------------------------------------------

    def read(self, reg: int | None) -> int | float:
        """Read a register (``None`` and ``r0`` read as zero)."""
        if reg is None or reg == REG_ZERO:
            return 0
        return self.regs[reg]

    def write(self, reg: int | None, value: int | float) -> None:
        """Write a register (writes to ``r0`` are discarded)."""
        if reg is None or reg == REG_ZERO:
            return
        if isinstance(value, int):
            value &= _MASK32
        self.regs[reg] = value

    # -- main loop ----------------------------------------------------------

    def run(self, max_instructions: int | None = None) -> Iterator[DynInst]:
        """Execute, yielding retired instructions until HALT or the budget."""
        program = self.program
        decode = self._decode_cache
        n = len(decode)
        while not self.halted:
            if max_instructions is not None and self.retired >= max_instructions:
                return
            index = self.pc_index
            if not 0 <= index < n:
                raise ExecutionError(f"pc out of range: index {index}")
            d = decode[index]
            pc = program.pc_of(index)
            ea, taken, next_index = self._execute(d.inst)
            dyn = DynInst(self.retired, d, pc, ea=ea, taken=taken, next_index=next_index)
            self.retired += 1
            self.pc_index = next_index
            yield dyn

    def _execute(self, inst: Instruction) -> tuple[int | None, bool, int]:
        """Execute one instruction; returns (ea, taken, next_index)."""
        op = inst.op
        handler = _HANDLERS.get(op)
        if handler is None:
            raise ExecutionError(f"unimplemented opcode: {op.name}")
        return handler(self, inst)

    # -- effective addresses -----------------------------------------------------

    def _effective_address(self, inst: Instruction) -> int:
        mode = inst.mode
        base = self.read(inst.rs1)
        if not isinstance(base, int):
            raise ExecutionError(f"fp value used as base address: {inst}")
        if mode is AddrMode.BASE_IMM:
            return (base + inst.imm) & _MASK32
        if mode is AddrMode.BASE_REG:
            index = self.read(inst.rs2)
            return (base + index) & _MASK32
        # Post-increment/decrement: the access uses the unmodified base.
        return base & _MASK32

    def _post_update(self, inst: Instruction) -> None:
        mode = inst.mode
        if mode is AddrMode.POST_INC:
            self.write(inst.rs1, self.read(inst.rs1) + inst.imm)
        elif mode is AddrMode.POST_DEC:
            self.write(inst.rs1, self.read(inst.rs1) - inst.imm)


# ---------------------------------------------------------------------------
# Opcode handlers.  Each returns (ea, taken, next_index).
# ---------------------------------------------------------------------------

def _fallthrough(ex: Executor) -> int:
    return ex.pc_index + 1


def _h_alu3(fn: Callable[[int, int], int]):
    def handler(ex: Executor, inst: Instruction):
        a = ex.read(inst.rs1)
        b = ex.read(inst.rs2)
        ex.write(inst.rd, fn(a, b))
        return None, False, _fallthrough(ex)

    return handler


def _h_alui(fn: Callable[[int, int], int]):
    def handler(ex: Executor, inst: Instruction):
        a = ex.read(inst.rs1)
        ex.write(inst.rd, fn(a, inst.imm))
        return None, False, _fallthrough(ex)

    return handler


def _h_fp3(fn: Callable[[float, float], float]):
    def handler(ex: Executor, inst: Instruction):
        a = ex.read(inst.rs1)
        b = ex.read(inst.rs2)
        ex.write(inst.rd, fn(float(a), float(b)))
        return None, False, _fallthrough(ex)

    return handler


def _div(a: int, b: int) -> int:
    if _s32(b) == 0:
        raise ExecutionError("integer division by zero")
    q = abs(_s32(a)) // abs(_s32(b))
    if (_s32(a) < 0) != (_s32(b) < 0):
        q = -q
    return q & _MASK32


def _rem(a: int, b: int) -> int:
    if _s32(b) == 0:
        raise ExecutionError("integer remainder by zero")
    r = abs(_s32(a)) % abs(_s32(b))
    if _s32(a) < 0:
        r = -r
    return r & _MASK32


def _fdiv(a: float, b: float) -> float:
    if b == 0.0:
        raise ExecutionError("fp division by zero")
    return a / b


def _h_load(ex: Executor, inst: Instruction):
    ea = ex._effective_address(inst)
    if inst.op is Op.LB:
        value: int | float = ex.memory.load_byte(ea)
    else:
        value = ex.memory.load_word(ea)
        if inst.op is Op.LW and not isinstance(value, int):
            raise ExecutionError(f"integer load of fp-valued word at {ea:#x}")
        if inst.op is Op.LFW:
            value = float(value)
    ex.write(inst.rd, value)
    ex._post_update(inst)
    return ea, False, _fallthrough(ex)


def _h_store(ex: Executor, inst: Instruction):
    ea = ex._effective_address(inst)
    value = ex.read(inst.rs2)
    if inst.op is Op.SB:
        if not isinstance(value, int):
            raise ExecutionError("byte store of fp value")
        ex.memory.store_byte(ea, value)
    elif inst.op is Op.SFW:
        ex.memory.store_word(ea, float(value))
    else:
        if not isinstance(value, int):
            raise ExecutionError("integer store of fp value")
        ex.memory.store_word(ea, value)
    ex._post_update(inst)
    return ea, False, _fallthrough(ex)


def _h_branch(cond: Callable[[int, int], bool]):
    def handler(ex: Executor, inst: Instruction):
        a_raw = ex.read(inst.rs1)
        a = _s32(a_raw) if isinstance(a_raw, int) else a_raw
        b_raw = ex.read(inst.rs2)
        b = _s32(b_raw) if isinstance(b_raw, int) else b_raw
        taken = cond(a, b)
        next_index = inst.target if taken else _fallthrough(ex)
        return None, taken, next_index

    return handler


def _h_j(ex: Executor, inst: Instruction):
    return None, True, inst.target


def _h_jal(ex: Executor, inst: Instruction):
    ex.write(inst.rd, ex.program.pc_of(ex.pc_index + 1))
    return None, True, inst.target


def _h_jr(ex: Executor, inst: Instruction):
    value = ex.read(inst.rs1)
    if not isinstance(value, int):
        raise ExecutionError("jr through fp register")
    return None, True, ex.program.index_of(value)


def _h_nop(ex: Executor, inst: Instruction):
    return None, False, _fallthrough(ex)


def _h_halt(ex: Executor, inst: Instruction):
    ex.halted = True
    return None, False, ex.pc_index


def _h_lui(ex: Executor, inst: Instruction):
    ex.write(inst.rd, (inst.imm << 16) & _MASK32)
    return None, False, _fallthrough(ex)


def _h_fmov(ex: Executor, inst: Instruction):
    ex.write(inst.rd, float(ex.read(inst.rs1)))
    return None, False, _fallthrough(ex)


def _h_fneg(ex: Executor, inst: Instruction):
    ex.write(inst.rd, -float(ex.read(inst.rs1)))
    return None, False, _fallthrough(ex)


def _h_cvtif(ex: Executor, inst: Instruction):
    ex.write(inst.rd, float(_s32(ex.read(inst.rs1))))
    return None, False, _fallthrough(ex)


def _h_cvtfi(ex: Executor, inst: Instruction):
    ex.write(inst.rd, int(float(ex.read(inst.rs1))) & _MASK32)
    return None, False, _fallthrough(ex)


def _h_flt(ex: Executor, inst: Instruction):
    a = float(ex.read(inst.rs1))
    b = float(ex.read(inst.rs2))
    ex.write(inst.rd, 1 if a < b else 0)
    return None, False, _fallthrough(ex)


_HANDLERS: dict[Op, Callable] = {
    Op.ADD: _h_alu3(lambda a, b: a + b),
    Op.SUB: _h_alu3(lambda a, b: a - b),
    Op.AND: _h_alu3(lambda a, b: a & b),
    Op.OR: _h_alu3(lambda a, b: a | b),
    Op.XOR: _h_alu3(lambda a, b: a ^ b),
    Op.NOR: _h_alu3(lambda a, b: ~(a | b)),
    Op.SLL: _h_alu3(lambda a, b: a << (b & 31)),
    Op.SRL: _h_alu3(lambda a, b: (a & _MASK32) >> (b & 31)),
    Op.SRA: _h_alu3(lambda a, b: _s32(a) >> (b & 31)),
    Op.SLT: _h_alu3(lambda a, b: 1 if _s32(a) < _s32(b) else 0),
    Op.MUL: _h_alu3(lambda a, b: _s32(a) * _s32(b)),
    Op.DIV: _h_alu3(_div),
    Op.REM: _h_alu3(_rem),
    Op.ADDI: _h_alui(lambda a, imm: a + imm),
    Op.ANDI: _h_alui(lambda a, imm: a & imm),
    Op.ORI: _h_alui(lambda a, imm: a | imm),
    Op.XORI: _h_alui(lambda a, imm: a ^ imm),
    Op.SLTI: _h_alui(lambda a, imm: 1 if _s32(a) < imm else 0),
    Op.SLLI: _h_alui(lambda a, imm: a << (imm & 31)),
    Op.SRLI: _h_alui(lambda a, imm: (a & _MASK32) >> (imm & 31)),
    Op.LUI: _h_lui,
    Op.FADD: _h_fp3(lambda a, b: a + b),
    Op.FSUB: _h_fp3(lambda a, b: a - b),
    Op.FMUL: _h_fp3(lambda a, b: a * b),
    Op.FDIV: _h_fp3(_fdiv),
    Op.FMOV: _h_fmov,
    Op.FNEG: _h_fneg,
    Op.CVTIF: _h_cvtif,
    Op.CVTFI: _h_cvtfi,
    Op.FLT: _h_flt,
    Op.LW: _h_load,
    Op.LB: _h_load,
    Op.LFW: _h_load,
    Op.SW: _h_store,
    Op.SB: _h_store,
    Op.SFW: _h_store,
    Op.BEQ: _h_branch(lambda a, b: a == b),
    Op.BNE: _h_branch(lambda a, b: a != b),
    Op.BLT: _h_branch(lambda a, b: a < b),
    Op.BGE: _h_branch(lambda a, b: a >= b),
    Op.BLTZ: _h_branch(lambda a, b: a < 0),
    Op.BGEZ: _h_branch(lambda a, b: a >= 0),
    Op.J: _h_j,
    Op.JAL: _h_jal,
    Op.JR: _h_jr,
    Op.NOP: _h_nop,
    Op.HALT: _h_halt,
}


def capture_trace(
    program: Program,
    memory: SparseMemory | None = None,
    max_instructions: int | None = None,
) -> list[DynInst]:
    """Run a program functionally and materialize its dynamic trace.

    This is the capture half of trace capture/replay: the returned list
    is what the timing engine replays, what :func:`repro.func.tracefile.
    save_trace` persists, and what the artifact cache
    (:mod:`repro.eval.artifacts`) hydrates instead of re-executing.
    """
    return list(Executor(program, memory).run(max_instructions=max_instructions))


def run_program(
    program: Program,
    memory: SparseMemory | None = None,
    max_instructions: int | None = None,
) -> Executor:
    """Run a program to completion; returns the finished executor.

    Convenience wrapper for tests and examples that only care about the
    final architectural state, not the dynamic stream.
    """
    executor = Executor(program, memory)
    for _ in executor.run(max_instructions=max_instructions):
        pass
    return executor
