"""Dynamic instruction records.

A :class:`DynInst` is one element of the dynamic instruction stream: a
static instruction plus everything the timing engine needs that only
execution can determine — the effective address of a memory access and
the outcome/target of a control transfer.

The static per-instruction facts (sources, destinations, functional-unit
class) are precomputed once per static instruction by the executor's
decode cache and shared across all dynamic instances, so creating a
``DynInst`` is cheap.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Op, OpClass

#: Dense integer index per OpClass member (declaration order).  Hot
#: engine paths index per-class tables with it instead of hashing enum
#: members (enum ``__hash__`` is a Python-level call).
OPCLASS_INDEX: dict[OpClass, int] = {oc: i for i, oc in enumerate(OpClass)}


class DecodedInst:
    """Immutable static decode of one program instruction."""

    __slots__ = (
        "index",
        "inst",
        "op",
        "op_class",
        "fu_index",
        "srcs",
        "addr_srcs",
        "data_srcs",
        "dests",
        "is_load",
        "is_store",
        "is_mem",
        "is_branch",
        "is_control",
        "base_reg",
        "offset",
    )

    def __init__(self, index: int, inst: Instruction, op_class: OpClass):
        self.index = index
        self.inst = inst
        self.op = inst.op
        self.op_class = op_class
        self.fu_index = OPCLASS_INDEX[op_class]
        self.srcs = inst.sources()
        self.dests = inst.dests()
        self.is_load = inst.is_load()
        self.is_store = inst.is_store()
        self.is_mem = self.is_load or self.is_store
        self.is_branch = inst.is_branch()
        self.is_control = op_class in (OpClass.BRANCH, OpClass.JUMP)
        self.base_reg = inst.base_register()
        self.offset = inst.imm if self.is_mem else 0
        # Stores split their dependences: address generation needs only
        # the base register (rs2 holds the store value), so the LSQ can
        # compute the address — and request its translation — before the
        # data arrives.  For everything else the split is degenerate.
        if self.is_store:
            self.addr_srcs = tuple(s for s in self.srcs if s == inst.rs1)
            self.data_srcs = tuple(s for s in self.srcs if s != inst.rs1)
        else:
            self.addr_srcs = self.srcs
            self.data_srcs = ()


class DynInst:
    """One retired dynamic instruction."""

    __slots__ = ("seq", "decoded", "pc", "ea", "taken", "next_index")

    def __init__(
        self,
        seq: int,
        decoded: DecodedInst,
        pc: int,
        ea: int | None = None,
        taken: bool = False,
        next_index: int = -1,
    ):
        #: Dynamic sequence number (0-based retirement order).
        self.seq = seq
        #: Shared static decode record.
        self.decoded = decoded
        #: Virtual address of this instruction.
        self.pc = pc
        #: Effective (virtual) address for loads/stores, else ``None``.
        self.ea = ea
        #: For control transfers: whether the transfer was taken.
        self.taken = taken
        #: Static index of the next instruction executed.
        self.next_index = next_index

    # Convenience passthroughs (used sparingly; hot paths go via .decoded).

    @property
    def op(self) -> Op:
        return self.decoded.op

    @property
    def is_load(self) -> bool:
        return self.decoded.is_load

    @property
    def is_store(self) -> bool:
        return self.decoded.is_store

    @property
    def is_mem(self) -> bool:
        return self.decoded.is_mem

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f" ea={self.ea:#x}" if self.ea is not None else ""
        return f"<DynInst #{self.seq} {self.decoded.inst}{extra}>"
