"""Functional (architectural) simulation.

The functional simulator interprets a :class:`~repro.isa.program.Program`
against a :class:`~repro.mem.memory.SparseMemory` and yields the dynamic
instruction stream — one :class:`~repro.func.dyninst.DynInst` per retired
instruction, carrying effective addresses and branch outcomes.  The
timing engine (:mod:`repro.engine`) consumes this stream.

This functional-first split is a substitution for the paper's
execution-driven simulator (which also executed wrong-path
instructions); see DESIGN.md §1 for why the first-order translation
bandwidth behaviour is preserved.
"""

from repro.func.dyninst import DynInst
from repro.func.executor import ExecutionError, Executor, run_program

__all__ = ["DynInst", "ExecutionError", "Executor", "run_program"]
