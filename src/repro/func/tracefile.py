"""Binary build-artifact files: programs, traces, and fetch plans on disk.

Long functional executions can be captured once and replayed under many
translation designs or machine configurations (including on machines
without the workload's generator).  Version 2 generalizes the original
bare-trace format into a small sectioned *artifact container* so the
same file family also carries the generated program and precomputed
fetch plans — everything :mod:`repro.eval.artifacts` needs to hydrate a
workload build without re-running the functional simulator:

* header: magic ``RPTR``, version, section count;
* one section per artifact kind, each ``(4-byte tag, u64 length,
  payload)``:

  - ``PROG`` — the static program as canonical JSON (instructions,
    labels, name, code base), enough to rebuild the decode stream;
  - ``TRCE`` — the dynamic instruction stream, one 28-byte record per
    retired instruction: ``seq, static index, pc, ea (+1, 0 = none),
    taken, next_index``;
  - ``PLAN`` — a precomputed fetch-plan event stream (see
    :func:`repro.engine.frontend.encode_fetch_plan`, which owns the
    payload layout).

Version-1 files (bare header + records, no sections) are rejected with
a clear :class:`TraceFileError`; re-capture them with
:func:`save_trace`.  Replaying a ``TRCE`` section requires the *same
program* (the static decode is reconstructed from it); a program-length
check guards obvious mismatches, and containers written by
:func:`save_trace` embed the program so nothing else is needed.
"""

from __future__ import annotations

import json
import os
import struct
from pathlib import Path
from typing import Iterable, Iterator

from repro.func.dyninst import DecodedInst, DynInst
from repro.isa.instructions import AddrMode, Instruction
from repro.isa.opcodes import Op, op_class
from repro.isa.program import Program

_MAGIC = b"RPTR"
_VERSION = 2
#: Container header: magic, version, section count (+ reserved word).
_HEADER = struct.Struct("<4sHxxQQ")
#: Section header: 4-byte tag + payload length.
_SECTION = struct.Struct("<4sQ")
#: One dynamic instruction record.
_RECORD = struct.Struct("<QIIIHH")
#: Trace-section preamble: record count + program length.
_TRACE_HEAD = struct.Struct("<QQ")

SECTION_PROGRAM = b"PROG"
SECTION_TRACE = b"TRCE"
SECTION_PLAN = b"PLAN"
#: Encoded kernel-replay arrays (see :mod:`repro.kernel.encode`).
SECTION_KERNEL = b"KERN"
#: Per-workload analysis profile (see :mod:`repro.analysis.profile`).
SECTION_PROFILE = b"PROF"
#: Provenance of an ingested external trace (see :mod:`repro.ingest`):
#: source digest/record count + window policy, as canonical JSON.  Its
#: presence marks a container holding a compiled *external* build, and
#: hydration verifies the payload against the requesting workload token
#: so a stale or foreign build reads as a clean cache miss.
SECTION_EXTERN = b"EXTR"

#: Sections this build of the reader understands.  Unknown tags are
#: *retained*, not rejected: a version-2 container written by a newer
#: build (with an extra section kind) must round-trip through an older
#: reader — consumers look up the tags they know and ignore the rest,
#: and rewriters (e.g. the artifact store merging a new section into an
#: existing container) carry unknown payloads forward untouched.  Tag
#: validity is structural: exactly 4 printable ASCII bytes, which
#: distinguishes a future extension from a corrupt or foreign file.
KNOWN_SECTIONS = frozenset(
    (
        SECTION_PROGRAM,
        SECTION_TRACE,
        SECTION_PLAN,
        SECTION_KERNEL,
        SECTION_PROFILE,
        SECTION_EXTERN,
    )
)


def _valid_tag(tag: bytes) -> bool:
    return len(tag) == 4 and all(0x20 <= b < 0x7F for b in tag)

#: Stable order for AddrMode serialization (enum declaration order).
_ADDR_MODES = tuple(AddrMode)
_ADDR_MODE_INDEX = {mode: i for i, mode in enumerate(_ADDR_MODES)}


class TraceFileError(ValueError):
    """Raised for malformed, mismatched, or wrong-version artifact files."""


# ---------------------------------------------------------------------------
# Container layer.
# ---------------------------------------------------------------------------


def write_container(path: "str | Path", sections: dict[bytes, bytes]) -> None:
    """Write a version-2 artifact container holding ``sections``."""
    with open(path, "wb") as handle:
        handle.write(_HEADER.pack(_MAGIC, _VERSION, len(sections), 0))
        for tag, payload in sections.items():
            if len(tag) != 4:
                raise TraceFileError(f"section tag must be 4 bytes: {tag!r}")
            handle.write(_SECTION.pack(tag, len(payload)))
            handle.write(payload)


def read_container(path: "str | Path") -> dict[bytes, bytes]:
    """Read a version-2 container back as a ``{tag: payload}`` mapping.

    Every way a container can lie about its shape raises
    :class:`TraceFileError` — never ``struct.error``, never a silent
    partial read, never an attempted multi-gigabyte allocation from a
    corrupt length field.  The artifact store relies on this: a damaged
    cache entry must read as a *clean miss* (one well-known exception
    type), not crash the run that touched it.
    """
    with open(path, "rb") as handle:
        file_size = os.fstat(handle.fileno()).st_size
        header = handle.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise TraceFileError("truncated header")
        magic, version, count, _ = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise TraceFileError(f"bad magic: {magic!r}")
        if version == 1:
            raise TraceFileError(
                "version-1 trace files are no longer supported (the format "
                "gained program/fetch-plan sections in version 2); re-capture "
                "the trace with save_trace()"
            )
        if version != _VERSION:
            raise TraceFileError(f"unsupported version: {version}")
        sections: dict[bytes, bytes] = {}
        offset = _HEADER.size
        for _ in range(count):
            raw = handle.read(_SECTION.size)
            if len(raw) < _SECTION.size:
                raise TraceFileError("truncated section header")
            offset += _SECTION.size
            tag, length = _SECTION.unpack(raw)
            if not _valid_tag(tag):
                raise TraceFileError(f"malformed section tag: {tag!r}")
            # Check the declared length against what the file can still
            # hold *before* reading: a corrupt u64 length would otherwise
            # ask the allocator for up to 16 EiB (MemoryError/OverflowError,
            # which nothing downstream treats as "corrupt file").
            if length > file_size - offset:
                raise TraceFileError(
                    f"truncated {tag!r} section: declares {length} bytes "
                    f"but only {file_size - offset} remain in the file"
                )
            payload = handle.read(length)
            if len(payload) < length:
                raise TraceFileError(f"truncated {tag!r} section")
            offset += length
            sections[tag] = payload
        if offset != file_size:
            raise TraceFileError(
                f"{file_size - offset} bytes of trailing data after the "
                f"last declared section"
            )
    return sections


# ---------------------------------------------------------------------------
# Program codec (canonical JSON payload).
# ---------------------------------------------------------------------------


def encode_program(program: Program) -> bytes:
    """Serialize a resolved program to a ``PROG`` section payload."""
    insts = []
    for inst in program:
        if isinstance(inst.target, str):
            raise TraceFileError(
                f"cannot serialize unresolved label target {inst.target!r}"
            )
        insts.append(
            [
                int(inst.op),
                inst.rd,
                inst.rs1,
                inst.rs2,
                inst.imm,
                _ADDR_MODE_INDEX[inst.mode],
                inst.target,
            ]
        )
    payload = {
        "name": program.name,
        "code_base": program.code_base,
        "labels": program.labels,
        "instructions": insts,
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def decode_program(data: bytes) -> Program:
    """Rebuild a :class:`Program` from a ``PROG`` section payload."""
    try:
        payload = json.loads(data)
        instructions = [
            Instruction(
                Op(op),
                rd=rd,
                rs1=rs1,
                rs2=rs2,
                imm=imm,
                mode=_ADDR_MODES[mode],
                target=target,
            )
            for op, rd, rs1, rs2, imm, mode, target in payload["instructions"]
        ]
        return Program(
            instructions,
            labels=payload["labels"],
            name=payload["name"],
            code_base=payload["code_base"],
        )
    except (ValueError, KeyError, TypeError, IndexError) as exc:
        raise TraceFileError(f"malformed program section: {exc}") from exc


# ---------------------------------------------------------------------------
# External-trace provenance codec (canonical JSON payload).
# ---------------------------------------------------------------------------


def encode_extern_meta(meta: dict) -> bytes:
    """Serialize ingested-trace provenance to an ``EXTR`` payload.

    ``meta`` is the :attr:`repro.ingest.build.CompiledTrace.meta` dict
    (source digest, source record count, window policy, compiled
    record/slot counts).  Stored as versioned canonical JSON so the
    hydration check in :mod:`repro.eval.artifacts` can compare fields
    without caring about key order.
    """
    payload = {"version": 1, **meta}
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def decode_extern_meta(data: bytes) -> dict:
    """Rebuild the provenance dict from an ``EXTR`` section payload."""
    try:
        payload = json.loads(data)
    except ValueError as exc:
        raise TraceFileError(f"malformed extern section: {exc}") from exc
    if not isinstance(payload, dict):
        raise TraceFileError("malformed extern section: not a JSON object")
    if payload.pop("version", None) != 1:
        raise TraceFileError("unsupported extern-section version")
    return payload


# ---------------------------------------------------------------------------
# Trace codec (binary record stream).
# ---------------------------------------------------------------------------


def encode_trace(trace: Iterable[DynInst], program_length: int) -> bytes:
    """Serialize a dynamic instruction stream to a ``TRCE`` payload."""
    records = []
    for dyn in trace:
        ea = 0 if dyn.ea is None else dyn.ea + 1
        if dyn.seq < 0:
            # Wrong-path synthetics carry negative seqs; persisting one
            # would otherwise surface as a bare struct.error.
            raise TraceFileError(f"negative sequence number in trace: {dyn.seq}")
        if not 0 <= dyn.next_index <= 0xFFFF:
            raise TraceFileError(
                f"next_index {dyn.next_index} exceeds the 16-bit record field"
            )
        records.append(
            _RECORD.pack(
                dyn.seq,
                dyn.decoded.index,
                dyn.pc & 0xFFFF_FFFF,
                ea & 0xFFFF_FFFF,
                1 if dyn.taken else 0,
                dyn.next_index,
            )
        )
    return _TRACE_HEAD.pack(len(records), program_length) + b"".join(records)


def decode_trace(data: bytes, program: Program) -> list[DynInst]:
    """Rebuild the dynamic stream from a ``TRCE`` payload and its program."""
    if len(data) < _TRACE_HEAD.size:
        raise TraceFileError("truncated trace section")
    count, prog_len = _TRACE_HEAD.unpack_from(data)
    if prog_len != len(program):
        raise TraceFileError(
            f"trace was recorded against a {prog_len}-instruction "
            f"program; this one has {len(program)}"
        )
    if len(data) - _TRACE_HEAD.size < count * _RECORD.size:
        raise TraceFileError("truncated record stream")
    decode = [
        DecodedInst(i, inst, op_class(inst.op)) for i, inst in enumerate(program)
    ]
    n_static = len(decode)
    out: list[DynInst] = []
    append = out.append
    offset = _TRACE_HEAD.size
    for seq, index, pc, ea, taken, next_index in _RECORD.iter_unpack(
        data[offset : offset + count * _RECORD.size]
    ):
        if index >= n_static:
            raise TraceFileError(f"record references instruction {index}")
        append(
            DynInst(
                seq,
                decode[index],
                pc,
                ea=None if ea == 0 else ea - 1,
                taken=bool(taken),
                next_index=next_index,
            )
        )
    return out


# ---------------------------------------------------------------------------
# Whole-file convenience API (compatible with the version-1 entry points).
# ---------------------------------------------------------------------------


def save_trace(path: "str | Path", program: Program, trace: Iterable[DynInst]) -> int:
    """Write ``trace`` (and its ``program``) to ``path``; returns the record count.

    The container embeds the program, so the file is self-describing;
    :func:`load_trace` still accepts the program separately to guard
    against replaying a trace under the wrong build.
    """
    trace_payload = encode_trace(trace, len(program))
    write_container(
        path,
        {
            SECTION_PROGRAM: encode_program(program),
            SECTION_TRACE: trace_payload,
        },
    )
    return _TRACE_HEAD.unpack_from(trace_payload)[0]


def load_trace(path: "str | Path", program: Program) -> Iterator[DynInst]:
    """Replay a trace saved by :func:`save_trace` against ``program``."""
    sections = read_container(path)
    if SECTION_TRACE not in sections:
        raise TraceFileError("container has no trace section")
    yield from decode_trace(sections[SECTION_TRACE], program)


def load_program(path: "str | Path") -> Program:
    """Read the embedded program of an artifact container."""
    sections = read_container(path)
    if SECTION_PROGRAM not in sections:
        raise TraceFileError("container has no program section")
    return decode_program(sections[SECTION_PROGRAM])
