"""Binary trace files: save a dynamic instruction stream, replay it later.

Long functional executions can be captured once and replayed under many
translation designs or machine configurations (including on machines
without the workload's generator).  The format is a compact
little-endian record stream:

* header: magic ``RPTR``, version, record count, program length;
* one 28-byte record per dynamic instruction:
  ``seq, static index, pc, ea (+1, 0 = none), taken, next_index``.

Replaying requires the *same program* (the static decode is
reconstructed from it); a program-length check guards obvious
mismatches.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable, Iterator

from repro.func.dyninst import DecodedInst, DynInst
from repro.isa.opcodes import op_class
from repro.isa.program import Program

_MAGIC = b"RPTR"
_VERSION = 1
_HEADER = struct.Struct("<4sHxxQQ")
_RECORD = struct.Struct("<QIIIHH")


class TraceFileError(ValueError):
    """Raised for malformed or mismatched trace files."""


def save_trace(path: "str | Path", program: Program, trace: Iterable[DynInst]) -> int:
    """Write ``trace`` to ``path``; returns the number of records."""
    records = []
    for dyn in trace:
        ea = 0 if dyn.ea is None else dyn.ea + 1
        if not 0 <= dyn.next_index <= 0xFFFF:
            raise TraceFileError(
                f"next_index {dyn.next_index} exceeds the 16-bit record field"
            )
        records.append(
            _RECORD.pack(
                dyn.seq,
                dyn.decoded.index,
                dyn.pc & 0xFFFF_FFFF,
                ea & 0xFFFF_FFFF,
                1 if dyn.taken else 0,
                dyn.next_index,
            )
        )
    with open(path, "wb") as handle:
        handle.write(_HEADER.pack(_MAGIC, _VERSION, len(records), len(program)))
        for record in records:
            handle.write(record)
    return len(records)


def load_trace(path: "str | Path", program: Program) -> Iterator[DynInst]:
    """Replay a trace saved by :func:`save_trace` against ``program``."""
    decode = [
        DecodedInst(i, inst, op_class(inst.op)) for i, inst in enumerate(program)
    ]
    with open(path, "rb") as handle:
        header = handle.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise TraceFileError("truncated header")
        magic, version, count, prog_len = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise TraceFileError(f"bad magic: {magic!r}")
        if version != _VERSION:
            raise TraceFileError(f"unsupported version: {version}")
        if prog_len != len(program):
            raise TraceFileError(
                f"trace was recorded against a {prog_len}-instruction "
                f"program; this one has {len(program)}"
            )
        for _ in range(count):
            raw = handle.read(_RECORD.size)
            if len(raw) < _RECORD.size:
                raise TraceFileError("truncated record stream")
            seq, index, pc, ea, taken, next_index = _RECORD.unpack(raw)
            if index >= len(decode):
                raise TraceFileError(f"record references instruction {index}")
            yield DynInst(
                seq,
                decode[index],
                pc,
                ea=None if ea == 0 else ea - 1,
                taken=bool(taken),
                next_index=next_index,
            )
