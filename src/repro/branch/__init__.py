"""Branch prediction.

The paper's baseline front end uses a GAp two-level adaptive predictor
("8 bit global history indexing a 4096 entry pattern history table with
2-bit saturating counters") with a 3-cycle misprediction penalty.
"""

from repro.branch.predictors import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    BranchPredictor,
    GApPredictor,
    GSharePredictor,
    StaticBackwardTakenPredictor,
    TournamentPredictor,
)

__all__ = [
    "AlwaysTakenPredictor",
    "BimodalPredictor",
    "BranchPredictor",
    "GApPredictor",
    "GSharePredictor",
    "StaticBackwardTakenPredictor",
    "TournamentPredictor",
]
