"""Conditional branch direction predictors.

Targets are assumed to come from an ideal BTB / return-address stack (the
trace supplies them), so a misprediction here means a *direction*
misprediction; the timing engine charges the paper's 3-cycle penalty and
stalls the front end until the branch resolves.  This matches the paper's
setup, which reports direction prediction rates of 80–93%.
"""

from __future__ import annotations


class BranchPredictor:
    """Interface: predict a direction, then learn the outcome."""

    __slots__ = ()

    def predict(self, pc: int) -> bool:
        """Return the predicted direction (True = taken)."""
        raise NotImplementedError

    def update(self, pc: int, taken: bool) -> None:
        """Train on the resolved outcome."""
        raise NotImplementedError


class AlwaysTakenPredictor(BranchPredictor):
    """Degenerate baseline: predict taken."""

    __slots__ = ()

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        pass


class StaticBackwardTakenPredictor(BranchPredictor):
    """BTFNT heuristic; needs the branch displacement sign.

    The timing engine supplies the sign through :meth:`set_direction`
    before calling :meth:`predict`, keeping the interface uniform.
    """

    __slots__ = ("_backward",)

    def __init__(self):
        self._backward = False

    def set_direction(self, backward: bool) -> None:
        self._backward = backward

    def predict(self, pc: int) -> bool:
        return self._backward

    def update(self, pc: int, taken: bool) -> None:
        pass


class BimodalPredictor(BranchPredictor):
    """Classic per-PC 2-bit saturating counter table."""

    __slots__ = ("_mask", "_table")

    def __init__(self, entries: int = 2048):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"entries must be a power of two: {entries}")
        self._mask = entries - 1
        self._table = [2] * entries  # weakly taken

    def predict(self, pc: int) -> bool:
        return self._table[(pc >> 2) & self._mask] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = (pc >> 2) & self._mask
        counter = self._table[index]
        if taken:
            if counter < 3:
                self._table[index] = counter + 1
        elif counter > 0:
            self._table[index] = counter - 1


class GSharePredictor(BranchPredictor):
    """Gshare: global history XOR PC indexing a shared 2-bit PHT.

    Not in the paper (it predates McFarling's widespread adoption at
    this scale), included for the predictor ablation: it trades GAp's
    per-address columns for a larger effective pattern space.
    """

    __slots__ = ("history_bits", "_history", "_history_mask", "_index_mask", "_table")

    def __init__(self, history_bits: int = 12, pht_entries: int = 4096):
        if pht_entries <= 0 or pht_entries & (pht_entries - 1):
            raise ValueError(f"pht_entries must be a power of two: {pht_entries}")
        if history_bits <= 0:
            raise ValueError(f"history_bits must be positive: {history_bits}")
        self.history_bits = history_bits
        self._history = 0
        self._history_mask = (1 << history_bits) - 1
        self._index_mask = pht_entries - 1
        self._table = [2] * pht_entries

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._index_mask

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self._table[index]
        if taken:
            if counter < 3:
                self._table[index] = counter + 1
        elif counter > 0:
            self._table[index] = counter - 1
        self._history = ((self._history << 1) | (1 if taken else 0)) & self._history_mask


class TournamentPredictor(BranchPredictor):
    """McFarling-style tournament: bimodal vs gshare with a chooser."""

    __slots__ = ("_bimodal", "_gshare", "_chooser", "_mask")

    def __init__(self, entries: int = 4096):
        self._bimodal = BimodalPredictor(entries)
        self._gshare = GSharePredictor(pht_entries=entries)
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"entries must be a power of two: {entries}")
        self._chooser = [2] * entries  # >=2 prefers gshare
        self._mask = entries - 1

    def predict(self, pc: int) -> bool:
        if self._chooser[(pc >> 2) & self._mask] >= 2:
            return self._gshare.predict(pc)
        return self._bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        index = (pc >> 2) & self._mask
        g_correct = self._gshare.predict(pc) == taken
        b_correct = self._bimodal.predict(pc) == taken
        if g_correct != b_correct:
            counter = self._chooser[index]
            if g_correct and counter < 3:
                self._chooser[index] = counter + 1
            elif b_correct and counter > 0:
                self._chooser[index] = counter - 1
        self._gshare.update(pc, taken)
        self._bimodal.update(pc, taken)


class GApPredictor(BranchPredictor):
    """GAp two-level predictor (Yeh & Patt taxonomy).

    An ``history_bits``-wide global history register is concatenated with
    low PC bits to index a pattern history table of 2-bit saturating
    counters.  The paper's configuration is 8 history bits and a
    4096-entry PHT (so 4 PC bits select the per-address column).

    The global history is updated speculatively at predict time in real
    front ends; here prediction and update happen at the same trace
    position, so updating at :meth:`update` is equivalent and simpler.
    """

    __slots__ = (
        "history_bits",
        "_history_mask",
        "_pc_bits",
        "_pc_mask",
        "_history",
        "_table",
    )

    def __init__(self, history_bits: int = 8, pht_entries: int = 4096):
        if history_bits <= 0:
            raise ValueError(f"history_bits must be positive: {history_bits}")
        if pht_entries <= 0 or pht_entries & (pht_entries - 1):
            raise ValueError(f"pht_entries must be a power of two: {pht_entries}")
        if pht_entries < (1 << history_bits):
            raise ValueError("PHT smaller than the history pattern space")
        self.history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._pc_bits = (pht_entries.bit_length() - 1) - history_bits
        self._pc_mask = (1 << self._pc_bits) - 1
        self._history = 0
        self._table = [2] * pht_entries  # weakly taken

    def _index(self, pc: int) -> int:
        pc_part = (pc >> 2) & self._pc_mask
        return (pc_part << self.history_bits) | self._history

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self._table[index]
        if taken:
            if counter < 3:
                self._table[index] = counter + 1
        elif counter > 0:
            self._table[index] = counter - 1
        self._history = ((self._history << 1) | (1 if taken else 0)) & self._history_mask
