"""Sampling windows: fit a billion-reference trace into the budget.

Reference traces captured from real programs are orders of magnitude
longer than the instruction budget a cycle-level run can afford, so the
ingestion frontend replays a *sample*: after skipping ``warmup``
records, the stream is divided into fixed-length windows and a
deterministic subset of them is measured.  The selected windows are
replayed in their original temporal order, concatenated into one
dynamic instruction stream.

:class:`WindowSpec` is the whole policy — four integers and a mode —
and it is part of the ingested workload's *name* (see
:mod:`repro.ingest.build`), so every cache in the system (result store,
artifact store, in-flight dedup) keys on it automatically:

* ``warmup`` — records dropped from the head of the stream before any
  window is considered (cold-start effects the paper's reference
  streams also discard);
* ``window`` — window length in records; ``0`` means a single window
  spanning everything after warmup (no sampling);
* ``count`` — number of windows kept; ``0`` keeps every selected one;
* ``select`` — ``"stride"`` keeps every ``stride``-th window from the
  first; ``"random"`` draws ``count`` distinct windows with a seeded
  :class:`~repro.caches.replacement.XorShift32` (same seed ⇒ same
  sample, bit-identical results on every engine path);
* only *complete* windows participate: a partial tail shorter than
  ``window`` is never selected, so the sample does not depend on how a
  capture run happened to end.

Selection is pure arithmetic over record indices — no trace content is
read — so callers can select first and stream-extract second.
"""

from __future__ import annotations

from dataclasses import dataclass
from urllib.parse import parse_qs

from repro.caches.replacement import XorShift32
from repro.ingest.format import IngestError

#: Window-selection modes.
SELECT_MODES = ("stride", "random")


@dataclass(frozen=True)
class WindowSpec:
    """Deterministic sampling policy for an ingested trace."""

    warmup: int = 0
    window: int = 0
    count: int = 0
    select: str = "stride"
    stride: int = 1
    seed: int = 0

    def __post_init__(self):
        if self.warmup < 0:
            raise IngestError(f"warmup must be non-negative: {self.warmup}")
        if self.window < 0:
            raise IngestError(f"window length must be non-negative: {self.window}")
        if self.count < 0:
            raise IngestError(f"window count must be non-negative: {self.count}")
        if self.select not in SELECT_MODES:
            raise IngestError(
                f"unknown window selection {self.select!r} "
                f"(expected one of {', '.join(SELECT_MODES)})"
            )
        if self.stride <= 0:
            raise IngestError(f"stride must be positive: {self.stride}")
        if self.seed < 0:
            raise IngestError(f"seed must be non-negative: {self.seed}")

    # -- canonical wire form -------------------------------------------------

    def query(self) -> str:
        """Canonical query-string form (fixed field order, all fields).

        This exact string is embedded in the ingested workload name, so
        two specs compare equal iff their queries compare equal.
        """
        return (
            f"w={self.warmup}&l={self.window}&c={self.count}"
            f"&m={self.select}&s={self.stride}&r={self.seed}"
        )

    @classmethod
    def from_query(cls, query: str) -> "WindowSpec":
        """Inverse of :meth:`query`."""
        fields = parse_qs(query, keep_blank_values=True)
        try:
            return cls(
                warmup=int(fields["w"][0]),
                window=int(fields["l"][0]),
                count=int(fields["c"][0]),
                select=fields["m"][0],
                stride=int(fields["s"][0]),
                seed=int(fields["r"][0]),
            )
        except (KeyError, ValueError, IndexError) as exc:
            raise IngestError(f"malformed window query {query!r}: {exc}") from exc

    def to_payload(self) -> dict:
        """JSON-friendly form (the ``EXTR`` section's window field)."""
        return {
            "warmup": self.warmup,
            "window": self.window,
            "count": self.count,
            "select": self.select,
            "stride": self.stride,
            "seed": self.seed,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "WindowSpec":
        return cls(**payload)

    # -- selection -----------------------------------------------------------

    def select_windows(self, total_records: int) -> "list[tuple[int, int]]":
        """Half-open ``(start, stop)`` record ranges to replay, in order.

        Pure arithmetic over ``total_records``; raises
        :class:`IngestError` when nothing survives (warmup swallows the
        stream, or the window length exceeds what remains).
        """
        usable = total_records - self.warmup
        if usable <= 0:
            raise IngestError(
                f"warmup of {self.warmup} records swallows the whole "
                f"{total_records}-record trace"
            )
        if self.window == 0:
            return [(self.warmup, total_records)]
        n_windows = usable // self.window
        if n_windows == 0:
            raise IngestError(
                f"window length {self.window} exceeds the {usable} records "
                f"left after warmup"
            )
        if self.select == "stride":
            chosen = list(range(0, n_windows, self.stride))
            if self.count:
                chosen = chosen[: self.count]
        else:
            want = min(self.count or n_windows, n_windows)
            # Partial Fisher-Yates over the window indices with the
            # seeded xorshift: deterministic sample without replacement.
            rng = XorShift32(((self.seed ^ 0x9E3779B9) & 0xFFFF_FFFF) or 1)
            pool = list(range(n_windows))
            for i in range(want):
                j = i + rng.below(n_windows - i)
                pool[i], pool[j] = pool[j], pool[i]
            # Temporal order is preserved: the sample is sorted so the
            # replayed stream never runs time backwards.
            chosen = sorted(pool[:want])
        return [
            (self.warmup + w * self.window, self.warmup + (w + 1) * self.window)
            for w in chosen
        ]

    def extract(self, records, total_records: int):
        """Yield the sampled records from the iterable ``records``.

        ``records`` is streamed exactly once (it need not be a list);
        ranges come from :meth:`select_windows` over ``total_records``.
        """
        ranges = self.select_windows(total_records)
        bounds = iter(ranges)
        current = next(bounds, None)
        for index, record in enumerate(records):
            if current is None:
                return
            start, stop = current
            if index < start:
                continue
            if index < stop:
                yield record
            if index >= stop - 1:
                current = next(bounds, None)
