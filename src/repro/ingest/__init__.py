"""Real-trace ingestion: external address traces as first-class workloads.

The ingestion frontend turns a captured address/instruction trace into
a workload the rest of the library treats exactly like a synthetic one:

1. **Convert** a capture (Valgrind ``lackey`` output, generic CSV) into
   the portable record stream (:mod:`repro.ingest.format`,
   :mod:`repro.ingest.convert`);
2. **Window** it — warmup skip plus deterministic stride/seeded-random
   sampling windows (:mod:`repro.ingest.window`);
3. **Compile** the sample into the engine's build products — a
   synthesized static program plus the verbatim-address dynamic stream
   (:mod:`repro.ingest.build`) — cached through the artifact store's
   ``EXTR`` tracefile section like every other build.

The handle for all of it is the *workload token*
``trace:<digest>:<path>?<window>`` minted by :func:`trace_workload`:
pass it (or ``--trace FILE`` on the CLIs) anywhere a workload name is
accepted — ``repro.eval``, ``--screen``, the serve daemon, the
differential checker — and every cache keys on trace content + window
policy automatically.  See ``docs/ingestion.md`` for the format
specification and a worked capture-to-figure example.
"""

from repro.ingest.build import (
    CompiledTrace,
    IngestSpec,
    add_trace_args,
    add_window_args,
    compile_workload,
    is_trace_workload,
    parse_workload,
    trace_workload,
    trace_workload_from_args,
    window_from_args,
)
from repro.ingest.convert import convert_csv, convert_lackey
from repro.ingest.format import (
    FORMAT_NAME,
    FORMAT_VERSION,
    IngestError,
    MEM_CLASSES,
    OP_CLASSES,
    TraceRecord,
    count_records,
    read_portable,
    source_digest,
    write_portable,
)
from repro.ingest.window import SELECT_MODES, WindowSpec

__all__ = [
    "CompiledTrace",
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "IngestError",
    "IngestSpec",
    "MEM_CLASSES",
    "OP_CLASSES",
    "SELECT_MODES",
    "TraceRecord",
    "WindowSpec",
    "add_trace_args",
    "add_window_args",
    "compile_workload",
    "convert_csv",
    "convert_lackey",
    "count_records",
    "is_trace_workload",
    "parse_workload",
    "read_portable",
    "source_digest",
    "trace_workload",
    "trace_workload_from_args",
    "window_from_args",
    "write_portable",
]
