"""The portable external-trace format: one record per memory reference.

External address/instruction traces enter the library through exactly
one documented representation so every converter targets it and every
downstream consumer (windowing, compilation, the artifact cache) reads
it.  A *portable trace* is a flat stream of :class:`TraceRecord`::

    (op, pc, ea, size)

* ``op`` — the reference class: ``"load"``, ``"store"``, ``"modify"``
  (an atomic read-modify-write, replayed as a store), ``"branch"``
  (a *taken* control transfer — a conditional branch that fell through
  is recorded as ``"other"`` at the same pc), ``"other"`` (any
  non-memory integer instruction), ``"fp"`` (non-memory floating-point)
  or ``"nop"``;
* ``pc`` — virtual address of the instruction (truncated to 32 bits at
  compile time; the simulated machine is 32-bit);
* ``ea`` — effective virtual address for ``load``/``store``/``modify``,
  ``None`` otherwise (required for memory classes);
* ``size`` — access size in bytes for memory classes, instruction
  length otherwise (informational; translation behaviour is
  address-granular).

An instruction that performs several memory references appears once per
reference (same ``pc``); an instruction with none appears exactly once.

Two serializations carry the stream, both optionally gzip-compressed
(any path ending in ``.gz`` is compressed transparently):

* **NDJSON** (``.ndjson[.gz]``) — a header line
  ``{"format": "repro-trace", "version": 1}`` followed by one JSON
  object per record: ``{"op": "load", "pc": 74565, "ea": 9645, "size":
  4}`` (``ea`` may be omitted for non-memory classes).  Line-oriented,
  greppable, diffable — the interchange default.
* **binary** (``.rptx[.gz]``) — header ``RPTX``, version, record
  count; then one packed 20-byte record per reference
  (``<QQHBx``: pc, ea+1 with 0 = none, size, op code).  ~5x smaller
  and ~10x faster to scan; use it for multi-million-reference streams.

Both forms stream: readers yield records one at a time and never
materialize the file, so window selection over huge traces stays
memory-flat.  Malformed input raises :class:`IngestError` with the
offending line/offset.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import struct
from pathlib import Path
from typing import IO, Iterable, Iterator, NamedTuple

#: Recognized record classes, in the binary format's code order.
OP_CLASSES = ("other", "load", "store", "modify", "branch", "fp", "nop")
_OP_CODE = {name: i for i, name in enumerate(OP_CLASSES)}
#: Classes that carry (and require) an effective address.
MEM_CLASSES = frozenset(("load", "store", "modify"))

FORMAT_NAME = "repro-trace"
FORMAT_VERSION = 1

_BIN_MAGIC = b"RPTX"
_BIN_HEADER = struct.Struct("<4sHxxQ")
_BIN_RECORD = struct.Struct("<QQHBx")


class IngestError(ValueError):
    """Raised for malformed external traces or invalid ingestion specs."""


class TraceRecord(NamedTuple):
    """One portable-trace record (see the module docstring)."""

    op: str
    pc: int
    ea: "int | None" = None
    size: int = 4

    def validate(self, where: str = "") -> "TraceRecord":
        """Check class/field consistency; returns self for chaining."""
        prefix = f"{where}: " if where else ""
        if self.op not in _OP_CODE:
            raise IngestError(
                f"{prefix}unknown op class {self.op!r} "
                f"(expected one of {', '.join(OP_CLASSES)})"
            )
        if self.pc < 0:
            raise IngestError(f"{prefix}negative pc {self.pc}")
        if self.op in MEM_CLASSES:
            if self.ea is None:
                raise IngestError(
                    f"{prefix}{self.op} record at pc {self.pc:#x} has no "
                    "effective address"
                )
            if self.ea < 0:
                raise IngestError(f"{prefix}negative effective address {self.ea}")
        if self.size < 0:
            raise IngestError(f"{prefix}negative size {self.size}")
        return self


def open_maybe_gzip(path: "str | Path", mode: str = "rb") -> IO:
    """Open ``path``, transparently un/compressing ``*.gz`` files."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode)
    return open(path, mode)


def source_digest(path: "str | Path") -> str:
    """SHA-256 of the file's raw bytes (compressed form for ``.gz``).

    This is the content identity of an external trace: it rides in the
    ingested workload's name (so result/artifact keys change when the
    file changes) and in the ``EXTR`` container section (so a hydrated
    build is verifiably the same source).
    """
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# NDJSON serialization.
# ---------------------------------------------------------------------------


def _looks_binary(path: "str | Path") -> bool:
    with open_maybe_gzip(path, "rb") as handle:
        return handle.read(4) == _BIN_MAGIC


def write_portable(
    path: "str | Path", records: Iterable[TraceRecord], binary: bool = False
) -> int:
    """Write a portable trace; returns the record count.

    ``binary`` selects the packed ``RPTX`` form; the default is NDJSON.
    A ``.gz`` suffix on ``path`` gzip-compresses either form.
    """
    if binary:
        return _write_binary(path, records)
    count = 0
    with open_maybe_gzip(path, "wt") as handle:
        handle.write(
            json.dumps(
                {"format": FORMAT_NAME, "version": FORMAT_VERSION},
                separators=(",", ":"),
            )
            + "\n"
        )
        for rec in records:
            rec.validate()
            payload: dict = {"op": rec.op, "pc": rec.pc}
            if rec.ea is not None:
                payload["ea"] = rec.ea
            payload["size"] = rec.size
            handle.write(json.dumps(payload, separators=(",", ":")) + "\n")
            count += 1
    return count


def _write_binary(path: "str | Path", records: Iterable[TraceRecord]) -> int:
    # The header carries the record count, so a one-pass write buffers
    # packed records and stamps the header last (still streaming per
    # record; only the packed bytes accumulate).
    packed = []
    for rec in records:
        rec.validate()
        ea1 = 0 if rec.ea is None else rec.ea + 1
        packed.append(
            _BIN_RECORD.pack(rec.pc, ea1, min(rec.size, 0xFFFF), _OP_CODE[rec.op])
        )
    with open_maybe_gzip(path, "wb") as handle:
        handle.write(_BIN_HEADER.pack(_BIN_MAGIC, FORMAT_VERSION, len(packed)))
        for chunk in packed:
            handle.write(chunk)
    return len(packed)


def read_portable(path: "str | Path") -> Iterator[TraceRecord]:
    """Stream the records of a portable trace (either serialization).

    The form is sniffed from the first bytes, so converters and callers
    never need to announce which one they wrote.
    """
    if _looks_binary(path):
        yield from _read_binary(path)
        return
    with open_maybe_gzip(path, "rt") as handle:
        header_line = handle.readline()
        try:
            header = json.loads(header_line)
        except ValueError as exc:
            raise IngestError(
                f"{path}: not a portable trace (bad header line: {exc})"
            ) from exc
        if not isinstance(header, dict) or header.get("format") != FORMAT_NAME:
            raise IngestError(
                f"{path}: not a portable trace (header {header_line.strip()!r})"
            )
        if header.get("version") != FORMAT_VERSION:
            raise IngestError(
                f"{path}: unsupported portable-trace version "
                f"{header.get('version')!r}"
            )
        for lineno, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                rec = TraceRecord(
                    op=payload["op"],
                    pc=int(payload["pc"]),
                    ea=None if payload.get("ea") is None else int(payload["ea"]),
                    size=int(payload.get("size", 4)),
                )
            except (ValueError, KeyError, TypeError) as exc:
                raise IngestError(f"{path}:{lineno}: malformed record: {exc}") from exc
            yield rec.validate(f"{path}:{lineno}")


def _read_binary(path: "str | Path") -> Iterator[TraceRecord]:
    with open_maybe_gzip(path, "rb") as handle:
        header = handle.read(_BIN_HEADER.size)
        if len(header) < _BIN_HEADER.size:
            raise IngestError(f"{path}: truncated binary-trace header")
        magic, version, count = _BIN_HEADER.unpack(header)
        if magic != _BIN_MAGIC:
            raise IngestError(f"{path}: bad binary-trace magic {magic!r}")
        if version != FORMAT_VERSION:
            raise IngestError(f"{path}: unsupported binary-trace version {version}")
        for i in range(count):
            raw = handle.read(_BIN_RECORD.size)
            if len(raw) < _BIN_RECORD.size:
                raise IngestError(
                    f"{path}: truncated at record {i} of {count}"
                )
            pc, ea1, size, code = _BIN_RECORD.unpack(raw)
            if code >= len(OP_CLASSES):
                raise IngestError(f"{path}: record {i} has unknown op code {code}")
            yield TraceRecord(
                op=OP_CLASSES[code],
                pc=pc,
                ea=None if ea1 == 0 else ea1 - 1,
                size=size,
            ).validate(f"{path}: record {i}")
        if handle.read(1):
            raise IngestError(f"{path}: trailing data after {count} records")


def count_records(path: "str | Path") -> int:
    """Number of records in a portable trace (one cheap streaming pass).

    The binary form answers from its header; NDJSON is line-counted
    without parsing record bodies.
    """
    if _looks_binary(path):
        with open_maybe_gzip(path, "rb") as handle:
            header = handle.read(_BIN_HEADER.size)
            if len(header) < _BIN_HEADER.size:
                raise IngestError(f"{path}: truncated binary-trace header")
            magic, version, count = _BIN_HEADER.unpack(header)
            if magic != _BIN_MAGIC:
                raise IngestError(f"{path}: bad binary-trace magic {magic!r}")
            if version != FORMAT_VERSION:
                raise IngestError(
                    f"{path}: unsupported binary-trace version {version}"
                )
            return count
    count = 0
    with open_maybe_gzip(path, "rt") as handle:
        handle.readline()  # header (validated by read_portable when replayed)
        for line in handle:
            if line.strip():
                count += 1
    return count
