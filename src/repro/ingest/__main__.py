"""Command-line ingestion tools: ``python -m repro.ingest <command>``.

* ``convert`` — turn a capture (lackey log or CSV) into a portable
  trace file;
* ``inspect`` — summarize a portable trace (record counts by class,
  address footprint, window preview for a given spec);
* ``compile`` — compile a windowed sample into engine build products
  and report the synthesized program's shape; with ``--artifacts`` the
  build is stored through the artifact cache so later ``repro.eval``
  runs over the same token hydrate instead of recompiling.

Every command streams, so multi-gigabyte captures are fine.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.ingest.build import (
    add_window_args,
    compile_workload,
    parse_workload,
    trace_workload,
    window_from_args,
)
from repro.ingest.convert import convert_csv, convert_lackey
from repro.ingest.format import (
    IngestError,
    MEM_CLASSES,
    count_records,
    read_portable,
    write_portable,
)


def _cmd_convert(args) -> int:
    if args.input_format == "lackey":
        records = convert_lackey(args.input)
    else:
        records = convert_csv(args.input)
    count = write_portable(args.output, records, binary=args.binary)
    form = "binary" if args.binary else "ndjson"
    print(f"wrote {count} records to {args.output} ({form})")
    return 0


def _cmd_inspect(args) -> int:
    total = count_records(args.input)
    by_class: "dict[str, int]" = {}
    pages = set()
    code_pages = set()
    for rec in read_portable(args.input):
        by_class[rec.op] = by_class.get(rec.op, 0) + 1
        code_pages.add(rec.pc >> 12)
        if rec.op in MEM_CLASSES:
            pages.add(rec.ea >> 12)
    summary = {
        "records": total,
        "by_class": dict(sorted(by_class.items())),
        "code_pages_4k": len(code_pages),
        "data_pages_4k": len(pages),
    }
    window = window_from_args(args)
    try:
        ranges = window.select_windows(total)
        summary["window"] = {
            "spec": window.query(),
            "windows": len(ranges),
            "sampled_records": sum(stop - start for start, stop in ranges),
        }
    except IngestError as exc:
        summary["window"] = {"spec": window.query(), "error": str(exc)}
    print(json.dumps(summary, indent=2))
    return 0


def _cmd_compile(args) -> int:
    token = trace_workload(args.input, window_from_args(args))
    compiled = compile_workload(
        token,
        int_regs=args.int_regs,
        fp_regs=args.fp_regs,
        max_instructions=args.max_instructions,
    )
    if args.artifacts:
        from repro.eval.artifacts import ArtifactStore

        store = ArtifactStore(Path(args.artifacts))
        spec = parse_workload(token)
        store.save_ingested(
            {
                "workload": token,
                "int_regs": args.int_regs,
                "fp_regs": args.fp_regs,
                "max_instructions": args.max_instructions,
            },
            compiled.program,
            compiled.trace,
            compiled.meta,
        )
        print(f"stored ingested build for {spec.display} in {args.artifacts}")
    print(
        json.dumps(
            {
                "workload": token,
                "records": compiled.meta["records"],
                "static_slots": compiled.meta["static_slots"],
                "source_records": compiled.meta["source_records"],
                "truncated": compiled.meta["truncated"],
            },
            indent=2,
        )
    )
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.ingest",
        description="convert, inspect and compile external address traces",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    convert = sub.add_parser("convert", help="capture file -> portable trace")
    convert.add_argument("input", help="capture file (.gz transparently)")
    convert.add_argument("output", help="portable trace to write")
    convert.add_argument(
        "--from",
        dest="input_format",
        choices=("lackey", "csv"),
        default="lackey",
        help="capture format (default lackey)",
    )
    convert.add_argument(
        "--binary",
        action="store_true",
        help="write the packed RPTX form instead of NDJSON",
    )
    convert.set_defaults(func=_cmd_convert)

    inspect = sub.add_parser("inspect", help="summarize a portable trace")
    inspect.add_argument("input", help="portable trace file")
    add_window_args(inspect)
    inspect.set_defaults(func=_cmd_inspect)

    compile_ = sub.add_parser(
        "compile", help="compile a windowed sample into build products"
    )
    compile_.add_argument("input", help="portable trace file")
    compile_.add_argument("--int-regs", type=int, default=32)
    compile_.add_argument("--fp-regs", type=int, default=32)
    compile_.add_argument(
        "--max-instructions",
        type=int,
        default=None,
        help="truncate the sample to this many records",
    )
    compile_.add_argument(
        "--artifacts",
        default=None,
        metavar="DIR",
        help="store the compiled build in this artifact cache",
    )
    add_window_args(compile_)
    compile_.set_defaults(func=_cmd_compile)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except IngestError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
