"""Converters from captured trace formats to the portable stream.

Two front doors cover the common capture paths:

* :func:`convert_lackey` — the output of Valgrind's bundled ``lackey``
  tool (``valgrind --tool=lackey --trace-mem=yes ./prog``), the easiest
  real-program capture available on a stock Linux box;
* :func:`convert_csv` — a four-column escape hatch
  (``op,pc,ea,size``) for anything else: a custom Pin tool, a
  QEMU plugin, a spreadsheet of hand-written references.

Both stream line-by-line (arbitrarily long captures, flat memory),
transparently read ``.gz`` inputs, validate as they go and report
malformed lines with file:line positions.

Lackey's dialect, for reference::

    ==12345== Memcheck banner lines (ignored)
    I  0023C790,2            # instruction fetch at pc, length
     L 04EFF8A8,8            # data load  (leading space)
     S 04EFF8A0,4            # data store
     M 0425D490,1            # modify (read-modify-write)

Memory lines describe data references of the most recent ``I`` line's
instruction, so the converter emits one portable record per memory line
(class ``load``/``store``/``modify``) carrying that instruction's pc,
and one ``other`` record for each instruction with no memory lines.
Lackey does not mark control transfers, so the converter infers them
from the fetch stream: an instruction whose successor pc is not the
fall-through (``pc + length``) was a taken transfer and is emitted as
class ``branch``.  Not-taken branches are indistinguishable from ALU
instructions in a fetch trace and land in ``other`` — exactly the
information a pc/ea capture can honestly provide, and enough for the
compiled replay to synthesize conditional branches per static pc (see
:mod:`repro.ingest.build`).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.ingest.format import (
    IngestError,
    OP_CLASSES,
    TraceRecord,
    open_maybe_gzip,
)

#: Memory-line markers in lackey output mapped to portable classes.
_LACKEY_MEM = {"L": "load", "S": "store", "M": "modify"}


def _parse_hex_pair(body: str, where: str) -> "tuple[int, int]":
    """Parse lackey's ``ADDR,SIZE`` payload (both may be hex or decimal)."""
    addr_text, sep, size_text = body.partition(",")
    if not sep:
        raise IngestError(f"{where}: expected 'addr,size', got {body!r}")
    try:
        return int(addr_text, 16), int(size_text, 0)
    except ValueError as exc:
        raise IngestError(f"{where}: malformed address pair {body!r}") from exc


def convert_lackey(path: "str | Path") -> Iterator[TraceRecord]:
    """Stream portable records from a Valgrind lackey ``--trace-mem`` log.

    One record per data reference, plus one ``other``/``branch`` record
    per instruction without data references; taken control transfers
    are inferred from fetch discontinuities (see the module docstring).
    """
    # One instruction is held back until its successor's pc is known
    # (branch inference needs the fetch discontinuity); its memory
    # records were already classified and just wait to be flushed.
    pending: "list[TraceRecord]" = []
    pending_pc = pending_len = None
    pending_where = ""

    def flush(next_pc: "int | None") -> Iterator[TraceRecord]:
        if pending_pc is None:
            return
        if pending:
            yield from pending
        else:
            taken = next_pc is not None and next_pc != pending_pc + pending_len
            yield TraceRecord(
                op="branch" if taken else "other",
                pc=pending_pc,
                size=pending_len,
            ).validate(pending_where)

    with open_maybe_gzip(path, "rt") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.rstrip("\n")
            if not line.strip() or line.startswith("=="):
                continue  # valgrind banner / blank
            where = f"{path}:{lineno}"
            marker = line[0]
            if marker == "I":
                pc, length = _parse_hex_pair(line[1:].strip(), where)
                yield from flush(pc)
                pending = []
                pending_pc, pending_len = pc, length
                pending_where = where
            elif marker == " " and len(line) > 2 and line[1] in _LACKEY_MEM:
                if pending_pc is None:
                    raise IngestError(
                        f"{where}: memory reference before any instruction line"
                    )
                ea, size = _parse_hex_pair(line[2:].strip(), where)
                pending.append(
                    TraceRecord(
                        op=_LACKEY_MEM[line[1]], pc=pending_pc, ea=ea, size=size
                    ).validate(where)
                )
            else:
                raise IngestError(f"{where}: unrecognized lackey line {line!r}")
        yield from flush(None)


def convert_csv(path: "str | Path", header: "bool | None" = None) -> Iterator[TraceRecord]:
    """Stream portable records from ``op,pc,ea,size`` CSV.

    * ``op`` — any portable class name (case-insensitive);
    * ``pc``/``ea`` — hex (``0x...``) or decimal; ``ea`` empty or ``-``
      for non-memory classes;
    * ``size`` — optional, defaults to 4.

    ``header=None`` (the default) auto-detects a header row by whether
    the first cell names a known op class.
    """
    first_data = True
    with open_maybe_gzip(path, "rt") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            cells = [cell.strip() for cell in line.split(",")]
            if first_data:
                if header is None:
                    header = cells[0].lower() not in OP_CLASSES
                first_data = False
                if header:
                    continue
            where = f"{path}:{lineno}"
            if len(cells) < 2:
                raise IngestError(f"{where}: expected op,pc[,ea[,size]]")
            op = cells[0].lower()
            try:
                pc = int(cells[1], 0)
                ea_text = cells[2] if len(cells) > 2 else ""
                ea = None if ea_text in ("", "-") else int(ea_text, 0)
                size = int(cells[3], 0) if len(cells) > 3 and cells[3] else 4
            except ValueError as exc:
                raise IngestError(f"{where}: malformed field: {exc}") from exc
            yield TraceRecord(op=op, pc=pc, ea=ea, size=size).validate(where)
