"""Functional-unit pool scheduling.

Each unit class has a number of units, a result latency, and an issue
interval (how long an issue occupies a unit).  Fully-pipelined units have
interval 1; the divide units occupy their unit for the full operation
(interval == latency), matching Table 1's ``DIV-12/12``.
"""

from __future__ import annotations

from repro.engine.config import MachineConfig
from repro.isa.opcodes import Op, OpClass

#: OpClass -> functional-unit class name.
_UNIT_OF_CLASS = {
    OpClass.IALU: "ialu",
    OpClass.BRANCH: "ialu",
    OpClass.JUMP: "ialu",
    OpClass.NOP: "ialu",
    OpClass.HALT: "ialu",
    OpClass.LOAD: "ldst",
    OpClass.STORE: "ldst",
    OpClass.FPADD: "fpadd",
    OpClass.IMULT: "imuldiv",
    OpClass.IDIV: "imuldiv",
    OpClass.FPMULT: "fpmuldiv",
    OpClass.FPDIV: "fpmuldiv",
}

#: "No busy unit pending" sentinel for :meth:`~FunctionalUnitPool.next_busy_release`.
_NEVER = 1 << 62


class FunctionalUnitPool:
    """Tracks per-unit busy times and answers issue queries."""

    __slots__ = ("_free_at", "_latency", "_interval", "_div_latency")

    def __init__(self, config: MachineConfig):
        self._free_at: dict[str, list[int]] = {
            name: [0] * spec.units for name, spec in config.fu_specs.items()
        }
        self._latency: dict[str, int] = {
            name: spec.latency for name, spec in config.fu_specs.items()
        }
        self._interval: dict[str, int] = {
            name: spec.interval for name, spec in config.fu_specs.items()
        }
        self._div_latency = {
            "idiv": config.int_div_latency,
            "fpdiv": config.fp_div_latency,
        }

    @staticmethod
    def unit_class(op_class: OpClass) -> str:
        """Functional-unit class name for an opcode class."""
        return _UNIT_OF_CLASS[op_class]

    def latency_of(self, op_class: OpClass) -> int:
        """Result latency of an operation."""
        if op_class is OpClass.IDIV:
            return self._div_latency["idiv"]
        if op_class is OpClass.FPDIV:
            return self._div_latency["fpdiv"]
        return self._latency[_UNIT_OF_CLASS[op_class]]

    def next_busy_release(self, now: int) -> int:
        """Earliest cycle after ``now`` at which any busy unit frees up.

        The event-driven engine uses this as the next structural-hazard
        event; only the divide units (interval == latency) can actually
        stay busy past the issue cycle, so the scan is short.
        """
        best = _NEVER
        for free_at in self._free_at.values():
            for cycle in free_at:
                if now < cycle < best:
                    best = cycle
        return best

    def class_map(self) -> dict[OpClass, tuple[list[int], int, int]]:
        """Per-opclass ``(free_at, busy, latency)`` scheduling triples.

        The ``free_at`` lists are the pool's *live* internal state (not
        copies): a caller that finds ``free_at[i] <= now`` may occupy
        the unit by writing ``free_at[i] = now + busy`` — exactly what
        :meth:`issue` does, minus the per-call dict/enum lookups.  The
        machine caches one triple per window entry at dispatch so the
        issue loop's structural-hazard check is pure list traversal.
        """
        out: dict[OpClass, tuple[list[int], int, int]] = {}
        for op_class, name in _UNIT_OF_CLASS.items():
            if op_class is OpClass.IDIV:
                busy = latency = self._div_latency["idiv"]
            elif op_class is OpClass.FPDIV:
                busy = latency = self._div_latency["fpdiv"]
            else:
                busy, latency = self._interval[name], self._latency[name]
            out[op_class] = (self._free_at[name], busy, latency)
        return out

    def can_issue(self, op_class: OpClass, now: int) -> bool:
        """True if a unit of the required class is free this cycle."""
        free_at = self._free_at[_UNIT_OF_CLASS[op_class]]
        return any(cycle <= now for cycle in free_at)

    def issue(self, op_class: OpClass, now: int) -> int:
        """Occupy a unit; returns the result-ready cycle.

        Raises :class:`RuntimeError` if no unit is free (callers must
        check :meth:`can_issue` first).
        """
        name = _UNIT_OF_CLASS[op_class]
        free_at = self._free_at[name]
        for i, cycle in enumerate(free_at):
            if cycle <= now:
                if op_class is OpClass.IDIV:
                    busy, latency = self._div_latency["idiv"], self._div_latency["idiv"]
                elif op_class is OpClass.FPDIV:
                    busy, latency = self._div_latency["fpdiv"], self._div_latency["fpdiv"]
                else:
                    busy, latency = self._interval[name], self._latency[name]
                free_at[i] = now + busy
                return now + latency
        raise RuntimeError(f"no free {name} unit at cycle {now}")
