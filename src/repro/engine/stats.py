"""Machine-level statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.caches.cache import CacheStats
from repro.tlb.stats import TranslationStats


@dataclass
class MachineStats:
    """Counters accumulated over one timing simulation.

    Derived-rate properties (``commit_ipc``, ``issue_ipc``,
    ``branch_prediction_rate``, ``mem_refs_per_cycle``) are total
    functions: a run that retires zero instructions, executes zero
    cycles, or contains zero branches — e.g. a zero-length trace —
    yields ``0.0``, never a ``ZeroDivisionError``.  Regression tests in
    ``tests/test_stats.py`` pin this contract.
    """

    cycles: int = 0
    committed: int = 0
    issued: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    mispredicts: int = 0
    #: Dynamic unconditional jumps (always predicted in this model).
    jumps: int = 0
    #: Base-TLB miss services performed (each costs 30 cycles + ordering).
    tlb_miss_services: int = 0
    #: Cycles in which dispatch was blocked by a pending TLB miss.
    tlb_dispatch_stall_cycles: int = 0
    #: Cycles in which the front end was blocked (mispredict or I-miss).
    frontend_stall_cycles: int = 0
    #: Loads satisfied by store-to-load forwarding from the store queue.
    forwarded_loads: int = 0
    #: Instruction-side micro-TLB misses (when model_itlb is enabled).
    itlb_misses: int = 0
    #: Context-switch flushes applied (context_switch_interval > 0).
    context_switches: int = 0
    #: Histogram: simultaneous translation requests per cycle -> cycles.
    translation_demand: dict = field(default_factory=dict)
    icache: CacheStats = field(default_factory=CacheStats)
    dcache: CacheStats = field(default_factory=CacheStats)
    translation: TranslationStats = field(default_factory=TranslationStats)

    @property
    def commit_ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def issue_ipc(self) -> float:
        """Issued operations per cycle, *including* wrong-path issues.

        With wrong-path modelling enabled (the default, as in the
        paper's execution-driven simulator) this exceeds commit IPC on
        branchy programs; with ``model_wrong_path=False`` the two are
        equal.
        """
        return self.issued / self.cycles if self.cycles else 0.0

    @property
    def branch_prediction_rate(self) -> float:
        """Fraction of conditional branches predicted correctly."""
        if not self.branches:
            return 0.0
        return 1.0 - self.mispredicts / self.branches

    @property
    def mem_refs_per_cycle(self) -> float:
        """Loads+stores committed per cycle."""
        return (self.loads + self.stores) / self.cycles if self.cycles else 0.0
