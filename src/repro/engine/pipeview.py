"""Pipeline event tracing and ASCII pipeline diagrams.

Wraps a :class:`~repro.engine.machine.Machine` run and records, per
dynamic instruction, the cycles at which it was dispatched, issued,
completed, and committed — then renders the classic pipeline diagram
(one row per instruction, one column per cycle).  Useful for verifying
timing behaviour by eye and in tests, e.g. *seeing* four loads stall on
a single-ported TLB.

Example::

    view = PipelineTrace.capture(config, mechanism, trace, limit=40)
    print(view.render())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.engine.config import MachineConfig
from repro.engine.machine import Machine, SimulationResult
from repro.func.dyninst import DynInst
from repro.tlb.base import TranslationMechanism


@dataclass
class InstTimeline:
    """Stage timestamps of one dynamic instruction."""

    seq: int
    text: str
    dispatch: int = -1
    issue: int = -1
    complete: int = -1
    commit: int = -1


class _TracingMachine(Machine):
    """Machine subclass that records stage events for the first N insts."""

    def __init__(self, *args, limit: int = 64, **kwargs):
        super().__init__(*args, **kwargs)
        self._limit = limit
        self.timelines: dict[int, InstTimeline] = {}

    def _dispatch(self, now: int) -> bool:
        before = {infl.seq for infl in self._window}
        did_work = super()._dispatch(now)
        for infl in self._window:
            if infl.seq in before or infl.seq >= self._limit:
                continue
            self.timelines[infl.seq] = InstTimeline(
                seq=infl.seq, text=str(infl.dyn.decoded.inst), dispatch=now
            )
        return did_work

    def _do_issue(self, infl, now: int) -> None:
        super()._do_issue(infl, now)
        timeline = self.timelines.get(infl.seq)
        if timeline is not None:
            timeline.issue = now

    def _commit(self, now: int) -> int:
        live_before = list(self._window)
        count = super()._commit(now)
        still = {infl.seq for infl in self._window}
        for infl in live_before:
            if infl.seq in still:
                break
            timeline = self.timelines.get(infl.seq)
            if timeline is not None:
                timeline.commit = now
                timeline.complete = infl.complete if infl.complete is not None else now
        return count


@dataclass
class PipelineTrace:
    """Captured stage timelines plus the run's result."""

    timelines: list[InstTimeline]
    result: SimulationResult

    @classmethod
    def capture(
        cls,
        config: MachineConfig,
        mechanism: TranslationMechanism,
        trace: Iterator[DynInst],
        limit: int = 64,
    ) -> "PipelineTrace":
        """Run the machine, recording the first ``limit`` instructions."""
        machine = _TracingMachine(config, mechanism, trace, limit=limit)
        result = machine.run()
        ordered = [machine.timelines[k] for k in sorted(machine.timelines)]
        return cls(timelines=ordered, result=result)

    def render(self, max_cycles: int = 90) -> str:
        """ASCII pipeline diagram: D=dispatch, I=issue, C=complete, R=retire."""
        if not self.timelines:
            return "(no instructions captured)"
        start = min(t.dispatch for t in self.timelines if t.dispatch >= 0)
        lines = []
        width = max(len(t.text) for t in self.timelines)
        for t in self.timelines:
            end = max(t.commit, t.complete, t.issue, t.dispatch)
            row = []
            for cycle in range(start, min(start + max_cycles, end + 1)):
                if cycle == t.commit:
                    mark = "R"
                elif cycle == t.complete:
                    mark = "C"
                elif cycle == t.issue:
                    mark = "I"
                elif cycle == t.dispatch:
                    mark = "D"
                else:
                    mark = "."
                row.append(mark)
            lines.append(f"{t.seq:4d} {t.text:<{width}s} |{''.join(row)}")
        header = f"     {'(cycle ->)':<{width}s} |{start}"
        return "\n".join([header, *lines])

    def of(self, seq: int) -> InstTimeline:
        """Timeline of one instruction (by dynamic sequence number)."""
        for t in self.timelines:
            if t.seq == seq:
                return t
        raise KeyError(f"instruction #{seq} was not captured")
