"""Fetch front end: I-cache, collapsing buffer, branch prediction.

Implements the paper's fetch interface: up to eight instructions per
cycle, all within one 32-byte instruction-cache block, with up to two
control-transfer predictions per cycle (the limited collapsing-buffer
variant of [CMMP95] the authors added after finding fetch bandwidth to
be a bottleneck).  Predicted-taken branches whose target lies in the
same cache block keep the group going; cross-block targets end it (the
next group starts at the target next cycle, without penalty).

Direction mispredictions end the group and block the front end until the
branch resolves plus the 3-cycle misprediction penalty.  Unconditional
jumps and returns are assumed target-predicted (ideal BTB/RAS); see
DESIGN.md §1.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.branch.predictors import BranchPredictor
from repro.caches.cache import SetAssocCache
from repro.engine.config import MachineConfig
from repro.engine.stats import MachineStats
from repro.func.dyninst import DynInst
from repro.tlb.storage import FullyAssocTLB


class FetchGroup:
    """One cycle's worth of fetched instructions."""

    __slots__ = ("insts", "mispredicted_tail")

    def __init__(self, insts: list[DynInst], mispredicted_tail: bool):
        #: Instructions fetched this cycle, in program order.
        self.insts = insts
        #: True when the last instruction is a mispredicted branch: the
        #: machine must block the front end until it resolves.
        self.mispredicted_tail = mispredicted_tail


class FrontEnd:
    """Produces fetch groups from the dynamic instruction stream."""

    def __init__(
        self,
        trace: Iterator[DynInst],
        config: MachineConfig,
        predictor: BranchPredictor,
        icache: SetAssocCache,
        stats: MachineStats,
    ):
        self._trace = trace
        self._config = config
        self._predictor = predictor
        self._icache = icache
        self._stats = stats
        self._buffer: deque[DynInst] = deque()
        self._trace_done = False
        self._block_shift = config.icache_block.bit_length() - 1
        # Optional instruction-side micro-TLB: a fetch block on an
        # untranslated page stalls the front end for a walk.
        self._itlb = (
            FullyAssocTLB(config.itlb_entries, replacement="lru")
            if config.model_itlb
            else None
        )
        self._page_shift = config.page_shift
        #: Front end may not fetch again before this cycle (I-miss stall).
        self.blocked_until = 0
        #: Cycle at which fetch resumes after a mispredict (None = not
        #: blocked).  Set by the machine once the branch resolves.
        self.resume_cycle: int | None = None
        #: True while blocked on an unresolved mispredicted branch.
        self.waiting_on_branch = False

    # -- trace buffering -------------------------------------------------------

    def _ensure(self, count: int) -> bool:
        """Buffer at least ``count`` instructions; False when exhausted."""
        while len(self._buffer) < count and not self._trace_done:
            try:
                self._buffer.append(next(self._trace))
            except StopIteration:
                self._trace_done = True
        return len(self._buffer) >= count

    def exhausted(self) -> bool:
        """True when no instructions remain to fetch."""
        return not self._ensure(1)

    # -- misprediction control ----------------------------------------------------

    def block_for_branch(self) -> None:
        """Stall until :meth:`resolve_branch` supplies the resume cycle."""
        self.waiting_on_branch = True
        self.resume_cycle = None

    def resolve_branch(self, resume_cycle: int) -> None:
        """The mispredicted branch resolved; fetch resumes then."""
        self.resume_cycle = resume_cycle

    # -- fetch -------------------------------------------------------------------------

    def fetch_group(self, now: int) -> FetchGroup | None:
        """Fetch this cycle's group, or ``None`` when stalled/empty."""
        if self.waiting_on_branch:
            if self.resume_cycle is None or now < self.resume_cycle:
                self._stats.frontend_stall_cycles += 1
                return None
            self.waiting_on_branch = False
            self.resume_cycle = None
        if now < self.blocked_until:
            self._stats.frontend_stall_cycles += 1
            return None
        if not self._ensure(1):
            return None

        first = self._buffer[0]
        if self._itlb is not None:
            vpn = first.pc >> self._page_shift
            if not self._itlb.probe(vpn):
                self._itlb.insert(vpn)
                self._stats.itlb_misses += 1
                self.blocked_until = now + self._config.tlb_miss_latency
                self._stats.frontend_stall_cycles += 1
                return None
        hit = self._icache.access(first.pc)
        if not hit:
            self.blocked_until = now + self._config.icache_miss_latency
            self._stats.frontend_stall_cycles += 1
            return None

        block = first.pc >> self._block_shift
        group: list[DynInst] = []
        predictions = 0
        mispredicted = False
        while len(group) < self._config.fetch_width and self._ensure(1):
            dyn = self._buffer[0]
            if (dyn.pc >> self._block_shift) != block:
                break
            self._buffer.popleft()
            group.append(dyn)
            dec = dyn.decoded
            if not dec.is_control:
                continue
            predictions += 1
            if dec.is_branch:
                self._stats.branches += 1
                predicted = self._predictor.predict(dyn.pc)
                self._predictor.update(dyn.pc, dyn.taken)
                if predicted != dyn.taken:
                    self._stats.mispredicts += 1
                    mispredicted = True
                    break
            else:
                self._stats.jumps += 1
            if dyn.taken:
                # Taken transfer: only an intra-block target lets the
                # collapsing buffer keep fetching this cycle.
                if not self._ensure(1):
                    break
                if (self._buffer[0].pc >> self._block_shift) != block:
                    break
            if predictions >= self._config.predictions_per_cycle:
                break
        return FetchGroup(group, mispredicted)
