"""Fetch front end: I-cache, collapsing buffer, branch prediction.

Implements the paper's fetch interface: up to eight instructions per
cycle, all within one 32-byte instruction-cache block, with up to two
control-transfer predictions per cycle (the limited collapsing-buffer
variant of [CMMP95] the authors added after finding fetch bandwidth to
be a bottleneck).  Predicted-taken branches whose target lies in the
same cache block keep the group going; cross-block targets end it (the
next group starts at the target next cycle, without penalty).

Direction mispredictions end the group and block the front end until the
branch resolves plus the 3-cycle misprediction penalty.  Unconditional
jumps and returns are assumed target-predicted (ideal BTB/RAS); see
DESIGN.md §1.

The front end's *observable* behavior is time-invariant: whether a
probe attempt misses the I-cache or I-TLB, what the predictor says, and
which instructions group together depend only on the instruction
sequence and the front-end geometry — never on the cycle at which the
attempt happens (stall cycles return before probing, and nothing
outside fetch touches the I-cache, I-TLB, or predictor).  Fetch is
therefore split in two: :func:`build_fetch_plan` runs the probe loop
once and records the outcome stream as a :class:`FetchPlan`, and
:class:`FrontEnd` replays that stream under the run-time stall rules.
A plan built for one trace and front-end configuration can be shared
across runs — the paper grids evaluate thirteen translation designs
over the same workload, and twelve of them fetch for free (see
:func:`repro.eval.runner.simulate`).
"""

from __future__ import annotations

import struct
from typing import Iterable

from repro.branch.predictors import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    BranchPredictor,
    GApPredictor,
    GSharePredictor,
    TournamentPredictor,
)
from repro.caches.cache import CacheStats, SetAssocCache
from repro.engine.config import MachineConfig
from repro.engine.stats import MachineStats
from repro.func.dyninst import DynInst
from repro.func.tracefile import TraceFileError
from repro.tlb.storage import FullyAssocTLB

#: FetchPlan event markers for the two kinds of missing probe attempt;
#: every other event is a ``(FetchGroup, branches, jumps)`` tuple.
_IMISS = 0
_ITLB_MISS = 1


def make_predictor(config: MachineConfig) -> BranchPredictor:
    """Instantiate the configured direction predictor."""
    if config.predictor == "gap":
        return GApPredictor(
            config.predictor_history_bits, config.predictor_pht_entries
        )
    if config.predictor == "gshare":
        return GSharePredictor(pht_entries=config.predictor_pht_entries)
    if config.predictor == "bimodal":
        return BimodalPredictor(config.predictor_pht_entries)
    if config.predictor == "tournament":
        return TournamentPredictor(config.predictor_pht_entries)
    return AlwaysTakenPredictor()


class FetchGroup:
    """One cycle's worth of fetched instructions."""

    __slots__ = ("insts", "mispredicted_tail")

    def __init__(self, insts: list[DynInst], mispredicted_tail: bool):
        #: Instructions fetched this cycle, in program order.
        self.insts = insts
        #: True when the last instruction is a mispredicted branch: the
        #: machine must block the front end until it resolves.
        self.mispredicted_tail = mispredicted_tail


class FetchPlan:
    """The precomputed probe-attempt stream of one trace.

    ``events`` holds, in order, the outcome of every fetch attempt that
    reaches the probes: :data:`_IMISS` / :data:`_ITLB_MISS` markers for
    attempts that stall on a fill, and ``(group, branches, jumps)``
    tuples for attempts that deliver a group (``branches``/``jumps``
    are that group's control-transfer counts, charged on delivery).
    The replay consumes exactly one event per probe-reaching attempt,
    so the stream encodes the retry behavior too: a miss event is
    followed by the same block's hit attempt, just as the blocked
    front end would retry it cycles later.
    """

    __slots__ = ("events", "icache_stats", "kernel_events")

    def __init__(self, events: list, icache_stats):
        self.events = events
        #: Final I-cache counters (:class:`~repro.caches.cache.CacheStats`)
        #: — identical for every run that replays this plan.
        self.icache_stats = icache_stats
        #: Lazily-built flat event arrays for the compiled kernel's
        #: fetch replay (see :func:`repro.kernel.machine._plan_arrays`);
        #: cached here so runs sharing the plan convert it once.
        self.kernel_events = None


def build_fetch_plan(
    trace: Iterable[DynInst],
    config: MachineConfig,
    predictor: BranchPredictor | None = None,
    icache: SetAssocCache | None = None,
) -> FetchPlan:
    """Run the fetch probe loop over a whole trace, recording outcomes.

    ``predictor`` and ``icache`` default to fresh instances built from
    ``config``; passing them in lets a caller observe their final state
    (the front-end unit tests do).
    """
    insts = trace if isinstance(trace, list) else list(trace)
    if predictor is None:
        predictor = make_predictor(config)
    if icache is None:
        icache = SetAssocCache(
            config.icache_size, config.icache_assoc, config.icache_block
        )
    itlb = (
        FullyAssocTLB(config.itlb_entries, replacement="lru")
        if config.model_itlb
        else None
    )
    page_shift = config.page_shift
    shift = config.icache_block.bit_length() - 1
    width = config.fetch_width
    max_predictions = config.predictions_per_cycle
    icache_access = icache.access
    events: list = []
    add_event = events.append
    idx = 0
    n = len(insts)
    while idx < n:
        first = insts[idx]
        if itlb is not None:
            vpn = first.pc >> page_shift
            if not itlb.probe(vpn):
                itlb.insert(vpn)
                add_event(_ITLB_MISS)
                # The blocked front end re-probes on its next attempt
                # (an I-TLB hit now): loop without advancing.
                continue
        if not icache_access(first.pc):
            add_event(_IMISS)
            continue
        block = first.pc >> shift
        group: list[DynInst] = []
        append = group.append
        predictions = 0
        count = 0
        branches = 0
        jumps = 0
        mispredicted = False
        while count < width and idx < n:
            dyn = insts[idx]
            if (dyn.pc >> shift) != block:
                break
            idx += 1
            count += 1
            append(dyn)
            dec = dyn.decoded
            if not dec.is_control:
                continue
            predictions += 1
            if dec.is_branch:
                branches += 1
                predicted = predictor.predict(dyn.pc)
                predictor.update(dyn.pc, dyn.taken)
                if predicted != dyn.taken:
                    mispredicted = True
                    break
            else:
                jumps += 1
            if dyn.taken:
                # Taken transfer: only an intra-block target lets the
                # collapsing buffer keep fetching this cycle.
                if idx >= n or (insts[idx].pc >> shift) != block:
                    break
            if predictions >= max_predictions:
                break
        add_event((FetchGroup(group, mispredicted), branches, jumps))
    return FetchPlan(events, icache.stats)


#: The MachineConfig fields the fetch probes observe.  Two configs that
#: agree on these produce identical fetch plans for the same trace, so
#: this tuple is the sharing/caching key of the plan caches (the
#: in-process LRU in :mod:`repro.eval.runner` and the on-disk
#: :mod:`repro.eval.artifacts` store).
FETCH_CONFIG_FIELDS: tuple[str, ...] = (
    "icache_size",
    "icache_assoc",
    "icache_block",
    "predictor",
    "predictor_history_bits",
    "predictor_pht_entries",
    "fetch_width",
    "predictions_per_cycle",
    "model_itlb",
    "itlb_entries",
    "page_shift",
)


def fetch_config_key(config: MachineConfig) -> tuple:
    """The front-end slice of ``config`` (JSON-serializable value tuple)."""
    return tuple(getattr(config, name) for name in FETCH_CONFIG_FIELDS)


# ---------------------------------------------------------------------------
# FetchPlan (de)serialization.
#
# build_fetch_plan consumes the trace strictly in order: every group is a
# non-empty *consecutive slice* of the trace, and the groups partition it
# exactly.  A plan therefore serializes without repeating the instructions
# — one fixed-size record per event (miss markers carry no payload, group
# events carry their length and control-transfer summary) — and
# deserializes by re-slicing the hydrated trace.  The payload travels in
# the ``PLAN`` section of a :mod:`repro.func.tracefile` artifact container.
# ---------------------------------------------------------------------------

#: Plan payload preamble: event count, trace length, final I-cache
#: counters (accesses, misses, writebacks).
_PLAN_HEAD = struct.Struct("<QQQQQ")
#: One event record: kind (0 = I-miss, 1 = I-TLB miss, 2 = group),
#: instruction count, branch count, jump count, mispredicted-tail flag.
_PLAN_EVENT = struct.Struct("<BHHHB")
_KIND_GROUP = 2


def encode_fetch_plan(plan: FetchPlan, trace_length: int) -> bytes:
    """Serialize ``plan`` (built over a ``trace_length`` trace) to bytes."""
    stats = plan.icache_stats
    parts = [
        _PLAN_HEAD.pack(
            len(plan.events),
            trace_length,
            stats.accesses,
            stats.misses,
            stats.writebacks,
        )
    ]
    pack = _PLAN_EVENT.pack
    for event in plan.events:
        if event.__class__ is int:
            parts.append(pack(event, 0, 0, 0, 0))
        else:
            group, branches, jumps = event
            parts.append(
                pack(
                    _KIND_GROUP,
                    len(group.insts),
                    branches,
                    jumps,
                    1 if group.mispredicted_tail else 0,
                )
            )
    return b"".join(parts)


def decode_fetch_plan(data: bytes, trace: list[DynInst]) -> FetchPlan:
    """Rebuild a :class:`FetchPlan` from bytes, re-slicing ``trace``.

    The plan must have been built over exactly this trace (same workload
    build and instruction budget); the embedded trace length guards
    obvious mismatches.
    """
    if len(data) < _PLAN_HEAD.size:
        raise TraceFileError("truncated fetch-plan section")
    n_events, trace_len, accesses, misses, writebacks = _PLAN_HEAD.unpack_from(data)
    if trace_len != len(trace):
        raise TraceFileError(
            f"fetch plan was built over a {trace_len}-instruction trace; "
            f"this one has {len(trace)}"
        )
    if len(data) - _PLAN_HEAD.size < n_events * _PLAN_EVENT.size:
        raise TraceFileError("truncated fetch-plan event stream")
    events: list = []
    add_event = events.append
    pos = 0
    for kind, count, branches, jumps, mispredicted in _PLAN_EVENT.iter_unpack(
        data[_PLAN_HEAD.size : _PLAN_HEAD.size + n_events * _PLAN_EVENT.size]
    ):
        if kind == _KIND_GROUP:
            if count == 0 or pos + count > trace_len:
                raise TraceFileError("fetch-plan group exceeds the trace")
            add_event(
                (FetchGroup(trace[pos : pos + count], bool(mispredicted)), branches, jumps)
            )
            pos += count
        elif kind in (_IMISS, _ITLB_MISS):
            add_event(kind)
        else:
            raise TraceFileError(f"unknown fetch-plan event kind {kind}")
    if pos != trace_len:
        raise TraceFileError(
            f"fetch plan covers {pos} of {trace_len} trace instructions"
        )
    return FetchPlan(
        events,
        CacheStats(accesses=accesses, misses=misses, writebacks=writebacks),
    )


class FrontEnd:
    """Replays a :class:`FetchPlan` under the run-time stall rules.

    Stall handling (I-miss fills, misprediction blocking) is the only
    time-dependent part of fetch and lives here; everything the probes
    decided is read off the plan.  When no prebuilt ``plan`` is given,
    one is built from ``trace`` using the caller's ``predictor`` and
    ``icache`` — bit-identical to probing lazily, since only fetch
    touches either.
    """

    def __init__(
        self,
        trace: Iterable[DynInst],
        config: MachineConfig,
        predictor: BranchPredictor,
        icache: SetAssocCache,
        stats: MachineStats,
        plan: FetchPlan | None = None,
    ):
        if plan is None:
            plan = build_fetch_plan(trace, config, predictor, icache)
        self.plan = plan
        self._events = plan.events
        self._n = len(plan.events)
        self._ei = 0
        self._stats = stats
        self._icache_miss_latency = config.icache_miss_latency
        self._tlb_miss_latency = config.tlb_miss_latency
        #: Front end may not fetch again before this cycle (I-miss stall).
        self.blocked_until = 0
        #: Cycle at which fetch resumes after a mispredict (None = not
        #: blocked).  Set by the machine once the branch resolves.
        self.resume_cycle: int | None = None
        #: True while blocked on an unresolved mispredicted branch.
        self.waiting_on_branch = False

    # -- plan cursor ----------------------------------------------------------

    def exhausted(self) -> bool:
        """True when no instructions remain to fetch."""
        return self._ei >= self._n

    # -- misprediction control ----------------------------------------------------

    def block_for_branch(self) -> None:
        """Stall until :meth:`resolve_branch` supplies the resume cycle."""
        self.waiting_on_branch = True
        self.resume_cycle = None

    def resolve_branch(self, resume_cycle: int) -> None:
        """The mispredicted branch resolved; fetch resumes then."""
        self.resume_cycle = resume_cycle

    # -- fetch -------------------------------------------------------------------------

    def fetch_group(self, now: int) -> FetchGroup | None:
        """Fetch this cycle's group, or ``None`` when stalled/empty."""
        stats = self._stats
        if self.waiting_on_branch:
            resume = self.resume_cycle
            if resume is None or now < resume:
                stats.frontend_stall_cycles += 1
                return None
            self.waiting_on_branch = False
            self.resume_cycle = None
        if now < self.blocked_until:
            stats.frontend_stall_cycles += 1
            return None
        ei = self._ei
        if ei >= self._n:
            return None
        ev = self._events[ei]
        self._ei = ei + 1
        if ev.__class__ is int:
            if ev == _ITLB_MISS:
                stats.itlb_misses += 1
                self.blocked_until = now + self._tlb_miss_latency
            else:
                self.blocked_until = now + self._icache_miss_latency
            stats.frontend_stall_cycles += 1
            return None
        group, branches, jumps = ev
        if branches:
            stats.branches += branches
            if group.mispredicted_tail:
                stats.mispredicts += 1
        if jumps:
            stats.jumps += jumps
        return group
