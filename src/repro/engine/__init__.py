"""Cycle-level timing engine.

Implements the paper's Table 1 baseline: an 8-way superscalar machine
with either out-of-order issue (64-entry re-order buffer, 32-entry
load/store queue) or in-order issue, a GAp branch predictor behind a
collapsing-buffer fetch unit, split 32 KB instruction/data caches, and a
pluggable address-translation mechanism (:mod:`repro.tlb`).

The engine is trace-driven: it consumes the dynamic instruction stream
produced by the functional simulator (:mod:`repro.func`) and charges
cycles.  See DESIGN.md §1 for the wrong-path substitution note.
"""

from repro.engine.config import MachineConfig
from repro.engine.machine import Machine, SimulationResult
from repro.engine.stats import MachineStats

__all__ = ["Machine", "MachineConfig", "MachineStats", "SimulationResult"]
