"""Machine configuration (the paper's Table 1, as a dataclass)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FunctionalUnitSpec:
    """One functional-unit class: count, result latency, issue interval."""

    units: int
    latency: int
    interval: int = 1


def _default_fu_specs() -> dict[str, FunctionalUnitSpec]:
    """Table 1's functional units and latencies (total/issue)."""
    return {
        "ialu": FunctionalUnitSpec(units=8, latency=1, interval=1),
        "ldst": FunctionalUnitSpec(units=4, latency=2, interval=1),
        "fpadd": FunctionalUnitSpec(units=4, latency=2, interval=1),
        "imuldiv": FunctionalUnitSpec(units=1, latency=3, interval=1),
        "fpmuldiv": FunctionalUnitSpec(units=1, latency=4, interval=1),
    }


@dataclass
class MachineConfig:
    """Baseline simulation model (paper Table 1).

    The defaults reproduce the paper's configuration exactly; experiments
    override ``issue_model`` (Figure 7), ``page_size`` (Figure 8), or the
    workload's register budget (Figure 9) and the translation design.
    """

    #: ``"ooo"`` (out-of-order, baseline) or ``"inorder"`` (Figure 7).
    issue_model: str = "ooo"
    #: Instructions fetched/dispatched/issued/committed per cycle.
    fetch_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    #: Re-order buffer entries (out-of-order model).
    rob_entries: int = 64
    #: Load/store queue entries.
    lsq_entries: int = 32
    #: Branch predictions per cycle within one cache block (collapsing
    #: buffer variant of [CMMP95], as in the paper's methodology).
    predictions_per_cycle: int = 2
    #: Branch misprediction penalty in cycles.
    mispredict_penalty: int = 3
    #: Branch predictor: "gap" (paper baseline), "gshare", "bimodal",
    #: "tournament", or "taken" (always-taken strawman).
    predictor: str = "gap"
    #: Branch predictor geometry (GAp/gshare/PHT sizes).
    predictor_history_bits: int = 8
    predictor_pht_entries: int = 4096

    # Instruction cache: 32 KB, 2-way, 32-byte blocks, 6-cycle miss.
    icache_size: int = 32 * 1024
    icache_assoc: int = 2
    icache_block: int = 32
    icache_miss_latency: int = 6

    # Data cache: 32 KB, 2-way, 32-byte blocks, write-back,
    # write-allocate, 6-cycle miss, four-ported, non-blocking.
    dcache_size: int = 32 * 1024
    dcache_assoc: int = 2
    dcache_block: int = 32
    dcache_miss_latency: int = 6
    dcache_mshrs: int = 64

    # Virtual memory: 4 KB pages (8 KB for Figure 8); fixed 30-cycle TLB
    # miss latency charged after earlier-issued instructions complete.
    page_size: int = 4096
    tlb_miss_latency: int = 30

    # Instruction-side micro-TLB (paper §1: "a single-ported instruction
    # TLB or ... a small micro-TLB").  The paper scopes instruction
    # translation out of its study, so the default is off; enabling it
    # charges fetch stalls for I-side translation misses.
    model_itlb: bool = False
    itlb_entries: int = 32

    # Execute down mispredicted paths (as the paper's simulator does):
    # after a mispredicted branch dispatches, synthetic wrong-path
    # instructions consume fetch/dispatch/issue/translation bandwidth
    # until the branch resolves, then are squashed.  Wrong-path TLB
    # misses stall dispatch and are never serviced (paper §4.1).
    model_wrong_path: bool = True
    #: Fraction (percent) of wrong-path instructions that are loads/stores.
    wrong_path_load_pct: int = 25
    wrong_path_store_pct: int = 10

    # Multiprogramming stand-in: flush all cached translations every N
    # cycles (0 = never).  Models the TLB invalidation a context switch
    # forces — the workload trend the paper's introduction motivates.
    context_switch_interval: int = 0

    # Event-driven cycle skipping: when no phase can do work before the
    # next scheduled event (in-flight completion, MSHR fill, mechanism
    # queue readiness, fetch resume, context-switch flush), the cycle
    # loop jumps straight to that event instead of ticking.  Results are
    # bit-identical either way (see docs/performance.md); the knob
    # exists for A/B verification and the equivalence property test.
    event_driven: bool = True

    # Trace-specialized compiled kernel: replay the dynamic trace through
    # repro.kernel.KernelMachine's structure-of-arrays loop instead of
    # the interpreted engine.  Results are bit-identical (the kernel is
    # a port of the same timing rules over flat arrays; see
    # ``python -m repro.check.diff --checks kernel``), only host
    # throughput changes.  Ignored when ``sanity`` is set — the checker
    # hooks the interpreted machine's internals, so sanity runs fall
    # back to it.
    kernel: bool = False

    # Batch-vectorized kernel replay: like ``kernel`` but through
    # repro.kernel.batch.BatchKernelMachine, which additionally hoists
    # all address geometry (VPN, cache block/set, bank index,
    # pretranslation tag) to encode time and steps each cycle's ready
    # wavefront through bulk gather/step/scatter phases.  Bit-identical
    # (``python -m repro.check.diff --checks kernel-batch``).  Only the
    # ooo issue model has a batch backend — in-order runs fall back to
    # KernelMachine — and ``sanity`` falls back to the interpreted
    # machine, as for ``kernel``.  Takes precedence over ``kernel``
    # when both are set.
    kernel_batch: bool = False

    # Simulation sanitizer: attach a repro.check.invariants.SanityChecker
    # to the run, validating per-cycle engine invariants and replaying
    # every event-driven skip against the mechanism's quiescent_until
    # contract.  Purely observational — a passing run's results are
    # bit-identical with the flag off — but slow; meant for the
    # differential/fuzz harness (python -m repro.check) and tests, not
    # for figure grids.
    sanity: bool = False

    # Integer divide occupies its unit for its full latency.
    int_div_latency: int = 12
    fp_div_latency: int = 12

    fu_specs: dict[str, FunctionalUnitSpec] = field(default_factory=_default_fu_specs)

    #: Safety valve: abort runs that exceed this many cycles (0 = off).
    max_cycles: int = 0

    def __post_init__(self):
        if self.issue_model not in ("ooo", "inorder"):
            raise ValueError(f"unknown issue model: {self.issue_model!r}")
        if self.predictor not in ("gap", "gshare", "bimodal", "tournament", "taken"):
            raise ValueError(f"unknown predictor: {self.predictor!r}")
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ValueError(f"page size must be a power of two: {self.page_size}")

    @property
    def page_shift(self) -> int:
        """log2 of the page size."""
        return self.page_size.bit_length() - 1
