"""The cycle-level machine: dispatch, issue, memory pipeline, commit.

Per-cycle phase order::

    commit -> TLB-miss service -> issue (address generation, requests)
           -> translation tick -> dispatch/fetch

Key timing rules (paper §4.1 / Table 1):

* TLB access is fully overlapped with data-cache access — a request
  granted a port in its submission cycle with a TLB hit adds zero
  latency; queueing for a port adds the queueing delay.
* A base-TLB miss costs a fixed 30 cycles, charged after all
  earlier-issued instructions complete, and instruction dispatch stalls
  until the missing instruction commits (the paper's rule for
  speculative TLB misses).
* Loads may issue only when every earlier store's address is known
  (i.e. every earlier store has issued); stores write the data cache at
  commit.
* The out-of-order model issues any ready instruction in the 64-entry
  window; the in-order model issues strictly in program order, stalling
  on RAW and WAW hazards (no renaming), with out-of-order completion.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator

from repro.branch.predictors import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    GApPredictor,
    GSharePredictor,
    TournamentPredictor,
)
from repro.caches.cache import SetAssocCache
from repro.caches.mshr import MSHRFile
from repro.caches.replacement import XorShift32
from repro.engine.config import MachineConfig
from repro.engine.frontend import FrontEnd
from repro.engine.funits import FunctionalUnitPool
from repro.engine.stats import MachineStats
from repro.func.dyninst import DecodedInst, DynInst
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Op, OpClass, op_class
from repro.tlb.base import TranslationMechanism
from repro.tlb.request import TranslationRequest, TranslationResult


# Synthetic wrong-path instruction templates (no register effects: the
# first-order cost of wrong-path execution is bandwidth, not dataflow).
_WP_ALU = DecodedInst(-1, Instruction(Op.ADD), op_class(Op.ADD))
_WP_LOAD = DecodedInst(-1, Instruction(Op.LW), op_class(Op.LW))
_WP_STORE = DecodedInst(-1, Instruction(Op.SW), op_class(Op.SW))


def _make_predictor(config: MachineConfig):
    """Instantiate the configured direction predictor."""
    if config.predictor == "gap":
        return GApPredictor(
            config.predictor_history_bits, config.predictor_pht_entries
        )
    if config.predictor == "gshare":
        return GSharePredictor(pht_entries=config.predictor_pht_entries)
    if config.predictor == "bimodal":
        return BimodalPredictor(config.predictor_pht_entries)
    if config.predictor == "tournament":
        return TournamentPredictor(config.predictor_pht_entries)
    return AlwaysTakenPredictor()


class _InFlight:
    """One window (ROB) entry."""

    __slots__ = (
        "dyn",
        "seq",
        "addr_waits",
        "data_waits",
        "issued",
        "issue_cycle",
        "complete",
        "is_load",
        "is_store",
        "is_mem",
        "cache_done",
        "trans_done",
        "trans_base",
        "tlb_waiting",
        "depends_host",
        "mispredicted",
        "wrong_path",
    )

    def __init__(
        self,
        dyn: DynInst,
        seq: int,
        addr_waits: tuple,
        data_waits: tuple,
        mispredicted: bool,
        wrong_path: bool = False,
    ):
        self.dyn = dyn
        #: Machine-assigned window sequence number (monotone dispatch
        #: order; distinct from dyn.seq once wrong-path slots interleave).
        self.seq = seq
        #: Producers of address operands (all operands for non-stores).
        self.addr_waits = addr_waits
        #: Producers of a store's data operand (empty for non-stores).
        self.data_waits = data_waits
        self.issued = False
        self.issue_cycle = -1
        #: Cycle the instruction's result is available (None = unknown).
        self.complete: int | None = None
        dec = dyn.decoded
        self.is_load = dec.is_load
        self.is_store = dec.is_store
        self.is_mem = dec.is_mem
        #: Cache-path completion for loads (set at issue).
        self.cache_done: int | None = None
        #: Cycle the translation is available (set when resolved).
        self.trans_done: int | None = None
        #: Mechanism-level ready cycle of a missed translation.
        self.trans_base = -1
        #: True while awaiting the 30-cycle miss service.
        self.tlb_waiting = False
        #: seq of the piggyback host whose walk this rider shares.
        self.depends_host: int | None = None
        self.mispredicted = mispredicted
        #: True for synthetic wrong-path instructions (squashed, never
        #: committed).
        self.wrong_path = wrong_path


@dataclass
class SimulationResult:
    """Outcome of one timing run."""

    name: str
    stats: MachineStats
    config: MachineConfig

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def ipc(self) -> float:
        """Committed IPC."""
        return self.stats.commit_ipc


class Machine:
    """Trace-driven cycle-level simulator of the Table 1 baseline."""

    def __init__(
        self,
        config: MachineConfig,
        mechanism: TranslationMechanism,
        trace: Iterator[DynInst],
        name: str = "run",
    ):
        if mechanism.page_shift != config.page_shift:
            raise ValueError(
                f"mechanism page shift {mechanism.page_shift} != "
                f"machine page shift {config.page_shift}"
            )
        self.config = config
        self.mech = mechanism
        self.name = name
        self.stats = MachineStats()
        self.icache = SetAssocCache(
            config.icache_size, config.icache_assoc, config.icache_block
        )
        self.dcache = SetAssocCache(
            config.dcache_size, config.dcache_assoc, config.dcache_block
        )
        self.mshr = MSHRFile(config.dcache_mshrs)
        self.predictor = _make_predictor(config)
        self.frontend = FrontEnd(trace, config, self.predictor, self.icache, self.stats)
        self.fupool = FunctionalUnitPool(config)
        self._page_shift = config.page_shift
        self._window: deque[_InFlight] = deque()
        self._fetch_queue: deque[DynInst] = deque()
        self._mispredict_seqs: set[int] = set()
        self._by_seq: dict[int, _InFlight] = {}
        self._riders: dict[int, list[_InFlight]] = {}
        self._last_writer: dict[int, _InFlight] = {}
        self._lsq_count = 0
        self._tlb_blockers: set[int] = set()
        self._stores_awaiting_data: list[_InFlight] = []
        self._mem_issues_this_cycle = 0
        self._next_seq = 0
        self._wp_branch: _InFlight | None = None
        self._wp_rng = XorShift32(0x57A7)
        self._recent_eas: deque[int] = deque(maxlen=16)
        self._ldst_latency = config.fu_specs["ldst"].latency
        self._inorder = config.issue_model == "inorder"
        self._next_flush = (
            config.context_switch_interval if config.context_switch_interval else 0
        )

    # -- top level --------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Simulate until the trace drains; returns the result record."""
        now = 0
        max_cycles = self.config.max_cycles
        while True:
            if self._next_flush and now >= self._next_flush:
                # Context switch: all cached translations invalidated.
                self.mech.flush()
                self.stats.context_switches += 1
                self._next_flush = now + self.config.context_switch_interval
            self._squash_wrong_path(now)
            self._commit(now)
            self.mshr.expire(now)
            self._complete_ready_stores()
            self._service_tlb_miss(now)
            self._issue(now)
            for result in self.mech.tick(now):
                self._apply_translation(result, now)
            self._dispatch(now)
            now += 1
            if max_cycles and now >= max_cycles:
                raise RuntimeError(f"simulation exceeded {max_cycles} cycles")
            if (
                not self._window
                and not self._fetch_queue
                and self.frontend.exhausted()
            ):
                break
        self.stats.cycles = now
        self.stats.icache = self.icache.stats
        self.stats.dcache = self.dcache.stats
        self.stats.translation = self.mech.stats
        return SimulationResult(self.name, self.stats, self.config)

    # -- wrong-path execution -----------------------------------------------------

    def _squash_wrong_path(self, now: int) -> None:
        """Squash the wrong-path tail once its branch has resolved."""
        branch = self._wp_branch
        if branch is None or branch.complete is None or branch.complete > now:
            return
        self._wp_branch = None
        window = self._window
        while window and window[-1].wrong_path:
            infl = window.pop()
            if infl.is_mem:
                self._lsq_count -= 1
            self._tlb_blockers.discard(infl.seq)
            self._by_seq.pop(infl.seq, None)
            # A correct-path rider piggybacked on a squashed host would
            # otherwise wait forever; complete it with the squash.
            for rider in self._riders.pop(infl.seq, ()):
                if rider.trans_done is None:
                    rider.trans_done = now
                    rider.tlb_waiting = False
                    self._finalize_mem(rider)

    def _dispatch_wrong_path(self, now: int) -> None:
        """Fill dispatch slots with synthetic wrong-path instructions."""
        window = self._window
        rob = self.config.rob_entries
        lsq = self.config.lsq_entries
        rng = self._wp_rng
        load_pct = self.config.wrong_path_load_pct
        store_pct = self.config.wrong_path_store_pct
        count = 0
        # Wrong-path fetch sustains roughly half the peak width: taken
        # branches and block breaks on the bogus path throttle it just
        # as they do on the correct path.
        budget = max(1, self.config.fetch_width // 2)
        while count < budget and len(window) < rob:
            roll = rng.below(100)
            if roll < load_pct and self._recent_eas:
                decoded, is_mem = _WP_LOAD, True
            elif roll < load_pct + store_pct and self._recent_eas:
                decoded, is_mem = _WP_STORE, True
            else:
                decoded, is_mem = _WP_ALU, False
            if is_mem and self._lsq_count >= lsq:
                decoded, is_mem = _WP_ALU, False
            ea = None
            if is_mem:
                # Wrong paths touch data near what the code just touched:
                # a recent effective address perturbed within its page.
                base = self._recent_eas[rng.below(len(self._recent_eas))]
                ea = (base & ~0xFF) + 4 * rng.below(64)
            dyn = DynInst(-1, decoded, pc=0, ea=ea)
            seq = self._next_seq
            self._next_seq += 1
            infl = _InFlight(dyn, seq, (), (), False, wrong_path=True)
            if is_mem:
                self._lsq_count += 1
            window.append(infl)
            self._by_seq[seq] = infl
            count += 1

    # -- commit -----------------------------------------------------------------

    def _commit(self, now: int) -> None:
        window = self._window
        count = 0
        width = self.config.commit_width
        while window and count < width:
            head = window[0]
            if head.complete is None or head.complete > now:
                break
            window.popleft()
            count += 1
            self.stats.committed += 1
            if head.is_mem:
                self._lsq_count -= 1
                if head.is_store:
                    self.stats.stores += 1
                    # Committed stores write the data cache.
                    self.dcache.access(head.dyn.ea, write=True)
                else:
                    self.stats.loads += 1
            self._tlb_blockers.discard(head.seq)
            self._by_seq.pop(head.seq, None)

    # -- TLB miss service ---------------------------------------------------------

    def _service_tlb_miss(self, now: int) -> None:
        """Start the 30-cycle walk once the missing inst is oldest incomplete."""
        for infl in self._window:
            if infl.complete is not None and infl.complete <= now:
                continue
            # ``infl`` is the oldest incomplete instruction.
            if infl.tlb_waiting and infl.depends_host is None and not infl.wrong_path:
                infl.trans_done = max(now, infl.trans_base) + self.config.tlb_miss_latency
                infl.tlb_waiting = False
                self.stats.tlb_miss_services += 1
                self._finalize_mem(infl)
                self._complete_riders(infl)
            break

    def _complete_riders(self, host: _InFlight) -> None:
        for rider in self._riders.pop(host.seq, ()):
            rider.trans_done = host.trans_done
            rider.tlb_waiting = False
            self._finalize_mem(rider)

    # -- issue ------------------------------------------------------------------------

    def _issue(self, now: int) -> None:
        issued = 0
        width = self.config.issue_width
        store_pending = False
        self._mem_issues_this_cycle = 0
        pending_dests: set[int] | None = set() if self._inorder else None
        for infl in self._window:
            if infl.issued:
                if self._inorder and (infl.complete is None or infl.complete > now):
                    pending_dests.update(infl.dyn.decoded.dests)
                continue
            if issued >= width:
                if self._inorder:
                    break
                if infl.is_store:
                    store_pending = True
                continue
            ok = self._can_issue(infl, now, store_pending, pending_dests)
            if ok:
                self._do_issue(infl, now)
                issued += 1
                if self._inorder and (infl.complete is None or infl.complete > now):
                    pending_dests.update(infl.dyn.decoded.dests)
            else:
                if self._inorder:
                    break
                if infl.is_store:
                    store_pending = True
        self.stats.issued += issued
        if self._mem_issues_this_cycle:
            # Histogram of simultaneous translation requests per cycle:
            # the bandwidth-demand evidence behind the paper's Section 2.
            demand = self.stats.translation_demand
            bucket = self._mem_issues_this_cycle
            demand[bucket] = demand.get(bucket, 0) + 1

    def _can_issue(
        self,
        infl: _InFlight,
        now: int,
        store_pending: bool,
        pending_dests: set[int] | None,
    ) -> bool:
        if infl.is_load and store_pending:
            return False  # an earlier store address is still unknown
        for writer in infl.addr_waits:
            if writer.complete is None or writer.complete > now:
                return False
        if self._inorder:
            # No renaming: the in-order model stalls on the store data
            # hazard too ("stalls whenever any data hazard occurs").
            for writer in infl.data_waits:
                if writer.complete is None or writer.complete > now:
                    return False
        if pending_dests is not None:
            # In-order model: WAW hazard against incomplete instructions.
            if any(d in pending_dests for d in infl.dyn.decoded.dests):
                return False
        dec = infl.dyn.decoded
        if not self.fupool.can_issue(dec.op_class, now):
            return False
        if infl.is_load:
            # Structural check: a load that will miss needs an MSHR.
            ea = infl.dyn.ea
            if not self.dcache.probe(ea):
                block = self.dcache.block_of(ea)
                if self.mshr.lookup(block) is None and self.mshr.full():
                    return False
        return True

    def _do_issue(self, infl: _InFlight, now: int) -> None:
        dec = infl.dyn.decoded
        ready = self.fupool.issue(dec.op_class, now)
        infl.issued = True
        infl.issue_cycle = now
        if infl.is_mem:
            self._issue_memory(infl, now)
        else:
            infl.complete = ready
            if infl.mispredicted:
                # The branch resolves at completion; fetch resumes after
                # the misprediction penalty.
                self.frontend.resolve_branch(ready + self.config.mispredict_penalty)

    def _forwarding_store(self, load: _InFlight, now: int) -> _InFlight | None:
        """Youngest earlier store to the same word with its data ready.

        Paper: loads' "values come from a matching earlier store in the
        store queue or from the data cache".  Forwarding needs the
        store's data, so an address-matching store whose value is still
        in flight does not forward (the load takes the cache path and
        its result is correct because the functional simulator already
        resolved memory order).
        """
        ea_word = load.dyn.ea & ~3
        best = None
        for infl in self._window:
            if infl.seq >= load.seq:
                break
            if not infl.is_store or not infl.issued:
                continue
            if (infl.dyn.ea & ~3) == ea_word:
                best = infl
        if best is None:
            return None
        for writer in best.data_waits:
            if writer.complete is None or writer.complete > now:
                return None
        return best

    def _issue_memory(self, infl: _InFlight, now: int) -> None:
        dyn = infl.dyn
        dec = dyn.decoded
        ea = dyn.ea
        self._mem_issues_this_cycle += 1
        if not infl.wrong_path:
            self._recent_eas.append(ea)
        if infl.is_load:
            if self._forwarding_store(infl, now) is not None:
                # Store-to-load forwarding: data comes from the store
                # queue in a single cycle; no cache access.
                self.stats.forwarded_loads += 1
                infl.cache_done = now + 1
            elif self.dcache.access(ea):
                infl.cache_done = now + self._ldst_latency
            else:
                block = self.dcache.block_of(ea)
                self.mshr.expire(now)
                fill_done = self.mshr.allocate(block, now, self.config.dcache_miss_latency)
                infl.cache_done = fill_done + self._ldst_latency
        req = TranslationRequest(
            seq=infl.seq,
            vpn=ea >> self._page_shift,
            cycle=now,
            is_write=infl.is_store,
            is_load=infl.is_load,
            base_reg=dec.base_reg,
            offset=dec.offset,
        )
        result = self.mech.request(req)
        if result is not None:
            self._apply_translation(result, now)

    # -- translation results ---------------------------------------------------------

    def _apply_translation(self, result: TranslationResult, now: int) -> None:
        infl = self._by_seq.get(result.req.seq)
        if infl is None:
            return  # request outlived its instruction (cannot happen on
            # the correct path, but stay robust)
        if result.tlb_miss:
            infl.tlb_waiting = True
            infl.trans_base = result.ready
            infl.depends_host = result.depends_on
            self._tlb_blockers.add(infl.seq)
            if result.depends_on is not None:
                host = self._by_seq.get(result.depends_on)
                if host is not None and host.trans_done is None:
                    self._riders.setdefault(result.depends_on, []).append(infl)
                else:
                    # Host already serviced (or gone): ride its result.
                    done = host.trans_done if host is not None else max(now, result.ready)
                    infl.trans_done = done
                    infl.tlb_waiting = False
                    self._finalize_mem(infl)
        else:
            infl.trans_done = result.ready
            self._finalize_mem(infl)

    def _finalize_mem(self, infl: _InFlight) -> None:
        """Set completion once both cache path and translation are known."""
        if infl.trans_done is None:
            return
        if infl.is_load:
            # Translation stall beyond the overlapped path adds directly.
            stall = infl.trans_done - infl.issue_cycle
            infl.complete = infl.cache_done + stall
        else:
            self._try_complete_store(infl)

    def _try_complete_store(self, infl: _InFlight) -> None:
        """A store completes when its address, translation and data are in."""
        data_ready = infl.issue_cycle
        for writer in infl.data_waits:
            if writer.complete is None:
                # Data producer not yet scheduled: re-check each cycle.
                self._stores_awaiting_data.append(infl)
                return
            if writer.complete > data_ready:
                data_ready = writer.complete
        infl.complete = max(infl.issue_cycle + 1, infl.trans_done + 1, data_ready)

    def _complete_ready_stores(self) -> None:
        if not self._stores_awaiting_data:
            return
        pending = self._stores_awaiting_data
        self._stores_awaiting_data = []
        for infl in pending:
            if infl.complete is None:
                self._try_complete_store(infl)

    # -- dispatch / fetch -----------------------------------------------------------------

    def _dispatch(self, now: int) -> None:
        if self._tlb_blockers:
            self.stats.tlb_dispatch_stall_cycles += 1
            return
        queue = self._fetch_queue
        if len(queue) <= self.config.fetch_width:
            group = self.frontend.fetch_group(now)
            if group is not None and group.insts:
                queue.extend(group.insts)
                if group.mispredicted_tail:
                    self._mispredict_seqs.add(group.insts[-1].seq)
                    self.frontend.block_for_branch()
        window = self._window
        rob = self.config.rob_entries
        lsq = self.config.lsq_entries
        count = 0
        width = self.config.fetch_width
        needs_reg_events = self.mech.needs_register_events
        while queue and count < width:
            dyn = queue[0]
            dec = dyn.decoded
            if len(window) >= rob:
                break
            if dec.is_mem and self._lsq_count >= lsq:
                break
            queue.popleft()
            count += 1
            addr_waits = tuple(
                w
                for w in (self._last_writer.get(s) for s in dec.addr_srcs)
                if w is not None
            )
            data_waits = tuple(
                w
                for w in (self._last_writer.get(s) for s in dec.data_srcs)
                if w is not None
            )
            mispredicted = dyn.seq in self._mispredict_seqs
            if mispredicted:
                self._mispredict_seqs.discard(dyn.seq)
            seq = self._next_seq
            self._next_seq += 1
            infl = _InFlight(dyn, seq, addr_waits, data_waits, mispredicted)
            if mispredicted and self.config.model_wrong_path:
                self._wp_branch = infl
            if needs_reg_events and dec.dests and not dec.is_load:
                # Decode-order register events for pretranslation.
                self.mech.on_register_write(dec.dests, dec.srcs)
            for d in dec.dests:
                self._last_writer[d] = infl
            if dec.is_mem:
                self._lsq_count += 1
            window.append(infl)
            self._by_seq[seq] = infl
        if (
            self._wp_branch is not None
            and self.config.model_wrong_path
            and not queue
            and count < width
        ):
            # The front end is fetching down the wrong path.
            self._dispatch_wrong_path(now)
