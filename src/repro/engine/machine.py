"""The cycle-level machine: dispatch, issue, memory pipeline, commit.

Per-cycle phase order::

    commit -> TLB-miss service -> issue (address generation, requests)
           -> translation tick -> dispatch/fetch

Key timing rules (paper §4.1 / Table 1):

* TLB access is fully overlapped with data-cache access — a request
  granted a port in its submission cycle with a TLB hit adds zero
  latency; queueing for a port adds the queueing delay.
* A base-TLB miss costs a fixed 30 cycles, charged after all
  earlier-issued instructions complete, and instruction dispatch stalls
  until the missing instruction commits (the paper's rule for
  speculative TLB misses).
* Loads may issue only when every earlier store's address is known
  (i.e. every earlier store has issued); stores write the data cache at
  commit.
* The out-of-order model issues any ready instruction in the 64-entry
  window; the in-order model issues strictly in program order, stalling
  on RAW and WAW hazards (no renaming), with out-of-order completion.

Execution is event-driven (see docs/performance.md): each simulated
cycle the phases report whether they did any work, and when none did,
the loop computes the earliest cycle at which any phase *could* act —
the next in-flight completion, MSHR fill, mechanism-queue grant, fetch
resume, or context-switch flush — and jumps straight there, charging
the per-cycle stall statistics for the skipped quiescent span in bulk.
The jump is conservative, so the simulated outcome (every counter in
:class:`~repro.engine.stats.MachineStats`) is bit-identical to the
one-cycle-at-a-time loop; set ``MachineConfig.event_driven=False`` to
force the plain loop for A/B verification.
"""

from __future__ import annotations

import time
from bisect import insort
from collections import deque
from dataclasses import dataclass, replace
from heapq import heappop, heappush
from operator import attrgetter
from typing import Iterator

from repro.caches.cache import SetAssocCache
from repro.caches.mshr import MSHRFile
from repro.caches.replacement import XorShift32
from repro.engine.config import MachineConfig
from repro.engine.frontend import FetchPlan, FrontEnd, make_predictor
from repro.engine.funits import FunctionalUnitPool
from repro.engine.stats import MachineStats
from repro.func.dyninst import OPCLASS_INDEX, DecodedInst, DynInst
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Op, OpClass, op_class
from repro.tlb.base import NEVER, TranslationMechanism
from repro.tlb.request import TranslationRequest, TranslationResult


# Synthetic wrong-path instruction templates (no register effects: the
# first-order cost of wrong-path execution is bandwidth, not dataflow).
_WP_ALU = DecodedInst(-1, Instruction(Op.ADD), op_class(Op.ADD))
_WP_LOAD = DecodedInst(-1, Instruction(Op.LW), op_class(Op.LW))
_WP_STORE = DecodedInst(-1, Instruction(Op.SW), op_class(Op.SW))

_SEQ_KEY = attrgetter("seq")


class _InFlight:
    """One window (ROB) entry."""

    __slots__ = (
        "dyn",
        "seq",
        "addr_waits",
        "data_waits",
        "issued",
        "issue_cycle",
        "complete",
        "is_load",
        "is_store",
        "is_mem",
        "cache_done",
        "trans_done",
        "trans_base",
        "tlb_waiting",
        "depends_host",
        "mispredicted",
        "wrong_path",
        "dead",
        "stall_until",
        "waiters",
        "fu",
    )

    def __init__(
        self,
        dyn: DynInst,
        seq: int,
        addr_waits: tuple,
        data_waits: tuple,
        mispredicted: bool,
        wrong_path: bool = False,
    ):
        self.dyn = dyn
        #: Machine-assigned window sequence number (monotone dispatch
        #: order; distinct from dyn.seq once wrong-path slots interleave).
        self.seq = seq
        #: Producers of address operands (all operands for non-stores).
        self.addr_waits = addr_waits
        #: Producers of a store's data operand (empty for non-stores).
        self.data_waits = data_waits
        self.issued = False
        self.issue_cycle = -1
        #: Cycle the instruction's result is available (None = unknown).
        self.complete: int | None = None
        dec = dyn.decoded
        self.is_load = dec.is_load
        self.is_store = dec.is_store
        self.is_mem = dec.is_mem
        #: Cache-path completion for loads (set at issue).
        self.cache_done: int | None = None
        #: Cycle the translation is available (set when resolved).
        self.trans_done: int | None = None
        #: Mechanism-level ready cycle of a missed translation.
        self.trans_base = -1
        #: True while awaiting the 30-cycle miss service.
        self.tlb_waiting = False
        #: seq of the piggyback host whose walk this rider shares.
        self.depends_host: int | None = None
        self.mispredicted = mispredicted
        #: True for synthetic wrong-path instructions (squashed, never
        #: committed).
        self.wrong_path = wrong_path
        #: Set when the entry is squashed out of the window, so lazy
        #: per-phase candidate lists can drop it without O(n) removal.
        self.dead = False
        #: Lower bound on the first cycle this entry could issue (or an
        #: issued store could complete).  ``NEVER`` means parked behind
        #: a producer whose completion cycle is still unknown; the
        #: producer's completion lowers it via ``waiters``.  Always a
        #: *lower* bound — re-evaluation may fail again and push it out.
        self.stall_until = 0
        #: Entries parked on this one's (not-yet-known) completion
        #: cycle; drained exactly once when ``complete`` is set.
        self.waiters: list[_InFlight] | None = None
        #: ``(free_at, busy, latency)`` functional-unit triple from
        #: :meth:`FunctionalUnitPool.class_map`, cached at dispatch.
        self.fu: tuple[list[int], int, int] | None = None


@dataclass
class SimulationResult:
    """Outcome of one timing run."""

    name: str
    stats: MachineStats
    config: MachineConfig

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def ipc(self) -> float:
        """Committed IPC."""
        return self.stats.commit_ipc


class Machine:
    """Trace-driven cycle-level simulator of the Table 1 baseline."""

    def __init__(
        self,
        config: MachineConfig,
        mechanism: TranslationMechanism,
        trace: Iterator[DynInst],
        name: str = "run",
        profiler=None,
        fetch_plan: FetchPlan | None = None,
    ):
        if mechanism.page_shift != config.page_shift:
            raise ValueError(
                f"mechanism page shift {mechanism.page_shift} != "
                f"machine page shift {config.page_shift}"
            )
        self.config = config
        self.mech = mechanism
        self.name = name
        self.stats = MachineStats()
        self.dcache = SetAssocCache(
            config.dcache_size, config.dcache_assoc, config.dcache_block
        )
        self.mshr = MSHRFile(config.dcache_mshrs)
        # With a prebuilt (shared) fetch plan the I-side structures were
        # already exercised by the plan's builder; the machine never
        # touches them again, so skip constructing duplicates.
        if fetch_plan is None:
            self.icache = SetAssocCache(
                config.icache_size, config.icache_assoc, config.icache_block
            )
            self.predictor = make_predictor(config)
        else:
            self.icache = None
            self.predictor = None
        self.frontend = FrontEnd(
            trace, config, self.predictor, self.icache, self.stats, plan=fetch_plan
        )
        self.fupool = FunctionalUnitPool(config)
        #: Optional :class:`repro.perf.SimProfiler` collecting per-phase
        #: wall time; ``None`` (the default) adds zero overhead.
        self.profiler = profiler
        self._page_shift = config.page_shift
        self._window: deque[_InFlight] = deque()
        self._fetch_queue: deque[DynInst] = deque()
        self._mispredict_seqs: set[int] = set()
        self._by_seq: dict[int, _InFlight] = {}
        self._riders: dict[int, list[_InFlight]] = {}
        self._last_writer: dict[int, _InFlight] = {}
        self._lsq_count = 0
        self._tlb_blockers: set[int] = set()
        self._stores_awaiting_data: list[_InFlight] = []
        self._mem_issues_this_cycle = 0
        self._next_seq = 0
        self._wp_branch: _InFlight | None = None
        self._wp_rng = XorShift32(0x57A7)
        self._recent_eas: deque[int] = deque(maxlen=16)
        self._ldst_latency = config.fu_specs["ldst"].latency
        self._inorder = config.issue_model == "inorder"
        self._next_flush = (
            config.context_switch_interval if config.context_switch_interval else 0
        )
        # Hot-path restructuring state: issue scans only candidates that
        # can still act, instead of re-walking the whole 64-entry window.
        #: Window entries not yet issued, in dispatch order.
        self._unissued: list[_InFlight] = []
        #: In-order model only: issued entries whose result is still in
        #: flight (the WAW/pending-destination hazard set), purged lazily.
        self._issued_incomplete: list[_InFlight] = []
        #: Earliest cycle the issue phase could possibly issue anything
        #: (a lower bound); ``_issue`` returns immediately before it.
        #: Recomputed each scan from the blocked entries' stall bounds,
        #: reset by dispatch/squash, lowered by producer completions.
        self._issue_next_try = 0
        #: OOO only: min-heap of ``(cycle, seq, entry)`` wake records for
        #: unissued entries blocked until a known cycle (producer
        #: completion, functional-unit release).  Blocked entries leave
        #: the scan list entirely and re-enter (by ``insort``) when
        #: their cycle arrives, so quiescent candidates cost nothing
        #: per scan.  Entries parked on an *unknown* completion live
        #: only in the producer's ``waiters`` list until then.
        self._wake: list[tuple[int, int, _InFlight]] = []
        #: OOO only: min-heap of ``(seq, entry)`` for unissued stores
        #: (lazily purged once issued/dead).  A load is blocked exactly
        #: when the top live seq is smaller than its own — the
        #: order-independent form of the scan's store_pending flag.
        self._store_seqs: list[tuple[int, _InFlight]] = []
        #: DecodedInst.fu_index -> (free_at, busy, latency), sharing
        #: fupool state; dense list so lookups skip enum hashing.
        fu_list: list = [None] * len(OPCLASS_INDEX)
        for oc, triple in self.fupool.class_map().items():
            fu_list[OPCLASS_INDEX[oc]] = triple
        self._fu_map = fu_list
        #: ea_word -> issued in-window stores to that word (forwarding
        #: candidates); maintained by issue/commit/squash so loads skip
        #: the per-issue window walk.
        self._fwd_stores: dict[int, list[_InFlight]] = {}
        # Event-driven loop state.
        self._event_driven = config.event_driven
        #: Cycle before which ``mech.tick`` is known to be a no-op (the
        #: quiescent_until bound); reset to 0 by every engine->mechanism
        #: mutation (request submission, register events, flush).
        self._mech_quiet = 0
        #: Quiescent cycles jumped over / number of jumps (host-side
        #: diagnostics — never part of MachineStats, which stays
        #: bit-identical across event_driven on/off).
        self.skipped_cycles = 0
        self.skip_jumps = 0
        # Per-cycle config hoists.
        self._fetch_width = config.fetch_width
        self._issue_width = config.issue_width
        self._commit_width = config.commit_width
        self._rob_entries = config.rob_entries
        self._lsq_entries = config.lsq_entries
        self._tlb_miss_latency = config.tlb_miss_latency
        self._dcache_miss_latency = config.dcache_miss_latency
        self._dblock_shift = self.dcache.block_shift
        self._mispredict_penalty = config.mispredict_penalty
        self._model_wrong_path = config.model_wrong_path
        #: Earliest in-flight MSHR fill (lower bound): the run loop's
        #: expire sweep is a no-op before this cycle, so it is gated.
        #: Lowered by every allocation, recomputed after every sweep.
        self._mshr_next = 0
        #: Optional cycle-level invariant checker (``config.sanity``).
        #: Must attach here, before run() caches bound methods: the
        #: checker interposes on ``mech.tick`` to audit port grants.
        #: ``None`` (the default) adds zero per-cycle overhead.
        if config.sanity:
            from repro.check.invariants import SanityChecker

            self.checker = SanityChecker(self)
        else:
            self.checker = None

    # -- top level --------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Simulate until the trace drains; returns the result record."""
        prof = self.profiler
        flush_mech = self.mech.flush
        squash = self._squash_wrong_path
        commit = self._commit
        expire = self.mshr.expire
        complete_stores = self._complete_ready_stores
        service = self._service_tlb_miss
        issue = self._issue
        mech_tick = self.mech.tick
        mech_quiet_until = self.mech.quiescent_until
        apply_result = self._apply_translation
        dispatch = self._dispatch
        next_event = self._next_event
        window = self._window
        fetch_queue = self._fetch_queue
        frontend = self.frontend
        stats = self.stats
        mshr_pending = self.mshr._pending
        cs_interval = self.config.context_switch_interval
        max_cycles = self.config.max_cycles
        event_driven = self._event_driven
        checker = self.checker
        if prof is not None:
            squash = prof.wrap("squash", squash)
            commit = prof.wrap("commit", commit)
            expire = prof.wrap("mshr_expire", expire)
            complete_stores = prof.wrap("stores", complete_stores)
            service = prof.wrap("tlb_service", service)
            issue = prof.wrap("issue", issue)
            mech_tick = prof.wrap("mech_tick", mech_tick)
            dispatch = prof.wrap("dispatch", dispatch)
            next_event = prof.wrap("next_event", next_event)
            started = time.perf_counter()
        now = 0
        while True:
            # Each phase call is guarded by the cheapest possible "could
            # it act at all?" predicate — the per-cycle loop dominates
            # host time, so even no-op method calls are worth skipping.
            did_work = False
            if self._next_flush and now >= self._next_flush:
                # Context switch: all cached translations invalidated.
                flush_mech()
                stats.context_switches += 1
                self._next_flush = now + cs_interval
                self._mech_quiet = 0
                did_work = True
            if self._wp_branch is not None and squash(now):
                did_work = True
            if window:
                head_complete = window[0].complete
                if (
                    head_complete is not None
                    and head_complete <= now
                    and commit(now)
                ):
                    did_work = True
            if mshr_pending and now >= self._mshr_next:
                expire(now)
                self._mshr_next = self.mshr.next_completion(now)
            if self._stores_awaiting_data and complete_stores():
                did_work = True
            if self._tlb_blockers and service(now):
                did_work = True
            if now >= self._issue_next_try and issue(now):
                did_work = True
            if now >= self._mech_quiet:
                results = mech_tick(now)
                if results:
                    did_work = True
                    for result in results:
                        apply_result(result, now)
                else:
                    # Contract (quiescent_until): every tick strictly
                    # before the returned cycle is a no-op, and every
                    # engine->mechanism mutation resets the bound.
                    self._mech_quiet = mech_quiet_until(now)
            elif checker is not None:
                checker.on_tick_skipped(now)
            if dispatch(now):
                did_work = True
            if checker is not None:
                checker.on_cycle(now)
            now += 1
            if max_cycles and now >= max_cycles:
                raise RuntimeError(f"simulation exceeded {max_cycles} cycles")
            if (
                not window
                and not fetch_queue
                and frontend.exhausted()
            ):
                break
            if event_driven and not did_work:
                target = next_event(now - 1)
                if target > now:
                    if max_cycles and target >= max_cycles:
                        # The plain loop would idle up to the valve and
                        # abort there; abort now with the same error.
                        raise RuntimeError(
                            f"simulation exceeded {max_cycles} cycles"
                        )
                    # Jump over the quiescent span, charging the stall
                    # statistics the skipped cycles would have accrued.
                    skipped = target - now
                    self.skipped_cycles += skipped
                    self.skip_jumps += 1
                    if checker is not None:
                        checker.on_skip(now - 1, target)
                    if self._tlb_blockers:
                        stats.tlb_dispatch_stall_cycles += skipped
                    elif len(fetch_queue) <= self._fetch_width and (
                        frontend.waiting_on_branch
                        or frontend.blocked_until > now - 1
                    ):
                        stats.frontend_stall_cycles += skipped
                    now = target
        stats.cycles = now
        # The plan's snapshot equals what a lazily-probed I-cache would
        # have accumulated; copy so runs sharing a plan don't alias.
        stats.icache = replace(self.frontend.plan.icache_stats)
        stats.dcache = self.dcache.stats
        stats.translation = self.mech.stats
        if prof is not None:
            prof.note_run(
                cycles=stats.cycles,
                committed=stats.committed,
                skipped=self.skipped_cycles,
                jumps=self.skip_jumps,
                wall_s=time.perf_counter() - started,
            )
        return SimulationResult(self.name, self.stats, self.config)

    # -- event horizon ------------------------------------------------------------

    def _next_event(self, now: int) -> int:
        """Earliest cycle after ``now`` at which any phase could act.

        Called only after a cycle in which *no* phase did work, so the
        machine state is frozen until one of these time-driven events:
        an in-flight completion (commit / dependence wake-up / squash /
        miss-service ordering), an MSHR fill or functional-unit release
        (structural issue hazards), a mechanism-queue grant, the fetch
        resume or I-miss unblock cycle, or the next context-switch
        flush.  Conservative: may return a cycle where nothing happens
        (the loop just re-evaluates); must never be later than the
        first real event, or results would diverge from the plain loop.
        """
        nxt = self._next_flush or NEVER
        # Earliest known in-flight completion: a direct window scan
        # (<= 64 entries) on the rare fully-quiet cycle costs far less
        # than maintaining a completion heap on every busy one.
        for infl in self._window:
            c = infl.complete
            if c is not None and now < c < nxt:
                nxt = c
        quiet = self.mech.quiescent_until(now)
        if quiet < nxt:
            nxt = quiet
        if self._unissued or self._wake:
            # Structural hazards can unblock issue without any
            # completion: an MSHR entry expiring frees a miss slot, a
            # busy functional unit (divider) releases.
            fill = self.mshr.next_completion(now)
            if fill < nxt:
                nxt = fill
            release = self.fupool.next_busy_release(now)
            if release < nxt:
                nxt = release
        if not self._tlb_blockers and len(self._fetch_queue) <= self._fetch_width:
            frontend = self.frontend
            if frontend.waiting_on_branch:
                resume = frontend.resume_cycle
                if resume is not None and resume < nxt:
                    nxt = resume
            elif now < frontend.blocked_until < nxt:
                nxt = frontend.blocked_until
        return nxt

    # -- wrong-path execution -----------------------------------------------------

    def _squash_wrong_path(self, now: int) -> bool:
        """Squash the wrong-path tail once its branch has resolved."""
        branch = self._wp_branch
        if branch is None or branch.complete is None or branch.complete > now:
            return False
        self._wp_branch = None
        window = self._window
        squashed = False
        while window and window[-1].wrong_path:
            infl = window.pop()
            squashed = True
            infl.dead = True
            if infl.is_mem:
                self._lsq_count -= 1
                if infl.is_store and infl.issued:
                    self._fwd_stores[infl.dyn.ea & ~3].remove(infl)
            self._tlb_blockers.discard(infl.seq)
            self._by_seq.pop(infl.seq, None)
            # A correct-path rider piggybacked on a squashed host would
            # otherwise wait forever; complete it with the squash.
            for rider in self._riders.pop(infl.seq, ()):
                if rider.trans_done is None:
                    rider.trans_done = now
                    rider.tlb_waiting = False
                    self._finalize_mem(rider)
        if squashed:
            # Squashing an unissued wrong-path store can clear the
            # earlier-store-address block on later loads: rescan now.
            self._issue_next_try = 0
        return squashed

    def _dispatch_wrong_path(self, now: int) -> int:
        """Fill dispatch slots with synthetic wrong-path instructions."""
        window = self._window
        rob = self._rob_entries
        lsq = self._lsq_entries
        rng = self._wp_rng
        load_pct = self.config.wrong_path_load_pct
        store_pct = self.config.wrong_path_store_pct
        count = 0
        # Wrong-path fetch sustains roughly half the peak width: taken
        # branches and block breaks on the bogus path throttle it just
        # as they do on the correct path.
        budget = max(1, self._fetch_width // 2)
        while count < budget and len(window) < rob:
            roll = rng.below(100)
            if roll < load_pct and self._recent_eas:
                decoded, is_mem = _WP_LOAD, True
            elif roll < load_pct + store_pct and self._recent_eas:
                decoded, is_mem = _WP_STORE, True
            else:
                decoded, is_mem = _WP_ALU, False
            if is_mem and self._lsq_count >= lsq:
                decoded, is_mem = _WP_ALU, False
            ea = None
            if is_mem:
                # Wrong paths touch data near what the code just touched:
                # a recent effective address perturbed within its page.
                base = self._recent_eas[rng.below(len(self._recent_eas))]
                ea = (base & ~0xFF) + 4 * rng.below(64)
            dyn = DynInst(-1, decoded, pc=0, ea=ea)
            seq = self._next_seq
            self._next_seq += 1
            infl = _InFlight(dyn, seq, (), (), False, wrong_path=True)
            infl.fu = self._fu_map[decoded.fu_index]
            if decoded.is_store and not self._inorder:
                heappush(self._store_seqs, (seq, infl))
            if is_mem:
                self._lsq_count += 1
            window.append(infl)
            self._by_seq[seq] = infl
            self._unissued.append(infl)
            count += 1
        return count

    # -- commit -----------------------------------------------------------------

    def _commit(self, now: int) -> int:
        window = self._window
        if not window:
            return 0
        head = window[0]
        if head.complete is None or head.complete > now:
            return 0
        count = 0
        width = self._commit_width
        by_seq = self._by_seq
        blockers = self._tlb_blockers
        dcache_access = self.dcache.access
        loads = 0
        stores = 0
        while count < width:
            head = window[0]
            c = head.complete
            if c is None or c > now:
                break
            window.popleft()
            count += 1
            if head.is_mem:
                self._lsq_count -= 1
                if head.is_store:
                    stores += 1
                    ea = head.dyn.ea
                    # Committed stores write the data cache.
                    dcache_access(ea, write=True)
                    self._fwd_stores[ea & ~3].remove(head)
                else:
                    loads += 1
            if blockers:
                blockers.discard(head.seq)
            by_seq.pop(head.seq, None)
            if not window:
                break
        stats = self.stats
        stats.committed += count
        if loads:
            stats.loads += loads
        if stores:
            stats.stores += stores
        return count

    # -- TLB miss service ---------------------------------------------------------

    def _service_tlb_miss(self, now: int) -> bool:
        """Start the 30-cycle walk once the missing inst is oldest incomplete."""
        if not self._tlb_blockers:
            # Only instructions awaiting a walk block dispatch; with no
            # blockers there is nothing to service — skip the window scan.
            return False
        for infl in self._window:
            if infl.complete is not None and infl.complete <= now:
                continue
            # ``infl`` is the oldest incomplete instruction.
            if infl.tlb_waiting and infl.depends_host is None and not infl.wrong_path:
                infl.trans_done = max(now, infl.trans_base) + self._tlb_miss_latency
                infl.tlb_waiting = False
                self.stats.tlb_miss_services += 1
                self._finalize_mem(infl)
                self._complete_riders(infl)
                return True
            break
        return False

    def _complete_riders(self, host: _InFlight) -> None:
        for rider in self._riders.pop(host.seq, ()):
            rider.trans_done = host.trans_done
            rider.tlb_waiting = False
            self._finalize_mem(rider)

    # -- issue ------------------------------------------------------------------------

    def _issue(self, now: int) -> int:
        # The scan is the simulator's hottest loop, so blocked entries
        # carry a ``stall_until`` lower bound on their next possible
        # issue cycle and the whole phase is gated on the minimum of
        # those bounds (``_issue_next_try``).  Bounds come from three
        # monotone facts: a producer's completion cycle never changes
        # once known, functional-unit release times never move earlier,
        # and producers whose completion is still *unknown* lower the
        # gate through their ``waiters`` list the moment it is set.
        # Dispatch and squash reset the gate (new candidates / cleared
        # store-address blocks); MSHR-full blocks are never cached
        # (commit-time stores write-allocate the data cache, which can
        # turn a blocked load's miss into a hit the very next cycle).
        if now < self._issue_next_try:
            return 0
        unissued = self._unissued
        wake = self._wake
        if wake and wake[0][0] <= now:
            # Re-admit entries whose stall bound has arrived, in window
            # (seq) order; stale records for issued/dead entries drop.
            while wake and wake[0][0] <= now:
                entry = heappop(wake)[2]
                if not entry.issued and not entry.dead:
                    insort(unissued, entry, key=_SEQ_KEY)
        self._mem_issues_this_cycle = 0
        if not unissued:
            self._issue_next_try = wake[0][0] if wake else NEVER
            return 0
        issued = 0
        width = self._issue_width
        do_issue = self._do_issue
        probe = self.dcache.probe
        mshr_lookup = self.mshr.lookup
        mshr_full = self.mshr.full
        dshift = self._dblock_shift
        now1 = now + 1
        next_try = NEVER
        #: Replacement unissued list; ``None`` until the first entry is
        #: dropped (issued or dead) — a scan that drops nothing keeps
        #: the original list untouched instead of rebuilding it.
        retained: list[_InFlight] | None = None
        n = len(unissued)
        if self._inorder:
            # No renaming: WAW hazards against every issued instruction
            # whose result is still in flight.  Issued entries form a
            # window prefix in this model, so the hazard set is exactly
            # the (lazily purged) issued-incomplete list; the dict keeps
            # a witness writer per register so a WAW block yields a
            # stall bound, not just a boolean.
            pending: dict[int, _InFlight] = {}
            live: list[_InFlight] = []
            for infl in self._issued_incomplete:
                if infl.dead:
                    continue
                complete = infl.complete
                if complete is None or complete > now:
                    live.append(infl)
                    for d in infl.dyn.decoded.dests:
                        pending[d] = infl
            self._issued_incomplete = live
            for i in range(n):
                infl = unissued[i]
                if infl.dead:
                    if retained is None:
                        retained = unissued[:i]
                    continue
                if issued >= width:
                    if retained is not None:
                        retained.extend(unissued[i:])
                    next_try = now1
                    break
                s = infl.stall_until
                if s > now:
                    if retained is not None:
                        retained.extend(unissued[i:])
                    next_try = s
                    break
                dec = infl.dyn.decoded
                parked = False
                bound = -1
                for w in infl.addr_waits:
                    c = w.complete
                    if c is None:
                        ws = w.waiters
                        if ws is None:
                            w.waiters = [infl]
                        else:
                            ws.append(infl)
                        infl.stall_until = NEVER
                        parked = True
                        break
                    if c > now:
                        infl.stall_until = bound = c
                        break
                if not parked and bound < 0:
                    # No renaming: the in-order model stalls on the
                    # store data hazard too.
                    for w in infl.data_waits:
                        c = w.complete
                        if c is None:
                            ws = w.waiters
                            if ws is None:
                                w.waiters = [infl]
                            else:
                                ws.append(infl)
                            infl.stall_until = NEVER
                            parked = True
                            break
                        if c > now:
                            infl.stall_until = bound = c
                            break
                if not parked and bound < 0:
                    # WAW hazard against an incomplete earlier writer.
                    for d in dec.dests:
                        w = pending.get(d)
                        if w is not None:
                            c = w.complete
                            if c is None:
                                ws = w.waiters
                                if ws is None:
                                    w.waiters = [infl]
                                else:
                                    ws.append(infl)
                                infl.stall_until = NEVER
                                parked = True
                            else:
                                infl.stall_until = bound = c
                            break
                if not parked and bound < 0:
                    free_at = infl.fu[0]
                    ok = False
                    for fa in free_at:
                        if fa <= now:
                            ok = True
                            break
                    if not ok:
                        m = free_at[0]
                        for fa in free_at:
                            if fa < m:
                                m = fa
                        infl.stall_until = bound = m
                if not parked and bound < 0 and infl.is_load:
                    # Structural: a load that will miss needs an MSHR.
                    ea = infl.dyn.ea
                    if (
                        not probe(ea)
                        and mshr_lookup(ea >> dshift) is None
                        and mshr_full()
                    ):
                        bound = now1  # uncached: see gate comment above
                if parked or bound >= 0:
                    # The blocked head stalls everything behind it.
                    if retained is not None:
                        retained.extend(unissued[i:])
                    if bound >= 0:
                        next_try = bound
                    break
                do_issue(infl, now)
                issued += 1
                if retained is None:
                    retained = unissued[:i]
                complete = infl.complete
                if complete is None or complete > now:
                    live.append(infl)
                    for d in dec.dests:
                        pending[d] = infl
        else:
            store_seqs = self._store_seqs
            for i in range(n):
                infl = unissued[i]
                if infl.dead:
                    if retained is None:
                        retained = unissued[:i]
                    continue
                if issued >= width:
                    if retained is not None:
                        retained.extend(unissued[i:])
                    next_try = now1
                    break
                if infl.is_load:
                    # An earlier unissued store means its address is
                    # still unknown.  No bound needed: the blocking
                    # store wakes through its own heap record (or its
                    # producer's waiter notification).
                    while store_seqs:
                        top = store_seqs[0][1]
                        if top.issued or top.dead:
                            heappop(store_seqs)
                        else:
                            break
                    if store_seqs and store_seqs[0][0] < infl.seq:
                        if retained is not None:
                            retained.append(infl)
                        continue
                deferred = False
                for w in infl.addr_waits:
                    c = w.complete
                    if c is None:
                        # Producer completion unknown: park on it; its
                        # _set_complete pushes our wake record.
                        ws = w.waiters
                        if ws is None:
                            w.waiters = [infl]
                        else:
                            ws.append(infl)
                        deferred = True
                        break
                    if c > now:
                        heappush(wake, (c, infl.seq, infl))
                        deferred = True
                        break
                if not deferred:
                    free_at = infl.fu[0]
                    ok = False
                    for fa in free_at:
                        if fa <= now:
                            ok = True
                            break
                    if not ok:
                        m = free_at[0]
                        for fa in free_at:
                            if fa < m:
                                m = fa
                        heappush(wake, (m, infl.seq, infl))
                        deferred = True
                if deferred:
                    # Out of the scan list until the wake record (or
                    # waiter notification) re-admits it.
                    if retained is None:
                        retained = unissued[:i]
                    continue
                if infl.is_load:
                    # Structural: a load that will miss needs an MSHR.
                    # Never deferred on a bound: a commit-time store
                    # write-allocate can flip the probe to a hit any
                    # cycle, so re-check every cycle (gate = now + 1).
                    ea = infl.dyn.ea
                    if (
                        not probe(ea)
                        and mshr_lookup(ea >> dshift) is None
                        and mshr_full()
                    ):
                        if now1 < next_try:
                            next_try = now1
                        if retained is not None:
                            retained.append(infl)
                        continue
                do_issue(infl, now)
                issued += 1
                if retained is None:
                    retained = unissued[:i]
        if retained is not None:
            self._unissued = retained
        if wake and wake[0][0] < next_try:
            next_try = wake[0][0]
        self._issue_next_try = next_try
        self.stats.issued += issued
        if self._mem_issues_this_cycle:
            # Histogram of simultaneous translation requests per cycle:
            # the bandwidth-demand evidence behind the paper's Section 2.
            demand = self.stats.translation_demand
            bucket = self._mem_issues_this_cycle
            demand[bucket] = demand.get(bucket, 0) + 1
        return issued

    def _do_issue(self, infl: _InFlight, now: int) -> None:
        # Inline FunctionalUnitPool.issue via the cached (free_at,
        # busy, latency) triple: same first-free-slot policy, none of
        # the per-call enum-keyed dict lookups.
        free_at, busy, latency = infl.fu
        for i, cycle in enumerate(free_at):
            if cycle <= now:
                free_at[i] = now + busy
                break
        infl.issued = True
        infl.issue_cycle = now
        if infl.is_mem:
            self._issue_memory(infl, now)
        else:
            ready = now + latency
            # _set_complete fast path: nothing parked on this entry.
            if infl.waiters is None:
                infl.complete = ready
            else:
                self._set_complete(infl, ready)
            if infl.mispredicted:
                # The branch resolves at completion; fetch resumes after
                # the misprediction penalty.
                self.frontend.resolve_branch(ready + self._mispredict_penalty)

    def _set_complete(self, infl: _InFlight, complete: int) -> None:
        """Set an entry's completion cycle and wake anything parked on it.

        Every site that learns a completion cycle funnels through here,
        so entries whose stall bound was ``NEVER`` (producer completion
        unknown at scan time) get a real bound and the issue-phase gate
        is lowered — the other half of the ``stall_until`` contract.
        """
        infl.complete = complete
        waiters = infl.waiters
        if waiters is not None:
            infl.waiters = None
            wake = self._wake
            inorder = self._inorder
            for e in waiters:
                if e.stall_until > complete:
                    e.stall_until = complete
                if not inorder and not e.issued and not e.dead:
                    # OOO: the entry left the scan list when it parked;
                    # re-admit it at the producer's completion cycle.
                    heappush(wake, (complete, e.seq, e))
            if complete < self._issue_next_try:
                self._issue_next_try = complete

    def _forwarding_store(self, load: _InFlight, now: int) -> _InFlight | None:
        """Youngest earlier store to the same word with its data ready.

        Paper: loads' "values come from a matching earlier store in the
        store queue or from the data cache".  Forwarding needs the
        store's data, so an address-matching store whose value is still
        in flight does not forward (the load takes the cache path and
        its result is correct because the functional simulator already
        resolved memory order).
        """
        candidates = self._fwd_stores.get(load.dyn.ea & ~3)
        if not candidates:
            return None
        # Youngest earlier store = max seq below the load's (the index
        # holds every issued in-window store to this word).
        seq = load.seq
        best = None
        best_seq = -1
        for infl in candidates:
            s = infl.seq
            if best_seq < s < seq:
                best = infl
                best_seq = s
        if best is None:
            return None
        for writer in best.data_waits:
            if writer.complete is None or writer.complete > now:
                return None
        return best

    def _issue_memory(self, infl: _InFlight, now: int) -> None:
        dyn = infl.dyn
        dec = dyn.decoded
        ea = dyn.ea
        self._mem_issues_this_cycle += 1
        if not infl.wrong_path:
            self._recent_eas.append(ea)
        if infl.is_store:
            word = ea & ~3
            candidates = self._fwd_stores.get(word)
            if candidates is None:
                self._fwd_stores[word] = [infl]
            else:
                candidates.append(infl)
        if infl.is_load:
            if self._forwarding_store(infl, now) is not None:
                # Store-to-load forwarding: data comes from the store
                # queue in a single cycle; no cache access.
                self.stats.forwarded_loads += 1
                infl.cache_done = now + 1
            elif self.dcache.access(ea):
                infl.cache_done = now + self._ldst_latency
            else:
                block = self.dcache.block_of(ea)
                self.mshr.expire(now)
                fill_done = self.mshr.allocate(block, now, self._dcache_miss_latency)
                if fill_done < self._mshr_next:
                    self._mshr_next = fill_done
                infl.cache_done = fill_done + self._ldst_latency
        req = TranslationRequest(
            infl.seq,
            ea >> self._page_shift,
            now,
            infl.is_store,
            infl.is_load,
            dec.base_reg,
            dec.offset,
        )
        result = self.mech.request(req)
        # The request may have queued port work (even when answered
        # immediately — shielded designs still enqueue status writes):
        # the mechanism's quiescent bound no longer holds.
        self._mech_quiet = 0
        if result is not None:
            self._apply_translation(result, now)

    # -- translation results ---------------------------------------------------------

    def _apply_translation(self, result: TranslationResult, now: int) -> None:
        infl = self._by_seq.get(result.req.seq)
        if infl is None:
            return  # request outlived its instruction (cannot happen on
            # the correct path, but stay robust)
        if result.tlb_miss:
            infl.tlb_waiting = True
            infl.trans_base = result.ready
            infl.depends_host = result.depends_on
            self._tlb_blockers.add(infl.seq)
            if result.depends_on is not None:
                host = self._by_seq.get(result.depends_on)
                if host is not None and host.trans_done is None:
                    self._riders.setdefault(result.depends_on, []).append(infl)
                else:
                    # Host already serviced (or gone): ride its result.
                    done = host.trans_done if host is not None else max(now, result.ready)
                    infl.trans_done = done
                    infl.tlb_waiting = False
                    self._finalize_mem(infl)
        else:
            infl.trans_done = result.ready
            self._finalize_mem(infl)

    def _finalize_mem(self, infl: _InFlight) -> None:
        """Set completion once both cache path and translation are known."""
        if infl.trans_done is None:
            return
        if infl.is_load:
            # Translation stall beyond the overlapped path adds directly.
            stall = infl.trans_done - infl.issue_cycle
            complete = infl.cache_done + stall
            if infl.waiters is None:
                infl.complete = complete
            else:
                self._set_complete(infl, complete)
        else:
            self._try_complete_store(infl)

    def _try_complete_store(self, infl: _InFlight) -> None:
        """A store completes when its address, translation and data are in."""
        data_ready = infl.issue_cycle
        for writer in infl.data_waits:
            c = writer.complete
            if c is None:
                # Data producer not yet scheduled: park on it.  The
                # producer's completion clears the NEVER marker (via
                # ``waiters``), which is what makes the store eligible
                # for the next ``_complete_ready_stores`` retry — same
                # cycle the retry-every-cycle loop would first succeed.
                ws = writer.waiters
                if ws is None:
                    writer.waiters = [infl]
                else:
                    ws.append(infl)
                infl.stall_until = NEVER
                self._stores_awaiting_data.append(infl)
                return
            if c > data_ready:
                data_ready = c
        complete = max(infl.issue_cycle + 1, infl.trans_done + 1, data_ready)
        if infl.waiters is None:
            infl.complete = complete
        else:
            self._set_complete(infl, complete)

    def _complete_ready_stores(self) -> bool:
        pending = self._stores_awaiting_data
        if not pending:
            return False
        for infl in pending:
            if infl.stall_until != NEVER:
                break
        else:
            return False  # every parked store's producer is still unknown
        self._stores_awaiting_data = []
        completed = False
        for infl in pending:
            if infl.complete is None:
                if infl.stall_until == NEVER:
                    self._stores_awaiting_data.append(infl)
                    continue
                self._try_complete_store(infl)
                if infl.complete is not None:
                    completed = True
        return completed

    # -- dispatch / fetch -----------------------------------------------------------------

    def _dispatch(self, now: int) -> bool:
        if self._tlb_blockers:
            self.stats.tlb_dispatch_stall_cycles += 1
            return False
        queue = self._fetch_queue
        width = self._fetch_width
        fetched = False
        if len(queue) <= width:
            group = self.frontend.fetch_group(now)
            if group is not None and group.insts:
                fetched = True
                queue.extend(group.insts)
                if group.mispredicted_tail:
                    self._mispredict_seqs.add(group.insts[-1].seq)
                    self.frontend.block_for_branch()
        count = 0
        window = self._window
        if queue and len(window) < self._rob_entries:
            rob = self._rob_entries
            lsq = self._lsq_entries
            lsq_count = self._lsq_count
            writer_of = self._last_writer.get
            last_writer = self._last_writer
            mispredict_seqs = self._mispredict_seqs
            by_seq = self._by_seq
            unissued_append = self._unissued.append
            window_append = window.append
            fu_map = self._fu_map
            track_stores = not self._inorder
            store_seqs = self._store_seqs
            needs_reg_events = self.mech.needs_register_events
            model_wrong_path = self._model_wrong_path
            seq = self._next_seq
            while queue and count < width:
                dyn = queue[0]
                dec = dyn.decoded
                if len(window) >= rob:
                    break
                if dec.is_mem and lsq_count >= lsq:
                    break
                queue.popleft()
                count += 1
                # Producers that already completed can never stall this
                # entry (issue is always at a later cycle than dispatch),
                # so prune them here rather than re-checking every scan.
                addr_waits: tuple = ()
                srcs = dec.addr_srcs
                if srcs:
                    waits = None
                    for s in srcs:
                        w = writer_of(s)
                        if w is not None:
                            c = w.complete
                            if c is None or c > now:
                                if waits is None:
                                    waits = [w]
                                else:
                                    waits.append(w)
                    if waits is not None:
                        addr_waits = tuple(waits)
                data_waits: tuple = ()
                srcs = dec.data_srcs
                if srcs:
                    waits = None
                    for s in srcs:
                        w = writer_of(s)
                        if w is not None:
                            c = w.complete
                            if c is None or c > now:
                                if waits is None:
                                    waits = [w]
                                else:
                                    waits.append(w)
                    if waits is not None:
                        data_waits = tuple(waits)
                mispredicted = dyn.seq in mispredict_seqs
                if mispredicted:
                    mispredict_seqs.discard(dyn.seq)
                infl = _InFlight(dyn, seq, addr_waits, data_waits, mispredicted)
                infl.fu = fu_map[dec.fu_index]
                if dec.is_store and track_stores:
                    heappush(store_seqs, (seq, infl))
                if mispredicted and model_wrong_path:
                    self._wp_branch = infl
                if needs_reg_events and dec.dests and not dec.is_load:
                    # Decode-order register events for pretranslation.
                    self.mech.on_register_write(dec.dests, dec.srcs)
                for d in dec.dests:
                    last_writer[d] = infl
                if dec.is_mem:
                    lsq_count += 1
                window_append(infl)
                by_seq[seq] = infl
                seq += 1
                unissued_append(infl)
            if count:
                self._next_seq = seq
                self._lsq_count = lsq_count
                if needs_reg_events:
                    # Register events mutated the mechanism: drop its bound.
                    self._mech_quiet = 0
        if (
            self._wp_branch is not None
            and self._model_wrong_path
            and not queue
            and count < width
        ):
            # The front end is fetching down the wrong path.
            count += self._dispatch_wrong_path(now)
        if count:
            # New issue candidates: the gate's bound no longer holds.
            self._issue_next_try = 0
        return fetched or count > 0
