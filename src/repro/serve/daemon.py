"""The evaluation daemon: a socket front end over one Scheduler.

:class:`EvalServer` binds a unix or TCP socket, speaks the
line-delimited JSON protocol of :mod:`repro.serve.protocol`, and feeds
every submitted request into its :class:`~repro.serve.scheduler.Scheduler`.
Batches are fully multiplexed: one connection may have any number in
flight, and identical requests from different connections share one
simulation.  Each connection's result messages stream in completion
order, tagged with the batch id and the request's index within it.

``python -m repro.serve`` (see :mod:`repro.serve.__main__`) wraps this
in signal handling and the shared CLI options.
"""

from __future__ import annotations

import asyncio
import os

from repro.eval.runner import RunRequest
from repro.serve import protocol
from repro.serve.scheduler import Scheduler


class EvalServer:
    """Line-delimited JSON server over a :class:`Scheduler`."""

    def __init__(self, scheduler: Scheduler, address: str):
        self.scheduler = scheduler
        self.address = address
        self.endpoint = protocol.parse_address(address)
        self._server: "asyncio.AbstractServer | None" = None
        self._stop = asyncio.Event()
        self._conn_tasks: "set[asyncio.Task]" = set()

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> int:
        """Start the scheduler and bind the socket.

        Returns the number of journal entries recovered.  For a unix
        endpoint a stale socket file from a killed daemon is removed
        before binding.
        """
        recovered = await self.scheduler.start()
        if self.endpoint[0] == "unix":
            path = self.endpoint[1]
            os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
            try:
                os.unlink(path)
            except OSError:
                pass
            self._server = await asyncio.start_unix_server(
                self._handle, path=path, limit=protocol.STREAM_LIMIT
            )
        else:
            self._server = await asyncio.start_server(
                self._handle,
                host=self.endpoint[1],
                port=self.endpoint[2],
                limit=protocol.STREAM_LIMIT,
            )
        return recovered

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`request_stop` (or a ``shutdown`` op)."""
        await self._stop.wait()
        await self.stop()

    def request_stop(self) -> None:
        self._stop.set()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
        # Cancel live connection handlers *before* wait_closed: newer
        # asyncio waits for them, and an idle client would block us.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.stop()
        if self.endpoint[0] == "unix":
            try:
                os.unlink(self.endpoint[1])
            except OSError:
                pass

    # -- connections ----------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        """One client connection: read ops, spawn batch streamers."""
        lock = asyncio.Lock()
        batches: "set[asyncio.Task]" = set()
        me = asyncio.current_task()
        if me is not None:
            self._conn_tasks.add(me)
        try:
            while True:
                try:
                    message = await protocol.read_message(reader)
                except protocol.ProtocolError as exc:
                    await protocol.write_message(writer, lock, op="error", message=str(exc))
                    break
                if message is None:
                    break
                op = message.get("op")
                if op == "submit":
                    task = asyncio.create_task(self._serve_batch(message, writer, lock))
                    batches.add(task)
                    task.add_done_callback(batches.discard)
                elif op == "screen":
                    task = asyncio.create_task(self._serve_screen(message, writer, lock))
                    batches.add(task)
                    task.add_done_callback(batches.discard)
                elif op == "info":
                    await protocol.write_message(
                        writer,
                        lock,
                        op="info",
                        version=protocol.PROTOCOL_VERSION,
                        **self.scheduler.info(),
                    )
                elif op == "ping":
                    await protocol.write_message(writer, lock, op="pong")
                elif op == "shutdown":
                    await protocol.write_message(writer, lock, op="bye")
                    self._stop.set()
                    break
                else:
                    await protocol.write_message(
                        writer, lock, op="error", message=f"unknown op {op!r}"
                    )
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            # A vanished client must not cancel shared jobs — other
            # clients may be subscribed — so only the streaming tasks
            # (which await shielded futures) are cancelled.
            if me is not None:
                self._conn_tasks.discard(me)
            for task in list(batches):
                task.cancel()
            if batches:
                await asyncio.gather(*batches, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_batch(self, message: dict, writer, lock) -> None:
        """Accept one batch and stream its results as they complete."""
        batch_id = message.get("id", "")
        try:
            requests = [RunRequest.from_dict(d) for d in message["requests"]]
        except (KeyError, TypeError, ValueError) as exc:
            await protocol.write_message(
                writer, lock, op="error", id=batch_id, message=f"bad batch: {exc}"
            )
            return
        jobs = self.scheduler.submit(requests)
        await protocol.write_message(
            writer, lock, op="ack", id=batch_id, total=len(jobs)
        )
        completed = failed = 0

        async def deliver(index: int, job) -> None:
            nonlocal completed, failed
            try:
                # shield: cancelling this client's streamer must not
                # cancel the scheduler-wide job future.
                result, source = await asyncio.shield(job.future)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                failed += 1
                await protocol.write_message(
                    writer,
                    lock,
                    op="error",
                    id=batch_id,
                    index=index,
                    message=f"{type(exc).__name__}: {exc}",
                )
                return
            completed += 1
            await protocol.write_message(
                writer,
                lock,
                op="result",
                id=batch_id,
                index=index,
                source=source,
                result=result.to_dict(),
            )

        await asyncio.gather(*(deliver(i, job) for i, job in enumerate(jobs)))
        await protocol.write_message(
            writer, lock, op="done", id=batch_id, completed=completed, failed=failed
        )

    async def _serve_screen(self, message: dict, writer, lock) -> None:
        """Run one design-space screen through the shared scheduler.

        The model steps (profile building, calibration, vectorized
        scoring) run on a thread so the event loop keeps serving other
        clients; the anchor and frontier simulations are ordinary
        scheduler jobs, deduped against concurrent batches.
        """
        from repro.eval.screen import ScreenSpec, screen_async

        req_id = message.get("id", "")
        try:
            spec = ScreenSpec.from_dict(message["spec"])
        except (KeyError, TypeError, ValueError) as exc:
            await protocol.write_message(
                writer, lock, op="error", id=req_id,
                message=f"bad screen spec: {exc}",
            )
            return

        async def run_requests(requests):
            jobs = self.scheduler.submit(list(requests))
            pairs = await asyncio.gather(
                *(asyncio.shield(job.future) for job in jobs)
            )
            return [result for result, _source in pairs]

        loop = asyncio.get_running_loop()

        def offload(fn, *fn_args):
            return loop.run_in_executor(None, fn, *fn_args)

        try:
            result = await screen_async(
                spec,
                run_requests,
                artifacts=self.scheduler.artifacts,
                store=self.scheduler.store,
                offload=offload,
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            await protocol.write_message(
                writer, lock, op="error", id=req_id,
                message=f"{type(exc).__name__}: {exc}",
            )
            return
        await protocol.write_message(
            writer, lock, op="screen_result", id=req_id, summary=result.to_payload()
        )
