"""Atomic store-side claim files: cross-daemon ownership of a request.

Two daemons pointed at the same store directory (the multi-host
sharding story: one store on a shared filesystem, one daemon per host)
must never simulate the same request twice.  The stores themselves are
safe under concurrent writers — writes are atomic and content-addressed
— so duplicated work is a waste, not a corruption; claims exist to
eliminate the waste.

A claim is a file created with ``O_CREAT | O_EXCL`` — the one primitive
that is atomic on essentially every filesystem — under::

    <store root>/claims/<request key>.claim

holding the owner id and a wall-clock timestamp.  Exactly one creator
wins; everyone else polls the result store until the winner's result
lands.  A daemon that dies mid-simulation leaves its claim behind, so
claims expire: once older than ``ttl`` seconds they may be broken and
re-taken (:meth:`ClaimBoard.steal_if_stale`).  Breaking a *live* claim
is impossible as long as simulations finish within the TTL — size it
generously; the cost of a wrong steal is one duplicated simulation,
absorbed by the store's atomic writes.
"""

from __future__ import annotations

import json
import os
import socket
import time
import uuid
from pathlib import Path

from repro.eval.runner import RunRequest

#: Default claim expiry: far above any single simulation's wall time.
DEFAULT_TTL = 600.0


class ClaimBoard:
    """Claim-file directory shared by every daemon over one store."""

    def __init__(
        self,
        root: "str | Path",
        owner: "str | None" = None,
        ttl: float = DEFAULT_TTL,
    ):
        self.root = Path(root)
        self.owner = owner or f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"
        self.ttl = ttl

    def path_for(self, req: RunRequest) -> Path:
        return self.root / f"{req.key()}.claim"

    def try_claim(self, req: RunRequest) -> bool:
        """Atomically claim ``req``; False if someone else holds it."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload = json.dumps({"owner": self.owner, "time": time.time()})
        try:
            fd = os.open(self.path_for(req), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        try:
            os.write(fd, payload.encode())
        finally:
            os.close(fd)
        return True

    def holder(self, req: RunRequest) -> "dict | None":
        """The claim record for ``req`` (owner, time), or None."""
        try:
            return json.loads(self.path_for(req).read_text())
        except (OSError, ValueError):
            return None

    def is_stale(self, req: RunRequest) -> bool:
        """True if the claim exists but is older than the TTL.

        An unreadable/empty claim (its writer died between create and
        write) counts as stale once the file *mtime* exceeds the TTL.
        """
        path = self.path_for(req)
        record = self.holder(req)
        if record is not None and isinstance(record.get("time"), (int, float)):
            return time.time() - record["time"] > self.ttl
        try:
            return time.time() - path.stat().st_mtime > self.ttl
        except OSError:
            return False  # claim vanished: not stale, just gone

    def steal_if_stale(self, req: RunRequest) -> bool:
        """Break an expired claim and take it; True if we now own it."""
        if not self.is_stale(req):
            return False
        try:
            os.unlink(self.path_for(req))
        except OSError:
            pass  # raced another stealer; fall through to the claim race
        return self.try_claim(req)

    def _owner_alive_locally(self, owner: str) -> "bool | None":
        """Is ``owner`` a live process on *this* host?  None if unknowable.

        Owners default to ``host:pid:uuid``; foreign hosts and custom
        owner strings cannot be checked and return None.
        """
        parts = owner.split(":")
        if len(parts) != 3 or parts[0] != socket.gethostname():
            return None
        try:
            pid = int(parts[1])
        except ValueError:
            return None
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:
            return True
        return True

    def sweep_dead_owners(self) -> int:
        """Drop claims whose owner is a dead process on this host.

        A SIGKILLed daemon leaves its claims behind; without this a
        restarted daemon on the same host would treat them as a live
        peer and poll the store for the full TTL.  Claims from other
        hosts (unverifiable) are left to the TTL.  Returns the number
        removed.
        """
        if not self.root.exists():
            return 0
        swept = 0
        for path in self.root.glob("*.claim"):
            try:
                record = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            owner = record.get("owner")
            if isinstance(owner, str) and self._owner_alive_locally(owner) is False:
                try:
                    os.unlink(path)
                    swept += 1
                except OSError:
                    pass
        return swept

    def release(self, req: RunRequest) -> None:
        """Drop our claim on ``req``; a foreign claim is left alone."""
        record = self.holder(req)
        if record is not None and record.get("owner") != self.owner:
            return
        try:
            os.unlink(self.path_for(req))
        except OSError:
            pass

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.claim")) if self.root.exists() else 0
