"""Append-only job journal: what the daemon owes the world.

Durability of the evaluation service is *store-native*: finished runs
live in the content-addressed :class:`~repro.eval.resultstore.ResultStore`
the moment they complete, so a restarted daemon re-serves them as cache
hits without help.  The only state worth journaling is the queue — the
requests accepted but not yet completed.  This module records exactly
that, as JSON lines under the store root::

    {"event": "queued", "key": <req.key()>, "request": <req.to_dict()>}
    {"event": "done",   "key": <req.key()>}

On restart, :meth:`JobJournal.replay` returns the requests with a
``queued`` record but no matching ``done`` — the work that was in
flight when the daemon died — and the scheduler resimulates just those.
Each append is flushed and fsynced (submission rates are tiny next to
simulation times); a line truncated by a crash is skipped on replay.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.eval.runner import RunRequest


class JobJournal:
    """Append-only JSONL record of accepted-but-unfinished requests."""

    def __init__(self, path: "str | Path"):
        self.path = Path(path)

    def _append(self, record: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())

    def record_queued(self, req: RunRequest) -> None:
        self._append({"event": "queued", "key": req.key(), "request": req.to_dict()})

    def record_done(self, req: RunRequest) -> None:
        self._append({"event": "done", "key": req.key()})

    def replay(self) -> list[RunRequest]:
        """Requests queued but never marked done, in submission order.

        Unreadable lines (a crash can truncate the final one) and
        records that no longer decode into a request are skipped — a
        lost journal line only costs a recomputation, never correctness.
        """
        outstanding: dict[str, RunRequest] = {}
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return []
        for line in lines:
            try:
                record = json.loads(line)
            except ValueError:
                continue
            event, key = record.get("event"), record.get("key")
            if event == "queued" and key not in outstanding:
                try:
                    outstanding[key] = RunRequest.from_dict(record["request"])
                except (KeyError, TypeError, ValueError):
                    continue
            elif event == "done":
                outstanding.pop(key, None)
        return list(outstanding.values())

    def compact(self, outstanding: "list[RunRequest]") -> None:
        """Atomically rewrite the journal to just ``outstanding``.

        Run at startup after :meth:`replay`, so the file stays
        proportional to the in-flight set instead of growing with every
        request ever served.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.parent / f".{self.path.name}.{os.getpid()}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            for req in outstanding:
                fh.write(
                    json.dumps(
                        {"event": "queued", "key": req.key(), "request": req.to_dict()},
                        separators=(",", ":"),
                    )
                    + "\n"
                )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
