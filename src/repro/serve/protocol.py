"""Wire format of the evaluation service: line-delimited JSON.

One UTF-8 JSON object per ``\\n``-terminated line, in both directions,
over a unix-domain or TCP stream socket.  Every message carries an
``op`` field; batch-scoped messages additionally carry the client's
``id`` for the batch, so one connection can multiplex any number of
concurrent batches.

Client -> server::

    {"op": "submit", "id": <str>, "requests": [<RunRequest.to_dict()>, ...]}
    {"op": "info"}                  # daemon + scheduler + store counters
    {"op": "ping"}
    {"op": "shutdown"}              # graceful stop (drains in-flight work)

Server -> client::

    {"op": "ack",    "id": ..., "total": N}
    {"op": "result", "id": ..., "index": i, "source": "store"|"peer"|"simulated",
                     "result": <RunResult.to_dict()>}
    {"op": "error",  "id": ..., "index": i, "message": ...}   # one request failed
    {"op": "done",   "id": ..., "completed": N, "failed": M}
    {"op": "info",   ...}
    {"op": "pong"}
    {"op": "bye"}                   # acknowledges shutdown
    {"op": "error",  "message": ...}            # protocol-level complaint

``source`` says where a result came from: the daemon's result store
(``store``), another daemon sharing the store directory (``peer``), or
a fresh simulation (``simulated``).  Results stream in completion
order; ``index`` maps each back to its position in the submitted batch.

Addresses are strings: ``unix:<path>`` (also any bare value containing
a ``/``) or ``[tcp:]host:port``.  :func:`parse_address` is the single
parser both ends use.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

#: Protocol revision; servers reject clients from the future.
PROTOCOL_VERSION = 1

#: Stream buffer limit: a result message is a few KB, but traces of
#: provenance or large stat histograms must never hit asyncio's 64 KiB
#: default readline limit.
STREAM_LIMIT = 32 * 1024 * 1024


class ProtocolError(RuntimeError):
    """Malformed message or address."""


def parse_address(address: str) -> tuple:
    """Parse ``unix:<path>`` / ``[tcp:]<host>:<port>`` into a tuple.

    Returns ``("unix", path)`` or ``("tcp", host, port)``.  A bare
    value containing ``/`` is taken as a unix-socket path (so plain
    filesystem paths work); ``~`` is expanded.
    """
    addr = address.strip()
    if addr.startswith("unix:"):
        return ("unix", str(Path(addr[5:]).expanduser()))
    if addr.startswith("tcp:"):
        addr = addr[4:]
    elif "/" in addr or not addr.count(":"):
        return ("unix", str(Path(addr).expanduser()))
    host, _, port = addr.rpartition(":")
    try:
        return ("tcp", host or "127.0.0.1", int(port))
    except ValueError:
        raise ProtocolError(f"unparseable address {address!r}") from None


def encode(message: dict) -> bytes:
    """One message, serialized: compact JSON + newline."""
    return json.dumps(message, separators=(",", ":")).encode() + b"\n"


async def read_message(reader: asyncio.StreamReader) -> "dict | None":
    """Read one message; ``None`` on a clean EOF.

    A truncated trailing line (peer died mid-write) also reads as EOF;
    anything else undecodable raises :class:`ProtocolError`.
    """
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not line:
        return None
    if not line.endswith(b"\n"):
        return None  # truncated final line: the peer is gone
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"undecodable message: {exc}") from None
    if not isinstance(message, dict) or "op" not in message:
        raise ProtocolError("message is not an object with an 'op' field")
    return message


async def write_message(
    writer: asyncio.StreamWriter,
    lock: "asyncio.Lock | None" = None,
    **message,
) -> None:
    """Serialize and send one message (atomically w.r.t. ``lock``).

    Concurrent batch tasks share one socket, so every writer to a
    connection must hold that connection's lock to keep lines whole.
    """
    data = encode(message)
    if lock is None:
        writer.write(data)
        await writer.drain()
        return
    async with lock:
        writer.write(data)
        await writer.drain()
