"""Client side of the evaluation service.

:class:`ServeClient` is the async API: ``connect`` to a daemon,
``submit`` a batch of :class:`~repro.eval.runner.RunRequest`, and
``stream`` its events (or ``results`` to collect the ordered list).
:func:`run_remote` is the synchronous wrapper the CLIs and
:func:`repro.eval.parallel.run_many` use — drop-in for a local
``run_many`` call, returning bit-identical :class:`RunResult`\\ s in
input order.

A single connection multiplexes any number of concurrent batches; a
background reader task routes each incoming message to its batch's
queue.  Duplicate requests are fine — the daemon dedupes in-flight work
across every connected client, so submitting the same grid from two
processes costs one simulation per distinct request.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from typing import AsyncIterator, Callable, Iterable

from repro.eval.runner import RunRequest, RunResult
from repro.serve import protocol


class ServeError(RuntimeError):
    """The daemon reported a failure for a batch or a request."""


class _Batch:
    """Book-keeping for one submitted batch."""

    def __init__(self, batch_id: str, size: int):
        self.id = batch_id
        self.size = size
        self.queue: "asyncio.Queue[dict | None]" = asyncio.Queue()


class ServeClient:
    """Async client for a ``python -m repro.serve`` daemon."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()
        self._ids = itertools.count(1)
        self._batches: "dict[str, _Batch]" = {}
        self._replies: "asyncio.Queue[dict | None]" = asyncio.Queue()
        self._pump = asyncio.create_task(self._read_loop())

    # -- connection -----------------------------------------------------------

    @classmethod
    async def connect(
        cls, address: str, retry_for: float = 0.0, interval: float = 0.05
    ) -> "ServeClient":
        """Open a connection; optionally retry for ``retry_for`` seconds.

        Retrying covers the daemon-just-started race (socket not bound
        yet) that tests and scripts hit when they launch the daemon
        themselves.
        """
        endpoint = protocol.parse_address(address)
        deadline = time.monotonic() + retry_for
        while True:
            try:
                if endpoint[0] == "unix":
                    reader, writer = await asyncio.open_unix_connection(
                        endpoint[1], limit=protocol.STREAM_LIMIT
                    )
                else:
                    reader, writer = await asyncio.open_connection(
                        endpoint[1], endpoint[2], limit=protocol.STREAM_LIMIT
                    )
                return cls(reader, writer)
            except (ConnectionError, FileNotFoundError, OSError):
                if time.monotonic() >= deadline:
                    raise
                await asyncio.sleep(interval)

    async def close(self) -> None:
        self._pump.cancel()
        try:
            await self._pump
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def _read_loop(self) -> None:
        """Route incoming messages to their batch queue (or replies)."""
        try:
            while True:
                message = await protocol.read_message(self._reader)
                if message is None:
                    break
                batch = self._batches.get(message.get("id", ""))
                if batch is not None and message.get("op") in ("ack", "result", "error", "done"):
                    batch.queue.put_nowait(message)
                else:
                    self._replies.put_nowait(message)
        finally:
            # Wake everything still waiting: the connection is gone.
            for batch in self._batches.values():
                batch.queue.put_nowait(None)
            self._replies.put_nowait(None)

    # -- batches --------------------------------------------------------------

    async def submit(self, requests: Iterable[RunRequest]) -> _Batch:
        """Send one batch; returns a handle for :meth:`stream`."""
        reqs = list(requests)
        batch = _Batch(f"b{next(self._ids)}", len(reqs))
        self._batches[batch.id] = batch
        await protocol.write_message(
            self._writer,
            self._lock,
            op="submit",
            id=batch.id,
            version=protocol.PROTOCOL_VERSION,
            requests=[r.to_dict() for r in reqs],
        )
        return batch

    async def stream(self, batch: _Batch) -> AsyncIterator[dict]:
        """Yield the batch's events (``ack``/``result``/``error``) until done.

        Raises :class:`ServeError` if the connection drops before the
        daemon's ``done`` message.
        """
        try:
            while True:
                message = await batch.queue.get()
                if message is None:
                    raise ServeError("connection closed before the batch finished")
                if message["op"] == "done":
                    return
                yield message
        finally:
            self._batches.pop(batch.id, None)

    async def results(
        self,
        requests: Iterable[RunRequest],
        progress: "Callable[[str], None] | None" = None,
    ) -> list[RunResult]:
        """Submit and collect: results in input order, like ``run_many``.

        ``progress`` receives one line per finished request, matching
        the local engine's wording (``cached`` for store/peer answers,
        ``done`` for fresh simulations).  Any per-request failure
        raises :class:`ServeError` after the batch drains.
        """
        reqs = list(requests)
        batch = await self.submit(reqs)
        out: "list[RunResult | None]" = [None] * len(reqs)
        errors: list[str] = []
        async for message in self.stream(batch):
            if message["op"] == "result":
                index = message["index"]
                out[index] = RunResult.from_dict(message["result"])
                if progress is not None:
                    word = "done" if message["source"] == "simulated" else "cached"
                    progress(f"{reqs[index].name}: {word}")
            elif message["op"] == "error" and "index" in message:
                errors.append(f"{reqs[message['index']].name}: {message['message']}")
            elif message["op"] == "error":
                raise ServeError(message.get("message", "batch rejected"))
        if errors:
            raise ServeError("; ".join(errors))
        return out  # type: ignore[return-value]

    # -- control ops ----------------------------------------------------------

    async def _request(self, op: str, want: tuple) -> dict:
        await protocol.write_message(self._writer, self._lock, op=op)
        while True:
            message = await self._replies.get()
            if message is None:
                raise ServeError(f"connection closed awaiting {op!r} reply")
            if message.get("op") in want:
                return message

    async def info(self) -> dict:
        """The daemon's scheduler/store counters (the ``info`` op)."""
        return await self._request("info", ("info",))

    async def ping(self) -> None:
        await self._request("ping", ("pong",))

    async def shutdown(self) -> None:
        """Ask the daemon to stop (it drains and exits)."""
        await self._request("shutdown", ("bye",))

    async def screen(self, spec: dict) -> dict:
        """Run a design-space screen on the daemon (the ``screen`` op).

        ``spec`` is a :class:`repro.eval.screen.ScreenSpec` payload
        (``to_dict``); the return value is a
        :class:`~repro.eval.screen.ScreenResult` payload.  The daemon
        simulates anchors and frontier through its shared scheduler, so
        concurrent clients dedupe against each other as usual.
        """
        await protocol.write_message(self._writer, self._lock, op="screen", spec=spec)
        while True:
            message = await self._replies.get()
            if message is None:
                raise ServeError("connection closed awaiting screen result")
            op = message.get("op")
            if op == "screen_result":
                return message["summary"]
            if op == "error":
                raise ServeError(message.get("message", "screen rejected"))


# -- synchronous wrappers -----------------------------------------------------


def run_remote(
    requests: Iterable[RunRequest],
    address: str,
    progress: "Callable[[str], None] | None" = None,
    connect_timeout: float = 10.0,
) -> list[RunResult]:
    """Evaluate a batch on a running daemon; results in input order.

    The synchronous face of the service — what ``run_many(...,
    EvalOptions(server=addr))`` and ``python -m repro.eval --server``
    call.  Results are bit-identical to local execution.
    """
    reqs = list(requests)

    async def go() -> list[RunResult]:
        client = await ServeClient.connect(address, retry_for=connect_timeout)
        try:
            return await client.results(reqs, progress=progress)
        finally:
            await client.close()

    return asyncio.run(go())


def screen_remote(spec: dict, address: str, connect_timeout: float = 10.0) -> dict:
    """Run a screening job on a running daemon, synchronously.

    Takes and returns plain payload dicts so callers need not import
    the screening module before deciding to go remote.
    """

    async def go() -> dict:
        client = await ServeClient.connect(address, retry_for=connect_timeout)
        try:
            return await client.screen(spec)
        finally:
            await client.close()

    return asyncio.run(go())


def server_info(address: str, connect_timeout: float = 10.0) -> dict:
    """Fetch the daemon's ``info`` counters synchronously."""

    async def go() -> dict:
        client = await ServeClient.connect(address, retry_for=connect_timeout)
        try:
            return await client.info()
        finally:
            await client.close()

    return asyncio.run(go())


def shutdown_server(address: str, connect_timeout: float = 10.0) -> None:
    """Ask the daemon at ``address`` to shut down, synchronously."""

    async def go() -> None:
        client = await ServeClient.connect(address, retry_for=connect_timeout)
        try:
            await client.shutdown()
        finally:
            await client.close()

    asyncio.run(go())
