"""Simulation-as-a-service: an async evaluation daemon over the stores.

Every grid in the library used to start from a cold CLI process even
though :class:`~repro.eval.runner.RunRequest` is frozen/hashable/
serializable and both on-disk stores are content-addressed with atomic
writes.  This package keeps one long-running process warm and lets any
number of clients evaluate through it:

* :mod:`repro.serve.protocol` — the line-delimited JSON wire format
  (one message per line over a unix or TCP socket);
* :mod:`repro.serve.journal` — the append-only job journal that makes a
  killed daemon recoverable (completed work re-serves from the result
  store; only what was in flight is recomputed);
* :mod:`repro.serve.claimfile` — atomic store-side claim files, so two
  daemons sharing one store directory (multi-host sharding over a
  network filesystem) never simulate the same request twice;
* :mod:`repro.serve.scheduler` — the asyncio scheduler: answers what it
  can from the stores, dedupes identical in-flight requests across all
  connected clients (one simulation, many subscribers), and dispatches
  the rest to a worker pool in the longest-estimated-first single-build
  chunks of :mod:`repro.eval.parallel`;
* :mod:`repro.serve.daemon` — the socket server; ``python -m
  repro.serve`` runs it;
* :mod:`repro.serve.client` — :class:`ServeClient` (async ``submit`` /
  ``stream``) plus the sync wrappers :func:`run_remote`,
  :func:`server_info` and :func:`shutdown_server`.

Quick start::

    $ python -m repro.serve --listen unix:/tmp/repro.sock --jobs 4 &
    $ python -m repro.eval figure5 --server unix:/tmp/repro.sock

    from repro.eval import EvalOptions, RunRequest, run_many
    results = run_many(grid, EvalOptions(server="unix:/tmp/repro.sock"))

Results are bit-identical to local :func:`repro.eval.runner.run_one`
(the simulator is fully deterministic; the service only moves *where*
it runs).  See ``docs/serving.md`` for the protocol and the durability
model.
"""

from repro.serve.client import ServeClient, run_remote, server_info, shutdown_server

__all__ = ["ServeClient", "run_remote", "server_info", "shutdown_server"]
