"""The evaluation scheduler: stores first, dedup always, workers last.

One :class:`Scheduler` instance owns the daemon's result/artifact
stores, its worker pool, and the in-flight table.  Every request
submitted by any connected client flows through :meth:`submit_one`:

1. **In-flight dedup** — an identical request already queued or running
   (by *any* client) returns the same :class:`Job`; one simulation,
   many subscribers.
2. **Store hit** — the content-addressed result store answers without
   simulating (this is also how a restarted daemon re-serves the work
   it finished in a previous life).
3. **Claim** — with a :class:`~repro.serve.claimfile.ClaimBoard`
   attached, the request is claimed before simulating; if another
   daemon over the same store directory already holds it, this daemon
   just polls the store until the peer's result lands (or the claim
   goes stale and is stolen).
4. **Dispatch** — everything else is batched by a dispatcher tick into
   the longest-estimated-first, single-build chunks of
   :func:`repro.eval.parallel._schedule_chunks` and fanned out over a
   ``ProcessPoolExecutor`` whose workers hydrate build artifacts from
   disk (:func:`repro.eval.parallel._init_worker`).

Completed results are persisted to the store *before* the job journal
records them done, so a crash between the two only costs a redundant
journal entry, never a lost result.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.eval.parallel import _init_worker, _schedule_chunks
from repro.eval.parallel import _run_chunk as _simulate_chunk
from repro.eval.runner import RunRequest, RunResult

#: How often a daemon waiting on a peer's claim re-polls the store.
DEFAULT_POLL_INTERVAL = 0.25


@dataclass
class SchedulerStats:
    """Counters over this scheduler's lifetime (the ``info`` op)."""

    submitted: int = 0  # distinct requests accepted
    deduped: int = 0  # submissions answered by an in-flight job
    store_hits: int = 0  # answered from the result store
    peer_hits: int = 0  # answered by another daemon via the store
    simulated: int = 0  # simulated by this daemon's workers
    failed: int = 0
    recovered: int = 0  # journal entries resubmitted at startup
    claims_stolen: int = 0  # stale peer claims broken
    claims_swept: int = 0  # dead same-host claims removed at startup

    def to_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class Job:
    """One in-flight request and the future its subscribers await.

    The future resolves to ``(RunResult, source)`` with ``source`` one
    of ``"store"``, ``"peer"``, ``"simulated"``.
    """

    request: RunRequest
    future: asyncio.Future = field(repr=False)


class Scheduler:
    """Async evaluation scheduler over the on-disk stores."""

    def __init__(
        self,
        store=None,
        artifacts=None,
        jobs: "int | None" = 1,
        journal=None,
        claims=None,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
    ):
        self.store = store
        self.artifacts = artifacts
        self.jobs = jobs if jobs and jobs > 0 else (os.cpu_count() or 1)
        self.journal = journal
        self.claims = claims
        self.poll_interval = poll_interval
        self.stats = SchedulerStats()
        self._inflight: "dict[RunRequest, Job]" = {}
        self._ready: "list[Job]" = []
        self._tasks: "set[asyncio.Task]" = set()
        self._pool: "ProcessPoolExecutor | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._wake: "asyncio.Event | None" = None
        self._dispatcher: "asyncio.Task | None" = None

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> int:
        """Create the worker pool and recover the journal.

        Returns the number of journaled in-flight requests resubmitted
        (their completed siblings need no recovery: they are already
        store entries and will answer as hits).
        """
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        root = str(self.artifacts.root) if self.artifacts is not None else None
        # spawn, not fork: forked workers would inherit every accepted
        # client socket, holding connections open past a daemon kill
        # (clients would never see EOF); spawned workers also exit on
        # their own when the daemon dies and the call queue breaks.
        self._pool = ProcessPoolExecutor(
            max_workers=self.jobs,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=_init_worker,
            initargs=(root,),
        )
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        if self.claims is not None:
            # A predecessor killed on this host left its claims behind;
            # drop them now or its in-flight work waits out the TTL.
            self.stats.claims_swept = self.claims.sweep_dead_owners()
        recovered = 0
        if self.journal is not None:
            outstanding = self.journal.replay()
            self.journal.compact(outstanding)
            for req in outstanding:
                self.submit_one(req, _record=False)
                recovered += 1
            self.stats.recovered = recovered
        return recovered

    async def drain(self) -> None:
        """Wait until every accepted request has resolved."""
        while self._inflight:
            jobs = list(self._inflight.values())
            await asyncio.wait([job.future for job in jobs])

    async def stop(self) -> None:
        """Cancel outstanding work and shut the pool down."""
        if self._dispatcher is not None:
            self._dispatcher.cancel()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        for job in list(self._inflight.values()):
            if not job.future.done():
                job.future.cancel()
            if self.claims is not None:
                self.claims.release(job.request)
        self._inflight.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # -- submission -----------------------------------------------------------

    def submit_one(self, req: RunRequest, _record: bool = True) -> Job:
        """Accept one request, deduplicating against in-flight work."""
        job = self._inflight.get(req)
        if job is not None:
            self.stats.deduped += 1
            return job
        job = Job(request=req, future=self._loop.create_future())
        # Mark failures as observed even if every subscriber vanished
        # (e.g. journal-recovery jobs have none).
        job.future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        self._inflight[req] = job
        self.stats.submitted += 1
        if self.journal is not None and _record:
            self.journal.record_queued(req)
        self._spawn(self._admit(job))
        return job

    def submit(self, requests) -> "list[Job]":
        return [self.submit_one(req) for req in requests]

    # -- internals ------------------------------------------------------------

    def _spawn(self, coro) -> None:
        task = asyncio.create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _admit(self, job: Job) -> None:
        """Route one accepted request: store, peer wait, or ready queue."""
        req = job.request
        try:
            if self.store is not None:
                hit = self.store.get(req)
                if hit is not None:
                    self.stats.store_hits += 1
                    self._finish(job, hit, "store")
                    return
            if self.claims is not None and not self.claims.try_claim(req):
                result = await self._await_peer(req)
                if result is not None:
                    self.stats.peer_hits += 1
                    self._finish(job, result, "peer")
                    return
                # The stale claim was stolen: we own it now; fall through.
            self._ready.append(job)
            self._wake.set()
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._fail(job, exc)

    async def _await_peer(self, req: RunRequest) -> "RunResult | None":
        """Another daemon holds the claim: poll the store for its result.

        Returns the peer's result, or ``None`` after stealing a stale
        claim (the daemon holding it died) — the caller then simulates.
        """
        while True:
            await asyncio.sleep(self.poll_interval)
            if self.store is not None:
                hit = self.store.get(req)
                if hit is not None:
                    return hit
            if self.claims.steal_if_stale(req):
                self.stats.claims_stolen += 1
                return None

    async def _dispatch_loop(self) -> None:
        """Batch ready jobs into scheduled chunks and fan them out."""
        while True:
            await self._wake.wait()
            self._wake.clear()
            ready, self._ready = self._ready, []
            if not ready:
                continue
            by_request = {job.request: job for job in ready}
            for chunk in _schedule_chunks(list(by_request), self.jobs):
                self._spawn(self._run_chunk([by_request[r] for r in chunk]))

    async def _run_chunk(self, chunk: "list[Job]") -> None:
        requests = [job.request for job in chunk]
        try:
            results = await self._loop.run_in_executor(
                self._pool, _simulate_chunk, requests
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # worker died, pool broken, pickling ...
            for job in chunk:
                self._fail(job, exc)
            return
        for job, result in zip(chunk, results):
            if self.store is not None:
                self.store.put(result)
            self.stats.simulated += 1
            self._finish(job, result, "simulated")

    def _finish(self, job: Job, result: RunResult, source: str) -> None:
        req = job.request
        if self.journal is not None:
            self.journal.record_done(req)
        if self.claims is not None:
            self.claims.release(req)
        self._inflight.pop(req, None)
        if not job.future.done():
            job.future.set_result((result, source))

    def _fail(self, job: Job, exc: BaseException) -> None:
        req = job.request
        self.stats.failed += 1
        if self.journal is not None:
            # A failed request is no longer owed: journaling it done
            # keeps restarts from resimulating a deterministic failure.
            self.journal.record_done(req)
        if self.claims is not None:
            self.claims.release(req)
        self._inflight.pop(req, None)
        if not job.future.done():
            job.future.set_exception(exc)

    def info(self) -> dict:
        """Counter snapshot for the ``info`` protocol op."""
        payload = {
            "scheduler": self.stats.to_dict(),
            "inflight": len(self._inflight),
            "jobs": self.jobs,
        }
        if self.store is not None:
            payload["store"] = {
                "root": str(self.store.root),
                "hits": self.store.stats.hits,
                "misses": self.store.stats.misses,
                "puts": self.store.stats.puts,
            }
        if self.artifacts is not None:
            payload["artifacts"] = {"root": str(self.artifacts.root)}
        return payload
