"""CLI: run the evaluation daemon.

Usage::

    python -m repro.serve [--listen ADDR] [--jobs N] [--store DIR]
                          [--no-cache] [--artifacts [DIR]]
                          [--claim-ttl SECONDS] [--no-claims] [--no-journal]

``ADDR`` is ``unix:<path>`` or ``[tcp:]host:port``; the default is
``$REPRO_SERVE_ADDR`` or a unix socket next to the default stores
(``~/.cache/repro/serve.sock``).  The daemon owns the result store
(default on — durability is store-native), an artifact store (default
on: workers hydrate builds from disk), a job journal under the store
root (killed daemons recover: completed work re-serves as cache hits,
only in-flight requests are recomputed), and a claim-file board so a
second daemon on another host sharing the store directory never
duplicates work.

Stop it with SIGINT/SIGTERM or a client ``shutdown`` op
(:func:`repro.serve.client.shutdown_server`); both drain cleanly.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from repro.eval.options import EvalOptions, add_eval_args, default_server_address
from repro.serve.claimfile import DEFAULT_TTL, ClaimBoard
from repro.serve.daemon import EvalServer
from repro.serve.journal import JobJournal
from repro.serve.scheduler import Scheduler


def build_server(
    address: str,
    opts: EvalOptions,
    claim_ttl: float = DEFAULT_TTL,
    journal: bool = True,
    claims: bool = True,
    poll_interval: "float | None" = None,
) -> EvalServer:
    """Assemble a daemon from resolved options (shared with tests)."""
    store = opts.store
    board = journal_obj = None
    if store is not None:
        if journal:
            journal_obj = JobJournal(store.root / "journal.jsonl")
        if claims:
            board = ClaimBoard(store.root / "claims", ttl=claim_ttl)
    kwargs = {} if poll_interval is None else {"poll_interval": poll_interval}
    scheduler = Scheduler(
        store=store,
        artifacts=opts.artifacts,
        jobs=opts.jobs,
        journal=journal_obj,
        claims=board,
        **kwargs,
    )
    return EvalServer(scheduler, address)


async def amain(args: argparse.Namespace) -> int:
    opts = EvalOptions.from_args(args)
    if opts.artifacts is None and not args.no_artifacts:
        # Long-running daemons always want the build cache warm.
        from repro.eval.artifacts import ArtifactStore

        opts = opts.replace(artifacts=ArtifactStore(None))
    if args.trace is not None:
        # Pre-warm an ingested workload: mint its token (validating the
        # file and hashing its content), compile the default-budget
        # build into the artifact store so the first client requests
        # hydrate instead of compiling, and print the token clients
        # should put in their requests' workload field.
        from repro.eval.runner import RunRequest, _CACHE, configure_artifacts
        from repro.ingest.build import trace_workload_from_args

        token = trace_workload_from_args(args)
        default_budget = RunRequest.__dataclass_fields__["max_instructions"].default
        previous = configure_artifacts(opts.artifacts)
        try:
            trace = _CACHE.get_trace(token, 32, 32, 1.0, default_budget)
        finally:
            configure_artifacts(previous)
        print(
            f"repro.serve: ingested {args.trace} ({len(trace)} records at the "
            f"default budget); request it as workload:\n  {token}",
            file=sys.stderr,
            flush=True,
        )
    address = args.listen or default_server_address()
    server = build_server(
        address,
        opts,
        claim_ttl=args.claim_ttl,
        journal=not args.no_journal,
        claims=not args.no_claims,
    )
    recovered = await server.start()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(sig, server.request_stop)
    store_root = opts.store.root if opts.store is not None else "(no store)"
    print(
        f"repro.serve: listening on {address} "
        f"(jobs={server.scheduler.jobs}, store={store_root})",
        file=sys.stderr,
        flush=True,
    )
    if recovered:
        print(
            f"repro.serve: recovered {recovered} in-flight request(s) from the journal",
            file=sys.stderr,
            flush=True,
        )
    await server.serve_until_stopped()
    print("repro.serve: stopped", file=sys.stderr)
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Long-running evaluation daemon over the on-disk stores.",
    )
    parser.add_argument(
        "--listen",
        default=None,
        metavar="ADDR",
        help="unix:<path> or [tcp:]host:port (default: $REPRO_SERVE_ADDR "
        "or ~/.cache/repro/serve.sock)",
    )
    add_eval_args(parser, jobs=True, cache=True, artifacts=True)
    from repro.ingest.build import add_trace_args

    add_trace_args(parser)
    parser.add_argument(
        "--no-artifacts",
        action="store_true",
        help="disable the artifact store the daemon otherwise enables by default",
    )
    parser.add_argument(
        "--claim-ttl",
        type=float,
        default=DEFAULT_TTL,
        metavar="SECONDS",
        help=f"stale-claim expiry for multi-daemon stores (default {DEFAULT_TTL:.0f}s)",
    )
    parser.add_argument(
        "--no-claims",
        action="store_true",
        help="skip claim files (single-daemon store directories)",
    )
    parser.add_argument(
        "--no-journal",
        action="store_true",
        help="skip the job journal (no restart recovery)",
    )
    args = parser.parse_args(argv)
    try:
        return asyncio.run(amain(args))
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
