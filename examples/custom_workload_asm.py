#!/usr/bin/env python3
"""Write your own workload in assembly and put it on the machine.

Demonstrates the full pipeline on a hand-written program: assemble the
text, initialize its data, execute it functionally, then time it under
two translation designs.  The program walks two arrays that live on
*different* virtual pages with paired loads — the access pattern where a
single-ported TLB serializes but a piggybacked or dual-ported TLB keeps
up.

Usage::

    python examples/custom_workload_asm.py
"""

from repro.engine import Machine, MachineConfig
from repro.func.executor import Executor
from repro.isa.assembler import assemble
from repro.mem.memory import SparseMemory
from repro.tlb import make_mechanism

SOURCE = """
# r2 -> array A, r3 -> array B (different pages), r4 = iterations
    lui  r2, 0x2000
    lui  r3, 0x2001
    addi r4, r0, 400
    addi r5, r0, 0          # accumulator
loop:
    lw   r6, 0(r2)          # two same-cycle loads on different pages
    lw   r7, 0(r3)
    lw   r8, 4(r2)
    lw   r9, 4(r3)
    add  r5, r5, r6
    add  r5, r5, r7
    add  r5, r5, r8
    add  r5, r5, r9
    addi r2, r2, 8
    addi r3, r3, 8
    addi r4, r4, -1
    bne  r4, r0, loop
    lui  r10, 0x3000
    sw   r5, 0(r10)
    halt
"""


def build_memory() -> SparseMemory:
    memory = SparseMemory()
    for i in range(1024):
        memory.store_word(0x2000_0000 + 4 * i, i)
        memory.store_word(0x2001_0000 + 4 * i, 2 * i)
    return memory


def main() -> None:
    program = assemble(SOURCE, name="paired-walk")
    print("Program listing:")
    print(program.listing())

    # Functional run first: check the program computes what we expect.
    memory = build_memory()
    executor = Executor(program, memory)
    for _ in executor.run():
        pass
    print(f"\nfunctional result: {memory.load_word(0x3000_0000)}")
    print(f"instructions retired: {executor.retired}")

    # Timing runs: T1 serializes the paired loads; PB1 combines only
    # same-page pairs, T2 translates both pages at once.
    print(f"\n{'design':8s} {'cycles':>8s} {'IPC':>7s} {'port stalls':>12s}")
    for design in ("T1", "PB1", "T2", "T4"):
        config = MachineConfig()
        mech = make_mechanism(design, config.page_shift)
        trace = Executor(program, build_memory()).run()
        result = Machine(config, mech, trace).run()
        print(
            f"{design:8s} {result.cycles:8d} {result.ipc:7.3f} "
            f"{result.stats.translation.port_stall_cycles:12d}"
        )


if __name__ == "__main__":
    main()
