#!/usr/bin/env python3
"""Register pressure study (the paper's Figure 9 in miniature).

Rebuilds each workload at 32 int/32 fp and 8 int/8 fp architected
registers, then compares reference density and the performance of a
multi-level TLB versus a piggybacked single-ported TLB.  The paper's
finding: spill traffic is heavy but stack-local, so the small L1 TLB
keeps shielding, while designs relying on page diversity suffer.

Usage::

    python examples/register_pressure.py [workload ...]
"""

import sys

from repro import RunRequest, run_one

BUDGET = 25_000


def density(result) -> float:
    s = result.stats
    return (s.loads + s.stores) / s.committed if s.committed else 0.0


def main() -> None:
    workloads = sys.argv[1:] or ["tomcatv", "doduc", "espresso"]
    print(
        f"{'workload':12s} {'regs':>5s} {'refs/inst':>10s} "
        f"{'M4 rel':>7s} {'PB1 rel':>8s} {'M4 shield':>10s}"
    )
    for workload in workloads:
        for int_regs, fp_regs in ((32, 32), (8, 8)):
            kw = dict(
                workload=workload,
                int_regs=int_regs,
                fp_regs=fp_regs,
                max_instructions=BUDGET,
            )
            t4 = run_one(RunRequest(design="T4", **kw))
            m4 = run_one(RunRequest(design="M4", **kw))
            pb1 = run_one(RunRequest(design="PB1", **kw))
            print(
                f"{workload:12s} {int_regs:5d} {density(t4):10.3f} "
                f"{m4.ipc / t4.ipc:7.3f} {pb1.ipc / t4.ipc:8.3f} "
                f"{m4.stats.translation.shielded_fraction:10.3f}"
            )
    print(
        "\nWith 8 registers the reference density jumps (spill traffic),"
        "\nbut the spills hit a handful of stack pages, so the 4-entry L1"
        "\nTLB (M4) keeps its shield while bandwidth-hungrier designs pay."
    )


if __name__ == "__main__":
    main()
