#!/usr/bin/env python3
"""Anatomy of a workload's translation behaviour.

Uses the analysis toolkit to explain *why* a workload lands where it
does in the paper's Figure 5: its exact LRU miss curve (what a
multi-level L1 TLB of any size would see), its spatial-locality profile
(what piggyback ports can combine and what pretranslation can attach),
and the measured translation bandwidth demand under T4.

Usage::

    python examples/locality_anatomy.py [workload] [instructions]
"""

import sys

from repro import RunRequest, run_one
from repro.analysis.demand import demand_profile
from repro.analysis.reusedist import StackDistanceAnalyzer
from repro.analysis.spatial import profile_workload
from repro.func.executor import Executor
from repro.workloads import make_workload


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "compress"
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 40_000

    # 1. Exact LRU miss curve (Mattson stack distances).
    build = make_workload(workload).build()
    analyzer = StackDistanceAnalyzer()
    for dyn in Executor(build.program, build.memory).run(max_instructions=budget):
        if dyn.ea is not None:
            analyzer.touch(dyn.ea >> 12)
    print(f"[1] exact LRU TLB miss curve — {workload}")
    for size in (4, 8, 16, 32, 64, 128):
        rate = analyzer.miss_rate(size)
        print(f"    {size:4d} entries: {100 * rate:6.2f}%  {'#' * round(50 * rate)}")
    print(f"    ({analyzer.references} refs over {analyzer.distinct_pages()} pages)")

    # 2. Spatial locality: what piggybacking and pretranslation exploit.
    profile = profile_workload(workload, max_instructions=budget)
    print(f"\n[2] spatial profile")
    print(f"    same-page adjacency     {profile.same_page_adjacent:6.1%}"
          "   (piggyback combining potential)")
    print(f"    base-reg page reuse     {profile.base_register_page_reuse:6.1%}"
          "   (pretranslation attachment potential)")
    print(f"    pages by region         {profile.pages_by_region}")

    # 3. Measured bandwidth demand on the timing machine.
    result = run_one(RunRequest(workload=workload, design="T4", max_instructions=budget))
    print(f"\n[3] {demand_profile(result).render()}")


if __name__ == "__main__":
    main()
