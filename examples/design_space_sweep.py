#!/usr/bin/env python3
"""Design-space sweep: every Table 2 design over every workload.

A miniature of the paper's Figure 5 grid with a per-design breakdown of
*why* each design performs the way it does, in terms of the paper's
Section 2 model:

* ``f_shielded``  — fraction of requests never reaching the base TLB;
* ``piggybacked`` — requests satisfied by combining at a port;
* ``t_stalled``   — mean cycles queued for a translation port;
* ``M_TLB``       — base-TLB miss rate.

Usage::

    python examples/design_space_sweep.py [instructions]
"""

import sys

from repro import DESIGN_MNEMONICS, RunRequest, iter_workload_names, run_one
from repro.eval import normalized_rtw_average


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    workloads = list(iter_workload_names())

    ipcs: dict[str, dict[str, float]] = {}
    detail: dict[str, dict[str, float]] = {}
    t4_cycles: dict[str, float] = {}
    for design in DESIGN_MNEMONICS:
        per: dict[str, float] = {}
        shielded = piggy = stalls = requests = probes = misses = 0
        for workload in workloads:
            res = run_one(
                RunRequest(workload=workload, design=design, max_instructions=budget)
            )
            per[workload] = res.ipc
            if design == "T4":
                t4_cycles[workload] = float(res.cycles)
            t = res.stats.translation
            shielded += t.shielded
            piggy += t.piggybacked
            stalls += t.port_stall_cycles
            requests += t.requests
            probes += t.base_probes
            misses += t.base_misses
        ipcs[design] = per
        detail[design] = dict(
            f_shielded=shielded / requests if requests else 0.0,
            piggybacked=piggy / requests if requests else 0.0,
            t_stalled=stalls / requests if requests else 0.0,
            m_tlb=misses / probes if probes else 0.0,
        )
        print(f"  swept {design} ({len(workloads)} workloads)", file=sys.stderr)

    relative = normalized_rtw_average(ipcs, t4_cycles)
    print(
        f"\n{'design':8s} {'rel IPC':>8s} {'f_shield':>9s} {'piggy':>7s} "
        f"{'t_stall':>8s} {'M_TLB%':>7s}"
    )
    for design in DESIGN_MNEMONICS:
        d = detail[design]
        bar = "#" * round(relative[design] * 40)
        print(
            f"{design:8s} {relative[design]:8.3f} {d['f_shielded']:9.3f} "
            f"{d['piggybacked']:7.3f} {d['t_stalled']:8.3f} "
            f"{100 * d['m_tlb']:7.2f}  {bar}"
        )


if __name__ == "__main__":
    main()
