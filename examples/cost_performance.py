#!/usr/bin/env python3
"""Cost vs. performance: the paper's argument in one table.

Pairs each Table 2 design's measured relative IPC (Figure 5 protocol)
with the first-order area/latency model of §3: the point of the paper
is that several designs match T4's performance at a fraction of its
(quadratically scaling) multi-port cost.

Usage::

    python examples/cost_performance.py [instructions]
"""

import sys

from repro.eval import run_figure
from repro.tlb.costmodel import design_cost
from repro.tlb.factory import DESIGN_MNEMONICS


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 15_000
    print(f"running the Figure 5 grid at {budget} instructions per run ...\n")
    result = run_figure("figure5", max_instructions=budget)

    print(
        f"{'design':8s} {'rel IPC':>8s} {'area (T1=1)':>12s} {'hit delay':>10s}"
        f"  {'perf/area':>10s}"
    )
    rows = []
    for design in DESIGN_MNEMONICS:
        rel = result.relative_ipc[design]
        cost = design_cost(design)
        rows.append((design, rel, cost.area_vs_t1, cost.hit_latency))
    for design, rel, area, delay in rows:
        ratio = rel / area
        print(f"{design:8s} {rel:8.3f} {area:12.2f} {delay:10.2f} {ratio:10.3f}")

    # Pareto frontier on (area down, relative IPC up).
    frontier = []
    for candidate in rows:
        dominated = any(
            other[1] >= candidate[1] and other[2] < candidate[2]
            or other[1] > candidate[1] and other[2] <= candidate[2]
            for other in rows
            if other is not candidate
        )
        if not dominated:
            frontier.append(candidate[0])
    print(f"\nPareto-efficient designs (IPC vs area): {', '.join(frontier)}")
    print(
        "T4 buys its last few percent of IPC with ~16x the area of a\n"
        "single-ported TLB; the paper's designs sit far inside that cost."
    )


if __name__ == "__main__":
    main()
