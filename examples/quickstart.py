#!/usr/bin/env python3
"""Quickstart: compare address-translation designs on one workload.

Runs the ``xlisp`` workload (pointer-chasing Lisp kernel) under four of
the paper's Table 2 designs and prints IPC plus the Section 2 model
quantities (shielded fraction, port stalls, base-TLB miss rate).

Usage::

    python examples/quickstart.py [workload] [instructions]
"""

import sys

from repro import RunRequest, run_one


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "xlisp"
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 40_000

    designs = ["T4", "T1", "M8", "PB2"]
    print(f"workload={workload}, budget={budget} instructions\n")
    print(
        f"{'design':8s} {'IPC':>6s} {'rel':>6s} {'f_shielded':>11s} "
        f"{'stall cyc':>10s} {'TLB miss%':>10s}"
    )
    t4_ipc = None
    for design in designs:
        result = run_one(
            RunRequest(workload=workload, design=design, max_instructions=budget)
        )
        t = result.stats.translation
        if t4_ipc is None:
            t4_ipc = result.ipc
        print(
            f"{design:8s} {result.ipc:6.3f} {result.ipc / t4_ipc:6.3f} "
            f"{t.shielded_fraction:11.3f} {t.port_stall_cycles:10d} "
            f"{100 * t.base_miss_rate:10.2f}"
        )
    print(
        "\nT4 is the paper's unlimited-bandwidth yardstick; 'rel' is the"
        " normalized IPC the paper's Figure 5 bars show."
    )


if __name__ == "__main__":
    main()
