"""Tests for the compiled trace kernel (:mod:`repro.kernel`).

Three layers are pinned here:

* the **encoder/codec** — ``decode_kernel_section(encode_kernel_section
  (e)) == e`` losslessly for every workload's trace, the numpy and
  pure-stdlib encoders produce identical arrays, and truncated/corrupt
  payloads raise :class:`~repro.func.tracefile.TraceFileError`;
* the **replay machine** — bit-identical MachineStats to the
  interpreted engine over a workload × design × issue-model spot
  matrix (the full Figure 5 grid runs via ``python -m repro.check.diff
  --checks kernel``);
* the **integration seams** — the ``MachineConfig.kernel`` switch in
  :func:`repro.eval.runner.simulate`, its sanity fallback, and the
  ``KERN`` section round trip through the artifact store.
"""

import dataclasses

import pytest

from repro.engine.config import MachineConfig
from repro.eval.artifacts import ArtifactStore
from repro.eval.runner import RunRequest, _CACHE, simulate
from repro.func.tracefile import TraceFileError
from repro.kernel import (
    EncodedTrace,
    KernelMachine,
    decode_kernel_section,
    encode_kernel_section,
    encode_trace_arrays,
)
from repro.kernel.encode import _encode_python, _numpy
from repro.workloads import iter_workload_names

FAST = dict(max_instructions=1500)


def _trace(workload: str, max_instructions: int = 1500):
    return _CACHE.get_trace(workload, 32, 32, 1.0, max_instructions)


def _stats(req: RunRequest) -> dict:
    return dataclasses.asdict(simulate(req).stats)


class TestCodec:
    @pytest.mark.parametrize("workload", sorted(iter_workload_names()))
    def test_round_trip_lossless_per_workload(self, workload):
        encoded = encode_trace_arrays(_trace(workload))
        again = decode_kernel_section(encode_kernel_section(encoded))
        assert again == encoded
        assert again.n == encoded.n == len(_trace(workload))

    def test_empty_trace_round_trips(self):
        encoded = encode_trace_arrays([])
        assert encoded.n == 0
        assert decode_kernel_section(encode_kernel_section(encoded)) == encoded

    def test_truncated_payload_rejected(self):
        payload = encode_kernel_section(encode_trace_arrays(_trace("compress")))
        with pytest.raises(TraceFileError, match="truncated|bytes"):
            decode_kernel_section(payload[: len(payload) // 2])

    def test_truncated_header_rejected(self):
        with pytest.raises(TraceFileError, match="truncated kernel section"):
            decode_kernel_section(b"\x00\x01")

    def test_bad_magic_rejected(self):
        payload = encode_kernel_section(encode_trace_arrays(_trace("compress")))
        with pytest.raises(TraceFileError, match="magic"):
            decode_kernel_section(b"XXXX" + payload[4:])

    def test_wrong_version_rejected(self):
        payload = bytearray(
            encode_kernel_section(encode_trace_arrays(_trace("compress")))
        )
        payload[4] = 0xEE  # version field (little-endian u16 at offset 4)
        with pytest.raises(TraceFileError, match="version"):
            decode_kernel_section(bytes(payload))

    def test_count_mismatch_rejected(self):
        encoded = encode_trace_arrays(_trace("compress"))
        payload = encode_kernel_section(encoded)
        # Append one spurious int64: the length check must trip.
        with pytest.raises(TraceFileError, match="bytes"):
            decode_kernel_section(payload + b"\x00" * 8)


class TestEncoderEquivalence:
    @pytest.mark.parametrize("workload", ["compress", "xlisp", "gcc"])
    def test_numpy_and_stdlib_encoders_agree(self, workload, monkeypatch):
        np = _numpy()
        if np is None:
            pytest.skip("numpy unavailable")
        trace = _trace(workload)
        vectorized = encode_trace_arrays(trace)
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        sequential = encode_trace_arrays(trace)
        assert vectorized == sequential

    def test_no_numpy_env_forces_stdlib(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        assert _numpy() is None

    def test_stdlib_encoder_is_the_reference(self):
        trace = _trace("compress")
        assert encode_trace_arrays(trace) == _encode_python(trace)


class TestBitIdentity:
    @pytest.mark.parametrize("workload", ["compress", "xlisp"])
    @pytest.mark.parametrize("design", ["T4", "T1", "M8", "I4", "PB1"])
    @pytest.mark.parametrize("issue_model", ["ooo", "inorder"])
    def test_kernel_matches_interpreter(self, workload, design, issue_model):
        options = dict(issue_model=issue_model, **FAST)
        interp = RunRequest.create(workload, design, kernel=False, **options)
        kern = RunRequest.create(workload, design, kernel=True, **options)
        assert _stats(kern) == _stats(interp)

    def test_kernel_matches_under_plain_loop(self):
        interp = RunRequest.create(
            "compress", "T1", kernel=False, event_driven=False, **FAST
        )
        kern = RunRequest.create(
            "compress", "T1", kernel=True, event_driven=False, **FAST
        )
        assert _stats(kern) == _stats(interp)

    def test_kernel_machine_accepts_prebuilt_encoding(self):
        trace = _trace("compress")
        config = MachineConfig(kernel=True)
        req = RunRequest.create("compress", "T1", **FAST)
        encoded = encode_trace_arrays(trace)
        result = KernelMachine(
            config, req.make_mech(config.page_shift), trace, encoded=encoded
        ).run()
        again = KernelMachine(
            config, req.make_mech(config.page_shift), trace
        ).run()
        assert result.stats == again.stats


class TestRunnerIntegration:
    def test_sanity_falls_back_to_interpreter(self):
        # kernel+sanity must run (the sanity hooks live in the
        # interpreted machine) and still produce identical stats.
        plain = RunRequest.create("compress", "T4", **FAST)
        checked = RunRequest.create(
            "compress", "T4", kernel=True, sanity=True, **FAST
        )
        assert _stats(checked) == _stats(plain)

    def test_kernel_config_default_off(self):
        assert MachineConfig().kernel is False


class TestArtifactRoundTrip:
    AXES = ("compress", 32, 32, 1.0, 1500)

    def _store(self, tmp_path):
        return ArtifactStore(tmp_path, fingerprint="test")

    def test_save_load_round_trip(self, tmp_path):
        store = self._store(tmp_path)
        build = _CACHE.get("compress", 32, 32, 1.0)
        trace = _trace("compress")
        store.save_build(self.AXES, build.program, trace)
        encoded = encode_trace_arrays(trace)
        assert store.save_kernel(self.AXES, encoded) is not None
        loaded = store.load_kernel(self.AXES, len(trace))
        assert loaded == encoded
        # The program/trace sections survived the merge rewrite.
        assert store.load_build(self.AXES) is not None

    def test_count_mismatch_reads_as_miss(self, tmp_path):
        store = self._store(tmp_path)
        build = _CACHE.get("compress", 32, 32, 1.0)
        trace = _trace("compress")
        store.save_build(self.AXES, build.program, trace)
        store.save_kernel(self.AXES, encode_trace_arrays(trace))
        misses = store.stats.misses
        assert store.load_kernel(self.AXES, len(trace) + 7) is None
        assert store.stats.misses == misses + 1

    def test_save_without_build_container_is_a_noop(self, tmp_path):
        store = self._store(tmp_path)
        encoded = encode_trace_arrays(_trace("compress"))
        assert store.save_kernel(self.AXES, encoded) is None

    def test_load_before_save_misses(self, tmp_path):
        store = self._store(tmp_path)
        build = _CACHE.get("compress", 32, 32, 1.0)
        trace = _trace("compress")
        store.save_build(self.AXES, build.program, trace)
        assert store.load_kernel(self.AXES, len(trace)) is None
